//! # scout
//!
//! Facade crate for the SCOUT reproduction: *Fault Localization in Large-Scale
//! Network Policy Deployment* (Tammana, Nagarajan, Mamillapalli, Kompella,
//! Lee — ICDCS 2018).
//!
//! SCOUT localizes *faulty policy objects* — VRFs, EPGs, contracts, filters and
//! switches — when a high-level network policy is not rendered correctly as
//! low-level TCAM rules, and then correlates the faulty objects with
//! physical-level root causes (TCAM overflow, unreachable switch, agent crash,
//! …).
//!
//! This crate simply re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`policy`] | `scout-policy` | APIC-like object model, policy universe, TCAM rules |
//! | [`bdd`] | `scout-bdd` | ROBDD engine used by the equivalence checker |
//! | [`fabric`] | `scout-fabric` | deterministic controller/switch/TCAM simulator with change & fault logs, typed telemetry events, and the in-house wire codec |
//! | [`equiv`] | `scout-equiv` | L–T equivalence checker (missing-rule detection) |
//! | [`faults`] | `scout-faults` | object-level and physical-level fault injection |
//! | [`workload`] | `scout-workload` | cluster / testbed / scaling policy generators |
//! | [`core`] | `scout-core` | risk models, SCOUT & SCORE localization, correlation engine, sharded `Send + Sync` service engine with delta-driven sessions and checkpoint/restore snapshots |
//! | [`metrics`] | `scout-metrics` | precision/recall/γ, CDFs, run statistics |
//! | [`store`] | `scout-store` | durable hash-chained event journal + snapshot anchor store with tamper-evident crash recovery |
//! | [`server`] | `scout-server` | the serving layer: typed wire API, per-tenant admission control, and a simulated multi-node cluster with leader-driven failover |
//! | [`sim`] | `scout-sim` | randomized fault campaigns, soak timelines, multi-tenant and fleet soaks, and crash-injection soaks against one shared engine |
//!
//! `ARCHITECTURE.md` at the repo root walks the whole pipeline crate by
//! crate, including the session/delta data flow and where sharding and
//! checkpointing land.
//!
//! # Quickstart
//!
//! ```
//! use scout::core::ScoutEngine;
//! use scout::fabric::Fabric;
//! use scout::policy::{sample, ObjectId};
//!
//! // Deploy the paper's 3-tier Web/App/DB example policy.
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//!
//! // Something goes wrong: the port-700 rules silently vanish from the TCAMs.
//! for switch in [sample::S2, sample::S3] {
//!     fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
//! }
//!
//! // SCOUT detects the inconsistency and localizes the faulty object.
//! let report = ScoutEngine::new().analyze(&fabric);
//! assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
//! ```
//!
//! For continuous monitoring, open an
//! [`AnalysisSession`](scout_core::AnalysisSession) on the engine and stream
//! typed [`FabricEvent`](scout_fabric::FabricEvent) batches into it — see the
//! `scout_core` crate docs for the service API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use scout_bdd as bdd;
pub use scout_core as core;
pub use scout_equiv as equiv;
pub use scout_fabric as fabric;
pub use scout_faults as faults;
pub use scout_metrics as metrics;
pub use scout_policy as policy;
pub use scout_server as server;
pub use scout_sim as sim;
pub use scout_store as store;
pub use scout_workload as workload;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use scout_core::{
        score_localize, scout_localize, AnalysisSession, CorrelationEngine, EngineBuildError,
        EngineConfig, Hypothesis, OracleCadence, ReportDelta, RiskModel, ScoutConfig, ScoutEngine,
        ScoutEngineBuilder, ScoutReport, SessionError, Snapshot, SnapshotError,
    };
    pub use scout_equiv::EquivalenceChecker;
    pub use scout_fabric::{EventBatch, Fabric, FabricEvent, FabricProbe, FabricView, FaultKind};
    pub use scout_faults::{FaultInjector, ObjectFaultKind};
    pub use scout_metrics::{Accuracy, Cdf, Summary};
    pub use scout_policy::{
        sample, EpgPair, ObjectClass, ObjectId, PolicyUniverse, SwitchEpgPair, TcamRule,
    };
    pub use scout_server::{
        AdmissionConfig, Cluster, ClusterConfig, OverloadPolicy, ScoutServer, ServerConfig,
        ServerError, ServerRequest, ServerResponse,
    };
    pub use scout_sim::{
        Campaign, CampaignReport, CrashSoak, CrashSoakReport, FleetSoak, MultiTenantSoak,
        ScenarioKind, ScenarioMix, SoakReport, Timeline, WorkloadKind,
    };
    pub use scout_store::{
        verify_dir, CrashPlan, DurableEngine, DurableSession, StoreConfig, StoreError, StoreSummary,
    };
    pub use scout_workload::{ClusterSpec, ScaleSpec, TestbedSpec};
}
