//! Use case 3 of §V-B: "too many missing rules".
//!
//! A large policy (a scaled-down version of the paper's production cluster) is
//! pushed while one switch is unresponsive, so every rule destined for that
//! switch goes missing — the paper observed more than 300 K missing rules in
//! this situation. Without fault localization an operator would have to sift
//! through thousands of suspect objects; SCOUT narrows the problem down to the
//! unresponsive switch.
//!
//! Run with:
//! ```text
//! cargo run --release --example datacenter_audit
//! ```

use scout::core::ScoutEngine;
use scout::fabric::{Fabric, FaultKind};
use scout::policy::ObjectId;
use scout::workload::ClusterSpec;

fn main() {
    // A cluster-like policy: 3 VRFs, 60 EPGs, 40 contracts, 16 filters on 8
    // switches (use ClusterSpec::paper() for the full-size dataset).
    let universe = ClusterSpec::small().generate(42);
    println!("generated cluster policy: {:?}", universe.stats());

    let victim = universe.switch_ids()[0];
    let mut fabric = Fabric::new(universe);

    // The victim switch never answers the controller during the deployment.
    fabric.disconnect_switch(victim);
    let report = fabric.deploy();
    println!(
        "deployment pushed {} instructions; {} were lost towards {}",
        report.instructions_sent,
        report.lost_in_channel(),
        victim
    );

    let analysis = ScoutEngine::new().analyze(&fabric);
    println!("\n--- SCOUT report ---");
    println!("missing rules          : {}", analysis.missing_rule_count());
    println!("failed (switch, pair)s : {}", analysis.observations.len());
    println!(
        "suspect objects        : {}",
        analysis.suspect_objects.len()
    );
    println!("hypothesis size        : {}", analysis.hypothesis.len());
    println!("suspect-set reduction γ: {:.4}", analysis.gamma());

    println!("\nhypothesis:");
    for (object, _) in analysis.hypothesis.iter() {
        println!("  - {object}");
    }
    println!("\nmost likely root causes:");
    for (kind, count) in analysis.diagnosis.most_likely() {
        println!("  {kind}: explains {count} objects");
    }

    assert!(
        analysis.hypothesis.contains(ObjectId::Switch(victim)),
        "the unresponsive switch must be part of the hypothesis"
    );
    assert!(analysis
        .diagnosis
        .causes_by_kind()
        .contains_key(&FaultKind::SwitchUnreachable));
    assert!(analysis.gamma() < 0.2);
    println!(
        "\nSCOUT reduced {} suspects to {} objects and blamed {} (unreachable switch)",
        analysis.suspect_objects.len(),
        analysis.hypothesis.len(),
        victim
    );
}
