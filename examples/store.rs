//! Durability walkthrough: journal every epoch, crash, recover, verify.
//!
//! Opens a durable monitoring session over a churning testbed fabric, lets
//! the hash-chained journal roll segments and write snapshot anchors, then
//! exercises the three durability stories end to end:
//!
//! * a SIGKILL-simulated crash mid-commit (the store's own abort points,
//!   torn partial appends included) followed by recovery and a re-feed of
//!   the lost epochs — bit-identical to an uninterrupted reference session;
//! * offline verification of every byte on disk, and tamper evidence: one
//!   flipped byte anywhere turns verification into a typed error;
//! * compaction: segments fully covered by the newest anchor are gone, yet
//!   recovery still lands exactly where the live session was.
//!
//! Run with:
//! ```text
//! cargo run --example store
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use scout::core::ScoutEngine;
use scout::fabric::{EventBatch, Fabric, FabricProbe};
use scout::store::test_dir::TestDir;
use scout::store::{verify_dir, CrashPlan, DurableEngine, StoreConfig, StoreError};
use scout::workload::TestbedSpec;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut fabric = Fabric::new(TestbedSpec::paper().generate(9));
    fabric.deploy();
    let engine = ScoutEngine::new();
    let dir = TestDir::new("example-store");

    // Small store knobs so a 30-epoch run crosses several segment rolls,
    // anchors and compaction cycles. The crash plan arms a countdown: after
    // that many file operations, the next one "kills the process" (and may
    // leave a torn partial append behind, exactly like a real SIGKILL).
    let config = StoreConfig {
        snapshot_every: 5,
        segment_max_records: 4,
        ..StoreConfig::default()
    };
    let plan = CrashPlan {
        abort_after_ops: 60,
        partial_seed: rng.next_u64(),
    };
    println!(
        "opening durable store at {} (snapshot every {}, {} records/segment)",
        dir.path().display(),
        config.snapshot_every,
        config.segment_max_records,
    );

    let mut reference = engine.open_session(&fabric);
    let mut durable = engine
        .open_durable(
            &fabric,
            dir.path(),
            StoreConfig {
                crash_plan: Some(plan),
                ..config
            },
        )
        .expect("store opens");
    let mut probe = FabricProbe::new(&fabric);

    // Drive 30 epochs of churn through both sessions; retain the batches so
    // the durable session can be re-fed after the crash.
    let mut batches: Vec<EventBatch> = Vec::new();
    let mut crash_story = None;
    for epoch in 1..=30u64 {
        let ids = fabric.universe().switch_ids();
        let switch = ids[rng.gen_range(0usize..ids.len())];
        if epoch.is_multiple_of(3) {
            fabric.evict_tcam(switch, 1, false);
        } else {
            fabric.repair_switch(switch);
        }
        let batch = EventBatch::new(epoch, probe.observe(&fabric));
        batches.push(batch.clone());
        reference.ingest(batch).expect("reference ingests");

        loop {
            let next = durable.next_epoch();
            if next > epoch {
                break;
            }
            match durable.ingest(batches[next as usize - 1].clone()) {
                Ok(_) => {}
                Err(StoreError::InjectedCrash) => {
                    println!("epoch {next:>2}: CRASH mid-commit (journal may be torn)");
                    drop(durable);
                    durable = engine
                        .recover(dir.path(), config)
                        .expect("a killed store recovers");
                    let stats = durable.store_stats();
                    println!(
                        "epoch {:>2}: recovered ({} batches replayed, {} torn bytes truncated)",
                        durable.epoch(),
                        stats.replayed_on_recover,
                        stats.torn_bytes_truncated,
                    );
                    crash_story = Some((next, durable.epoch()));
                }
                Err(other) => panic!("unexpected store error: {other}"),
            }
        }
    }

    let (crashed_at, recovered_to) = crash_story.expect("the countdown fires mid-run");
    assert_eq!(
        durable.full_report(),
        reference.full_report(),
        "after the crash, recovery and a re-feed must be bit-identical"
    );
    println!(
        "\ncrashed at epoch {crashed_at}, recovered to epoch {recovered_to}, \
         re-fed to epoch {} — bit-identical to the uninterrupted session",
        durable.epoch()
    );

    let stats = *durable.store_stats();
    println!(
        "store: {} appends, {} fsyncs, {} segments rolled, {} removed by \
         compaction, {} anchors written",
        stats.appends,
        stats.syncs,
        stats.segments_rolled,
        stats.segments_removed,
        stats.anchors_written,
    );
    drop(durable);

    // Offline verification walks every byte: anchors, segment headers,
    // record frames, payloads and the full hash chain.
    let summary = verify_dir(dir.path()).expect("clean store verifies");
    println!(
        "verify: last epoch {}, anchor at {}, {} segments + {} anchor on disk, \
         {} journal records",
        summary.last_epoch,
        summary.anchor_epoch,
        summary.segments,
        summary.anchors,
        summary.records,
    );
    assert_eq!(summary.last_epoch, 30);
    assert_eq!(
        summary.anchors, 1,
        "compaction keeps only the newest anchor"
    );

    // Tamper evidence: flip one byte in the middle of a journal segment and
    // verification fails with a typed error instead of accepting the store.
    let segment = std::fs::read_dir(dir.path().join("journal"))
        .expect("journal dir")
        .map(|e| e.expect("dir entry").path())
        .min()
        .expect("a segment exists");
    let clean = std::fs::read(&segment).expect("segment reads");
    let mut damaged = clean.clone();
    damaged[clean.len() / 2] ^= 0x01;
    std::fs::write(&segment, &damaged).expect("tampered write");
    let err = verify_dir(dir.path()).expect_err("tampering must be detected");
    println!("\nflipped one byte of {}:\n  -> {err}", segment.display());
    std::fs::write(&segment, &clean).expect("segment restored");

    // With the byte restored, recovery lands exactly where the run ended.
    let recovered = engine.recover(dir.path(), config).expect("store recovers");
    assert_eq!(recovered.epoch(), 30);
    assert_eq!(recovered.full_report(), reference.full_report());
    println!("\nrestored the byte: recovery at epoch 30 is bit-identical again");
}
