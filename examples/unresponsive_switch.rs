//! Use case 2 of §V-B: an unresponsive switch.
//!
//! While the controller pushes "add filter" instructions for the 3-tier
//! policy, switch S2 silently stops responding. The other switches receive the
//! new rules; S2 does not. The equivalence checker reports the rules of the
//! new filters as missing on S2, SCOUT localizes those filters (their hit
//! ratio is below 1, so the change-log stage attributes them), and the
//! correlation engine detects that the filters were created while the switch
//! was unreachable.
//!
//! Run with:
//! ```text
//! cargo run --example unresponsive_switch
//! ```

use scout::core::{Evidence, ScoutEngine};
use scout::fabric::{Fabric, FaultKind};
use scout::policy::{sample, ObjectId};
use scout::workload::{add_filter_to_contract, next_filter_id};

fn main() {
    let mut universe = sample::three_tier();
    let mut fabric = Fabric::new(universe.clone());
    fabric.deploy();
    println!("initial deployment complete; all three switches consistent");

    // S2 stops responding to the controller (e.g. its control channel is
    // silently dropping packets).
    fabric.disconnect_switch(sample::S2);
    println!("{} became unresponsive", sample::S2);

    // The tenant now adds two new filters to the App-DB contract; the
    // corresponding rules reach S3 but not S2.
    let mut added = Vec::new();
    for port in [8080u16, 8443] {
        let filter = next_filter_id(&universe);
        universe = add_filter_to_contract(&universe, sample::C_APP_DB, filter, port)
            .expect("contract exists");
        let report = fabric.update_policy(universe.clone());
        println!(
            "added filter {filter} (tcp/{port}): {} of {} instructions lost in the channel",
            report.lost_in_channel(),
            report.instructions_sent
        );
        added.push(filter);
    }

    let analysis = ScoutEngine::new().analyze(&fabric);
    println!("\n--- SCOUT report ---");
    println!("missing rules : {}", analysis.missing_rule_count());
    println!("hypothesis    :");
    for (object, evidence) in analysis.hypothesis.iter() {
        println!("  - {object}  ({evidence:?})");
    }

    // The new filters are localized through the change-log stage.
    for filter in &added {
        assert!(analysis.hypothesis.contains(ObjectId::Filter(*filter)));
        assert!(matches!(
            analysis.hypothesis.evidence(ObjectId::Filter(*filter)),
            Some(Evidence::RecentChange { .. })
        ));
    }

    println!("\n--- physical root causes ---");
    for diagnosis in analysis.diagnosis.diagnoses() {
        for cause in &diagnosis.causes {
            println!("  {}: {cause:?}", diagnosis.object);
        }
    }
    assert!(analysis
        .diagnosis
        .causes_by_kind()
        .contains_key(&FaultKind::SwitchUnreachable));
    println!(
        "\nthe filters added while {} was down are correctly attributed to the unreachable switch",
        sample::S2
    );
}
