//! Serving-layer walkthrough: the front door, quotas, and failover.
//!
//! Part 1 mounts a single [`ScoutServer`] front door with a deliberately
//! tight admission quota and lets one tenant flood it: the burst is
//! admitted, the overflow parks in the tenant's bounded queue, and the rest
//! is shed with a typed error carrying a retry hint — while a second tenant
//! on the same server is admitted untouched.
//!
//! Part 2 stands up a simulated 3-node [`Cluster`], spreads tenants across
//! it, and kills the leader mid-run. Requests hitting the dead owner are
//! shed (typed backpressure, not a hang), heartbeats declare the death, the
//! new leader replays the orphans' journals onto survivors, and the final
//! reports come out bit-identical to a direct single-threaded engine replay.
//!
//! Run with:
//! ```text
//! cargo run --example server
//! ```

use scout::core::ScoutEngine;
use scout::fabric::{EventBatch, Fabric, FabricProbe};
use scout::server::{
    AdmissionConfig, Cluster, ClusterConfig, OverloadPolicy, ScoutServer, ServerConfig,
    ServerError, ServerRequest, ServerResponse,
};
use scout::store::test_dir::TestDir;
use scout::workload::TestbedSpec;

const EPOCHS: u64 = 8;

fn tenant_universe(tenant: u64) -> scout::policy::PolicyUniverse {
    TestbedSpec {
        epgs: 10,
        contracts: 6,
        filters: 4,
        target_pairs: 14,
        switches: 3,
        tcam_capacity: 1024,
    }
    .generate(500 + tenant)
}

/// Pre-records one tenant's drift timeline: alternating TCAM evictions and
/// repairs, observed once per epoch.
fn tenant_batches(tenant: u64) -> Vec<EventBatch> {
    let mut fabric = Fabric::new(tenant_universe(tenant));
    fabric.deploy();
    let mut probe = FabricProbe::new(&fabric);
    (1..=EPOCHS)
        .map(|epoch| {
            let switch = fabric.universe().switch_ids()[(tenant + epoch) as usize % 3];
            if epoch % 2 == 0 {
                fabric.evict_tcam(switch, 1, false);
            } else {
                fabric.repair_switch(switch);
            }
            EventBatch::new(epoch, probe.observe(&fabric))
        })
        .collect()
}

/// The direct-engine oracle for one tenant: no server, no quotas.
fn direct_replay(tenant: u64) -> scout::core::ScoutReport {
    let mut fabric = Fabric::new(tenant_universe(tenant));
    fabric.deploy();
    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    for batch in tenant_batches(tenant) {
        session.ingest(batch).expect("recorded batches ingest");
    }
    session.full_report().clone()
}

fn open(handle: &mut dyn FnMut(ServerRequest) -> ServerResponse, tenant: u64) {
    match handle(ServerRequest::OpenSession {
        tenant,
        universe: tenant_universe(tenant),
    }) {
        ServerResponse::Opened { epoch, .. } => {
            println!("tenant {tenant}: session open at epoch {epoch}")
        }
        other => panic!("open failed: {other:?}"),
    }
}

fn main() {
    // ── Part 1: one front door, a tight quota, a noisy neighbour ────────
    let admission = AdmissionConfig {
        quota_tokens: 3,
        refill_per_tick: 1,
        queue_capacity: 2,
        policy: OverloadPolicy::Queue,
    };
    let mut server = ScoutServer::new(ScoutEngine::new(), ServerConfig::in_memory(admission));
    println!(
        "== front door (quota {} tokens, +{}/tick, queue {}): ==",
        admission.quota_tokens, admission.refill_per_tick, admission.queue_capacity
    );
    open(&mut |r| server.handle(r), 0);
    open(&mut |r| server.handle(r), 1);

    // Tenant 0 floods; its lane absorbs what the quota allows and sheds the
    // rest with a typed, actionable error.
    let flood = tenant_batches(0);
    for batch in &flood[..6] {
        let epoch = batch.epoch;
        match server.handle(ServerRequest::Ingest {
            tenant: 0,
            batch: batch.clone(),
        }) {
            ServerResponse::Ingested { .. } => println!("  epoch {epoch}: ingested"),
            ServerResponse::Queued { depth, .. } => {
                println!("  epoch {epoch}: queued (depth {depth})")
            }
            ServerResponse::Error(ServerError::Shed { retry_hint, .. }) => {
                println!("  epoch {epoch}: SHED — retry after {retry_hint} tick(s)");
            }
            other => panic!("unexpected verdict: {other:?}"),
        }
    }

    // The bystander is untouched by the flood: admitted instantly.
    match server.handle(ServerRequest::Ingest {
        tenant: 1,
        batch: tenant_batches(1).remove(0),
    }) {
        ServerResponse::Ingested { .. } => println!("tenant 1: admitted mid-flood, no queueing"),
        other => panic!("bystander was not spared: {other:?}"),
    }

    // Tick-driven refill drains the queue and lets the retries through.
    for batch in &flood[5..] {
        loop {
            match server.handle(ServerRequest::Ingest {
                tenant: 0,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { .. } | ServerResponse::Queued { .. } => break,
                ServerResponse::Error(ServerError::Shed { .. }) => {
                    server.tick();
                }
                other => panic!("unexpected retry verdict: {other:?}"),
            }
        }
    }
    while server.queue_depth(0) > 0 {
        server.tick();
    }
    assert_eq!(server.full_report(0), Some(&direct_replay(0)));
    println!("tenant 0: retried under refill — report bit-identical to direct replay");
    let stats = server.engine().gauges().snapshot();
    println!(
        "gauges: {} admitted, {} shed, queue peak {}\n",
        stats.admitted, stats.shed, stats.queue_peak
    );

    // ── Part 2: a 3-node cluster loses its leader mid-run ───────────────
    let dir = TestDir::new("example-server");
    let config = ClusterConfig {
        nodes: 3,
        heartbeat_timeout: 1,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(dir.path(), config);
    println!(
        "== cluster ({} nodes, heartbeat timeout {}): ==",
        config.nodes, config.heartbeat_timeout
    );
    let tenants: Vec<u64> = (0..6).collect();
    for &tenant in &tenants {
        open(&mut |r| cluster.handle(r), tenant);
    }
    let batches: Vec<Vec<EventBatch>> = tenants.iter().map(|&t| tenant_batches(t)).collect();

    // First half of every timeline, then the kill.
    for epoch in 0..EPOCHS / 2 {
        for &tenant in &tenants {
            match cluster.handle(ServerRequest::Ingest {
                tenant,
                batch: batches[tenant as usize][epoch as usize].clone(),
            }) {
                ServerResponse::Ingested { .. } => {}
                other => panic!("pre-kill ingest failed: {other:?}"),
            }
        }
    }
    let leader = cluster.leader().expect("a live cluster has a leader");
    let orphans: Vec<u64> = tenants
        .iter()
        .copied()
        .filter(|&t| cluster.owner(t) == Some(leader))
        .collect();
    cluster.kill_node(leader);
    println!("killed node {leader} (the leader) — it owned tenants {orphans:?}");

    // The dead-owner window: typed backpressure until failover completes.
    for epoch in EPOCHS / 2..EPOCHS {
        for &tenant in &tenants {
            loop {
                match cluster.handle(ServerRequest::Ingest {
                    tenant,
                    batch: batches[tenant as usize][epoch as usize].clone(),
                }) {
                    ServerResponse::Ingested { .. } => break,
                    ServerResponse::Error(ServerError::Shed { .. }) => {
                        let report = cluster.tick();
                        for m in report.failed_over {
                            println!(
                                "  failover: tenant {} journal-replayed onto node {}",
                                m.tenant, m.to
                            );
                        }
                    }
                    other => panic!("post-kill ingest failed: {other:?}"),
                }
            }
        }
    }
    println!(
        "new leader: node {} — survivors {:?}",
        cluster.leader().expect("a new leader was elected"),
        cluster.alive_nodes()
    );

    for &tenant in &tenants {
        match cluster.handle(ServerRequest::Query { tenant }) {
            ServerResponse::Report { report, .. } => {
                assert_eq!(report, direct_replay(tenant));
            }
            other => panic!("query failed: {other:?}"),
        }
    }
    println!(
        "all {} final reports bit-identical to direct replay",
        tenants.len()
    );
}
