//! Production-scale monitoring: a 1000-switch fabric under continuous churn.
//!
//! Generates the 1000-switch member of the large-fabric preset family, opens
//! one long-lived analysis session on it, and drives 20 churn epochs through
//! the incremental ingest path — mostly single-switch events, with a
//! correlated 50-switch front every fifth epoch. The per-epoch ingest
//! latencies are reported as a sparkline from the session's own telemetry,
//! and the final incremental report is checked bit-identical against a
//! from-scratch analysis of the end state.
//!
//! Run with:
//! ```text
//! cargo run --release --example scale
//! ```

use std::time::Instant;

use scout::core::ScoutEngine;
use scout::fabric::{Fabric, FabricProbe};
use scout::workload::ScaleSpec;

const EPOCHS: usize = 20;
/// Width of the correlated event front (5% of the fabric).
const FRONT: usize = 50;

fn main() {
    let spec = ScaleSpec::large_1k();
    let t0 = Instant::now();
    let universe = spec.generate(42);
    let mut fabric = Fabric::new(universe);
    fabric.deploy();
    let stats = fabric.universe().stats();
    println!(
        "fabric: {} switches, {} EPG pairs, {} TCAM rules (generated + deployed in {:.2?})",
        stats.switches,
        stats.epg_pairs,
        fabric
            .collect_tcam()
            .values()
            .map(|rules| rules.len())
            .sum::<usize>(),
        t0.elapsed(),
    );

    let engine = ScoutEngine::new();
    let t0 = Instant::now();
    let mut session = engine.open_session(&fabric);
    println!(
        "session opened (full initial analysis) in {:.2?}",
        t0.elapsed()
    );

    // Churn loop: evict on even epochs, repair the same switches on odd ones,
    // so damage never accumulates. Every fifth epoch dirties a 50-switch
    // front instead of a single switch.
    let mut probe = FabricProbe::new(&fabric);
    let switch_ids = fabric.universe().switch_ids();
    for epoch in 0..EPOCHS {
        let width = if epoch % 5 == 4 { FRONT } else { 1 };
        let window = epoch / 2;
        for i in 0..width {
            let switch = switch_ids[(window * FRONT + i) % switch_ids.len()];
            if epoch.is_multiple_of(2) {
                fabric.evict_tcam(switch, 1, false);
            } else {
                fabric.repair_switch(switch);
            }
        }
        let delta = session
            .ingest_observation(&mut probe, &fabric)
            .expect("probe batches are sequential");
        println!(
            "epoch {epoch:>2}: {width:>2} switch(es) dirtied, delta {}",
            if delta.is_noop() { "noop" } else { "emitted" },
        );
    }

    // The session's own telemetry: per-epoch ingest latency as a time series.
    let stats = session.stats();
    let latency = stats.ingest_latency.summary();
    println!(
        "\n{} ingests ({} events, {} switches re-checked)",
        stats.ingests, stats.events, stats.rechecked_switches,
    );
    println!(
        "ingest latency: mean {:.1} ms, max {:.1} ms  {}",
        latency.mean / 1e6,
        latency.max / 1e6,
        stats.ingest_latency.sparkline(EPOCHS),
    );

    // Differential oracle on the end state.
    let t0 = Instant::now();
    let reference = engine.analyze(&fabric);
    assert_eq!(
        *session.full_report(),
        reference,
        "incremental session diverged from from-scratch analysis"
    );
    println!(
        "oracle: from-scratch analysis in {:.2?}, bit-identical to the session report",
        t0.elapsed(),
    );
}
