//! Soak run: continuous monitoring over a multi-epoch fault timeline.
//!
//! Keeps one fabric alive for 40 epochs while faults are injected (possibly
//! overlapping), repaired online, and concurrent policy edits land — the
//! monitor re-analyzes every epoch through the incremental path and a
//! differential oracle cross-checks it against from-scratch analysis.
//!
//! Run with:
//! ```text
//! cargo run --example soak
//! ```

use scout::sim::{Timeline, WorkloadKind};
use scout::workload::TestbedSpec;

fn main() {
    let timeline = Timeline::new(WorkloadKind::Testbed(TestbedSpec::paper()), 40, 7);
    println!(
        "soak: {} epochs, seed {}, inject/repair/edit rates {}/{}/{}\n",
        timeline.epochs,
        timeline.seed,
        timeline.inject_rate,
        timeline.repair_rate,
        timeline.edit_rate,
    );

    let run = timeline.run();

    // A narrated timeline: one line per epoch where something happened.
    for epoch in &run.outcome.epochs {
        let mut events = Vec::new();
        for &id in &epoch.injected {
            let fault = &run.outcome.faults[id];
            events.push(format!("+fault #{id} ({})", fault.kind));
        }
        for &id in &epoch.repaired {
            events.push(format!("~repair #{id}"));
        }
        for &id in &epoch.healed {
            events.push(format!("-healed #{id}"));
        }
        if epoch.policy_edit {
            events.push("policy edit".to_string());
        }
        if events.is_empty() {
            continue;
        }
        println!(
            "epoch {:>3}: {:<46} missing {:>3}, hypothesis {:>2}, oracle {}",
            epoch.epoch,
            events.join(", "),
            epoch.missing_rules,
            epoch.hypothesis.len(),
            match epoch.oracle_agrees {
                Some(true) => "✓",
                Some(false) => "✗",
                None => "-",
            },
        );
    }

    let report = run.outcome.report();
    println!("\n{}", report.table());
    println!("{}", report.timeline_table(40));

    // The monitor session's own telemetry: one ingest per epoch, with the
    // per-ingest latency recorded as a time series.
    let stats = &run.session_stats;
    let latency = stats.ingest_latency.summary();
    println!(
        "session: {} ingests ({} events, {} empty batches), {} switches re-checked",
        stats.ingests, stats.events, stats.empty_batches, stats.rechecked_switches
    );
    println!(
        "ingest latency: mean {:.1} µs, max {:.1} µs  {}",
        latency.mean / 1e3,
        latency.max / 1e3,
        stats.ingest_latency.sparkline(40)
    );

    assert!(
        run.outcome.oracle_disagreements().is_empty(),
        "incremental monitoring diverged from from-scratch analysis"
    );
    println!(
        "differential oracle: all {} epochs bit-identical",
        report.oracle_epochs
    );
}
