//! Quickstart: the paper's running example, end to end.
//!
//! Builds the 3-tier Web/App/DB policy of Figure 1, deploys it onto a
//! simulated three-switch fabric, silently breaks the port-700 filter the way
//! a buggy switch agent would, and runs the full SCOUT pipeline: L–T
//! equivalence check → risk model augmentation → fault localization → root
//! cause correlation.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use scout::core::ScoutEngine;
use scout::fabric::Fabric;
use scout::policy::{sample, ObjectId};

fn main() {
    // 1. Deploy the tenant policy of Figure 1.
    let universe = sample::three_tier();
    println!("policy objects: {:?}", universe.stats());
    let mut fabric = Fabric::new(universe);
    let report = fabric.deploy();
    println!(
        "deployed {} TCAM rules across {} switches\n",
        report.rules_applied,
        fabric.universe().stats().switches
    );

    // 2. Something goes wrong: the rules derived from the port-700 filter
    //    silently vanish from the TCAMs of S2 and S3 (rules 5 and 6 of
    //    Figure 2), e.g. due to a software bug in the switch agent.
    for switch in [sample::S2, sample::S3] {
        let removed = fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        println!("{}: silently lost {} rules", switch, removed.len());
    }

    // 3. Run SCOUT through the service facade.
    let engine = ScoutEngine::new();
    let analysis = engine.analyze(&fabric);

    println!("\n--- SCOUT report ---");
    println!("consistent          : {}", analysis.is_consistent());
    println!("missing rules       : {}", analysis.missing_rule_count());
    println!("observations        : {}", analysis.observations.len());
    println!("suspect objects     : {}", analysis.suspect_objects.len());
    println!("hypothesis (γ={:.2}) :", analysis.gamma());
    for (object, evidence) in analysis.hypothesis.iter() {
        let name = fabric
            .universe()
            .object_name(*object)
            .unwrap_or("<unknown>")
            .to_string();
        println!("  - {object} ({name})  evidence: {evidence:?}");
    }

    println!("\n--- physical root causes ---");
    for diagnosis in analysis.diagnosis.diagnoses() {
        println!("  {}:", diagnosis.object);
        for cause in &diagnosis.causes {
            println!("    {cause:?}");
        }
    }

    // The faulty object is the port-700 filter; with no fault log the root
    // cause is unknown (a silent software bug), exactly as §V-B discusses.
    assert!(analysis
        .hypothesis
        .contains(ObjectId::Filter(sample::F_700)));
    println!(
        "\nSCOUT correctly localized {}",
        ObjectId::Filter(sample::F_700)
    );
}
