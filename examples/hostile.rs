//! Hostile telemetry: what SCOUT does when its inputs lie.
//!
//! Three short acts:
//!
//! 1. **Gap → resync.** A probe's delta batch is lost in transit; the next
//!    delivery surfaces as a typed [`SessionError::EpochGap`] naming the
//!    missing epoch range, and one full fabric read realigns the session —
//!    bit-identical to a from-scratch analysis.
//! 2. **Ranked partial diagnosis.** A silent TCAM eviction with a wiped
//!    fault log still yields a ranked, confidence-scored cause list instead
//!    of an empty correlation.
//! 3. **The five-class sweep.** A seeded hostile campaign (lossy probe,
//!    torn sync, flapping faults, gray failures, missing logs) prints its
//!    per-class SCOUT-vs-SCORE accuracy table.
//!
//! Run with:
//! ```text
//! cargo run --release --example hostile
//! ```

use scout::core::{ScoutEngine, SessionError};
use scout::fabric::{EventBatch, Fabric, FabricProbe, FaultLog};
use scout::policy::sample;
use scout::sim::{HostileCampaign, WorkloadKind};
use scout::workload::TestbedSpec;

fn main() {
    // --- Act 1: a lost batch, an epoch gap, a full resync. ---------------
    let engine = ScoutEngine::new();
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);
    println!("act 1: monitoring a healthy 3-tier fabric (epoch 0)");

    // Epoch 1 happens — and its batch is dropped by the transport. The
    // probe's cursors advance regardless: the delta is gone for good.
    fabric.evict_tcam(sample::S2, 2, true);
    let _lost = probe.observe(&fabric);
    println!(
        "  epoch 1: 2 rules evicted on {}; batch lost in transit",
        sample::S2
    );

    // Epoch 2 arrives and reveals the gap.
    fabric.evict_tcam(sample::S3, 1, true);
    let late = EventBatch::new(2, probe.observe(&fabric));
    match session.ingest(late) {
        Err(SessionError::EpochGap { resync }) => {
            println!(
                "  epoch 2: gap detected — epochs {}..={} missing ({} lost)",
                resync.from_epoch,
                resync.observed_epoch,
                resync.missing_epochs()
            );
            let delta = session
                .resync(resync.observed_epoch, probe.full_resync(&fabric))
                .expect("a forward resync is accepted");
            println!(
                "  full resync at epoch {}: {} switches rechecked, consistent = {}",
                delta.epoch,
                delta.rechecked.len(),
                delta.consistent
            );
        }
        other => panic!("expected an epoch gap, got {other:?}"),
    }
    assert_eq!(*session.full_report(), engine.analyze(&fabric));
    assert_eq!(session.stats().resyncs, 1);
    println!("  recovered session is bit-identical to a from-scratch analysis\n");

    // --- Act 2: ranked partial diagnosis with no fault logs. -------------
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    fabric.evict_tcam(sample::S1, 2, false); // silent: the switch logs nothing
    *fabric.fault_log_mut() = FaultLog::new(); // and the collector lost the rest
    let report = engine.analyze(&fabric);
    assert!(!report.is_consistent());
    let ranked = engine.correlation().rank_partial(
        &report.hypothesis,
        &report.suspect_objects,
        fabric.universe(),
        fabric.change_log(),
        fabric.fault_log(),
    );
    assert!(!ranked.is_empty());
    println!(
        "act 2: silent eviction on {}, fault log wiped — ranked partial diagnosis:",
        sample::S1
    );
    for (i, cause) in ranked.top(3).iter().enumerate() {
        println!(
            "  #{} {}  confidence {:.2}  ({:?})",
            i + 1,
            cause.object,
            cause.confidence,
            cause.cause
        );
    }
    println!();

    // --- Act 3: the five-class hostile sweep. ----------------------------
    println!("act 3: seeded hostile campaign, 20 scenarios per class:");
    let campaign = HostileCampaign::new(WorkloadKind::Testbed(TestbedSpec::paper()), 20, 42);
    let run = campaign.run();
    println!("{}", run.report().table());
}
