//! Use case 1 of §V-B: TCAM overflow.
//!
//! The tenant keeps adding filters to the Contract:App-DB object of the 3-tier
//! policy. The switches have a deliberately tiny TCAM, so at some point the
//! installs start failing and the switch raises TCAM-overflow faults. SCOUT
//! localizes the filters whose rules never made it into hardware, and the
//! event correlation engine tags them with the TCAM-overflow signature.
//!
//! Run with:
//! ```text
//! cargo run --example tcam_overflow
//! ```

use scout::core::ScoutEngine;
use scout::fabric::{Fabric, FaultKind};
use scout::policy::sample;
use scout::workload::{add_filter_to_contract, next_filter_id};

fn main() {
    // Switches with room for only 8 TCAM entries each.
    let mut universe = sample::three_tier_with_capacity(8);
    let mut fabric = Fabric::new(universe.clone());
    fabric.deploy();
    println!(
        "initial deployment: S2 holds {} / {} TCAM entries",
        fabric.tcam_rules(sample::S2).len(),
        8
    );

    // The tenant keeps adding one filter after another to Contract:App-DB.
    for i in 0..6 {
        let filter = next_filter_id(&universe);
        let port = 9000 + i;
        universe = add_filter_to_contract(&universe, sample::C_APP_DB, filter, port)
            .expect("the contract exists and the filter id is fresh");
        let report = fabric.update_policy(universe.clone());
        println!(
            "added filter {filter} (tcp/{port}): {} instructions, {} rejected by TCAM",
            report.instructions_sent, report.rules_rejected
        );
    }

    println!(
        "\nS2 TCAM utilization: {}/{} entries; overflow faults logged: {}",
        fabric.tcam_rules(sample::S2).len(),
        8,
        fabric
            .fault_log()
            .entries_of_kind(FaultKind::TcamOverflow)
            .len()
    );

    // Run the end-to-end analysis.
    let analysis = ScoutEngine::new().analyze(&fabric);
    println!("\n--- SCOUT report ---");
    println!("missing rules   : {}", analysis.missing_rule_count());
    println!("suspect objects : {}", analysis.suspect_objects.len());
    println!("hypothesis      : {} objects", analysis.hypothesis.len());
    for (object, _) in analysis.hypothesis.iter() {
        println!("  - {object}");
    }

    println!("\n--- most likely physical root causes ---");
    for (kind, objects) in analysis.diagnosis.most_likely() {
        println!("  {kind}: explains {objects} faulty objects");
    }

    let by_kind = analysis.diagnosis.causes_by_kind();
    assert!(
        by_kind.contains_key(&FaultKind::TcamOverflow),
        "the correlation engine must tag the failed filters with TCAM overflow"
    );
    println!("\nthe failed filters are correctly attributed to TCAM overflow");
}
