//! Regression tests for the incremental equivalence-checking pipeline: an
//! incremental recheck after mutating k of N switches must return results
//! byte-identical to a full `check_network`, and the end-to-end delta-driven
//! session must agree with the one-shot engine analysis.

use std::collections::BTreeSet;

use scout::core::ScoutEngine;
use scout::equiv::{EquivalenceChecker, Parallelism};
use scout::fabric::{Fabric, FabricProbe};
use scout::workload::ScaleSpec;

/// Feeds one observation of `fabric` into `session` as the next epoch.
fn ingest_observation(
    session: &mut scout::core::AnalysisSession,
    probe: &mut FabricProbe,
    fabric: &Fabric,
) {
    session
        .ingest_observation(probe, fabric)
        .expect("observations of a live fabric ingest cleanly");
}

fn deployed_scale_fabric(switches: usize) -> Fabric {
    let mut fabric = Fabric::new(ScaleSpec::with_switches(switches).generate(7));
    fabric.deploy();
    fabric
}

#[test]
fn single_switch_mutation_rechecks_identically() {
    let mut fabric = deployed_scale_fabric(32);
    let checker = EquivalenceChecker::new();
    let baseline = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
    assert!(baseline.is_consistent());

    let checkpoint = fabric.epoch();
    let victim = fabric.universe().switch_ids()[5];
    let removed = fabric.remove_tcam_rules_where(victim, |r| r.matcher.ports.start % 2 == 0);
    assert!(!removed.is_empty());

    let dirty = fabric.dirty_switches_since(checkpoint);
    assert_eq!(dirty, BTreeSet::from([victim]));

    let tcam = fabric.collect_tcam();
    let full = checker.check_network(fabric.logical_rules(), &tcam);
    let incremental = checker.recheck_dirty(&baseline, fabric.logical_rules(), &tcam, &dirty);
    assert_eq!(full, incremental);
    assert_eq!(incremental.inconsistent_switches(), vec![victim]);
}

#[test]
fn multi_switch_mutations_recheck_identically() {
    let mut fabric = deployed_scale_fabric(16);
    let checker = EquivalenceChecker::new();
    let baseline = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());

    let checkpoint = fabric.epoch();
    let victims: Vec<_> = fabric.universe().switch_ids().into_iter().take(3).collect();
    for &victim in &victims {
        fabric.evict_tcam(victim, 2, false);
    }
    let dirty = fabric.dirty_switches_since(checkpoint);
    assert_eq!(dirty.len(), victims.len());

    let tcam = fabric.collect_tcam();
    let full = checker.check_network(fabric.logical_rules(), &tcam);
    let incremental = checker.recheck_dirty(&baseline, fabric.logical_rules(), &tcam, &dirty);
    assert_eq!(full, incremental);
}

#[test]
fn parallel_check_agrees_on_scale_workload() {
    let mut fabric = deployed_scale_fabric(24);
    let victim = fabric.universe().switch_ids()[1];
    fabric.remove_tcam_rules_where(victim, |_| true);

    let logical = fabric.logical_rules();
    let tcam = fabric.collect_tcam();
    let sequential =
        EquivalenceChecker::with_parallelism(Parallelism::Sequential).check_network(logical, &tcam);
    for threads in [2, 4, 7] {
        let parallel = EquivalenceChecker::with_parallelism(Parallelism::Fixed(threads))
            .check_network(logical, &tcam);
        assert_eq!(sequential, parallel, "threads={threads}");
    }
}

#[test]
fn removed_switch_leaves_no_ghost_dirty_entry() {
    let mut fabric = deployed_scale_fabric(4);
    let removed_switch = fabric.universe().switch_ids()[3];
    let checkpoint = fabric.epoch();
    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    // Shrink the policy to 3 switches (same seed: the surviving switches'
    // rule sets are unchanged, so only the removed switch's rules differ).
    fabric.update_policy(ScaleSpec::with_switches(3).generate(7));
    assert!(!fabric.universe().switch_ids().contains(&removed_switch));

    let dirty = fabric.dirty_switches_since(checkpoint);
    assert!(
        !dirty.contains(&removed_switch),
        "a switch that left the network must not stay dirty forever: {dirty:?}"
    );
    // And the delta-driven session agrees with a one-shot analysis afterwards.
    ingest_observation(&mut session, &mut probe, &fabric);
    let incremental = session.full_report();
    assert_eq!(*incremental, engine.analyze(&fabric));
    assert!(!incremental.check.per_switch.contains_key(&removed_switch));
}

/// The ingest-driven session's cached risk model (and the clone-analysis
/// path's) must be bit-identical to from-scratch analyses across a randomized
/// sequence of every mutation class: TCAM removals, corruption, eviction,
/// channel flaps and policy updates.
#[test]
fn cached_risk_models_match_from_scratch_across_random_mutations() {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use scout::fabric::CorruptionKind;
    use scout::workload::{add_random_filter, TestbedSpec};

    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    for seed in 0..4u64 {
        let mut fabric = Fabric::new(spec.generate(seed));
        fabric.deploy();
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let engine = ScoutEngine::new();
        let mut monitor = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        let mut clone_session = engine.open_session(&fabric);

        for step in 0..12 {
            let switch_ids = fabric.universe().switch_ids();
            let &switch = switch_ids.choose(&mut rng).unwrap();
            match rng.gen_range(0u32..6) {
                0 => {
                    let port = rng.gen_range(0u16..1024);
                    fabric
                        .remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port % 7);
                }
                1 => {
                    let index = rng.gen_range(0usize..8);
                    fabric.corrupt_tcam(switch, index, CorruptionKind::VrfBit);
                }
                2 => {
                    fabric.evict_tcam(switch, rng.gen_range(1usize..3), false);
                }
                3 => {
                    fabric.disconnect_switch(switch);
                }
                4 => {
                    fabric.reconnect_switch(switch);
                    fabric.resync();
                }
                _ => {
                    let universe = fabric.universe().clone();
                    if let Some(edit) = add_random_filter(&universe, &mut rng) {
                        fabric.update_policy(edit.universe);
                    }
                }
            }
            let batch = ScoutEngine::new().analyze(&fabric);
            ingest_observation(&mut monitor, &mut probe, &fabric);
            assert_eq!(
                *monitor.full_report(),
                batch,
                "seed {seed} step {step} (ingest)"
            );
            let derived = clone_session.analyze_clone(&fabric);
            assert_eq!(derived, batch, "seed {seed} step {step} (clone)");
        }
    }
}

#[test]
fn incremental_session_tracks_successive_mutations() {
    let mut fabric = deployed_scale_fabric(12);
    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);
    assert!(session.is_consistent());

    // Three successive mutation rounds; after each, the session report must
    // match a from-scratch one-shot analysis.
    let switch_ids = fabric.universe().switch_ids();
    for (round, &victim) in switch_ids.iter().take(3).enumerate() {
        fabric.evict_tcam(victim, 1 + round, false);
        ingest_observation(&mut session, &mut probe, &fabric);
        let batch = engine.analyze(&fabric);
        assert_eq!(*session.full_report(), batch, "round {round}");
    }
    assert_eq!(session.epoch(), 3);
}
