//! Replays the committed regression corpus and pins the snapshot-v1
//! migration contract.
//!
//! `tests/corpus/*.bin` is the executable history of the untrusted decode
//! surface: every bug class the fuzz harness found (or hardening closed off)
//! has its triggering bytes frozen as a `<surface>__<name>.bin` case. This
//! test replays the whole directory through the full oracle set — no panic,
//! no allocation blowup, no non-canonical acceptance — in a debug build, so
//! overflow checks and debug assertions are armed. Regenerate cases with
//! `cargo run -p scout-fuzz --bin gen-corpus` (but see
//! [`snapshot_v1_fixture_stays_restorable`]: the committed v1 fixture must
//! *not* be regenerated across a `SNAPSHOT_VERSION` bump).
//!
//! Linking `scout-fuzz` installs its tracking global allocator, which arms
//! the allocation oracle for this whole test binary.

use std::path::Path;

use scout_core::{ScoutEngine, Snapshot, SNAPSHOT_VERSION};
use scout_fuzz::oracle::{Surface, Verdict};
use scout_fuzz::{alloc, corpus, harness};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

/// Every frozen case meets its expected fate: `__valid`/`__v1` cases decode
/// canonically, everything else is rejected with a typed error, and nothing
/// violates an oracle.
#[test]
fn corpus_replays_clean() {
    assert!(
        alloc::is_installed(),
        "tracking allocator missing; the allocation oracle would be vacuous"
    );
    let results = corpus::replay_dir(corpus_dir()).expect("corpus directory replays");
    assert!(
        results.len() >= 20,
        "corpus shrank to {} cases — cases must not be deleted casually",
        results.len()
    );
    for case in &results {
        let name = case
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 case name");
        let expect_accept = name.ends_with("__valid") || name.ends_with("__v1");
        match &case.verdict {
            Verdict::Accepted => {
                assert!(expect_accept, "{name}: malicious case was accepted")
            }
            Verdict::Rejected(err) => {
                assert!(!expect_accept, "{name}: valid case was rejected: {err}")
            }
            Verdict::Violation(violation) => panic!("{name}: oracle violation: {violation}"),
        }
    }
    // Every decode surface has at least one frozen case.
    for surface in Surface::ALL {
        assert!(
            results.iter().any(|c| c.surface == surface),
            "no corpus case exercises the {surface} surface"
        );
    }
}

/// The committed `snapshot__v1.bin` fixture pins the `SNAPSHOT_VERSION = 1`
/// byte layout: this build must keep decoding and restoring snapshots
/// written by every earlier build of the same version. If this test fails
/// after a schema change, the fix is a version bump plus a migration path —
/// never regenerating the fixture to paper over the break.
#[test]
fn snapshot_v1_fixture_stays_restorable() {
    let bytes = std::fs::read(corpus_dir().join("snapshot__v1.bin")).expect("committed fixture");
    assert_eq!(&bytes[..4], b"SCSN");
    let fixture_version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    assert_eq!(
        fixture_version, SNAPSHOT_VERSION,
        "fixture was written by snapshot version {fixture_version}; this build reads \
         {SNAPSHOT_VERSION} — add a migration, don't regenerate the fixture"
    );

    let snapshot = Snapshot::from_bytes(&bytes).expect("v1 fixture decodes");
    assert!(
        !snapshot.tail().is_empty(),
        "fixture must exercise tail replay, not just the checkpoint"
    );
    // Byte-exact fixpoint, then a full engine restore including the tail.
    assert_eq!(snapshot.to_bytes(), bytes);
    let engine = ScoutEngine::new();
    let session = engine.restore(&snapshot).expect("v1 fixture restores");
    assert_eq!(
        session.epoch(),
        snapshot.epoch() + snapshot.tail().len() as u64
    );
}

/// A deterministic fixed-seed fuzz pass over every surface stays clean in a
/// debug build, and the generators demonstrably penetrate each surface (some
/// inputs accepted, some rejected).
#[test]
fn fixed_seed_fuzz_smoke_is_clean() {
    for report in harness::run(&Surface::ALL, 400, 0xC0FFEE) {
        assert!(
            report.findings.is_empty(),
            "{}: {} oracle violations at 400 iterations",
            report.surface,
            report.findings.len()
        );
        assert!(
            report.accepted > 0 && report.rejected > 0,
            "{}: generators failed to penetrate (accepted {}, rejected {})",
            report.surface,
            report.accepted,
            report.rejected
        );
    }
}
