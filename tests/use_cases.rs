//! The three example use cases of §V-B of the paper, reproduced end to end:
//! TCAM overflow, an unresponsive switch during policy updates, and the
//! "too many missing rules" scenario on a large policy.

use scout::core::{Evidence, ScoutEngine};
use scout::fabric::{Fabric, FaultKind};
use scout::policy::{sample, ObjectId};
use scout::workload::{add_filter_to_contract, next_filter_id, ClusterSpec};

/// §V-B "TCAM overflow": filters added to Contract:App-DB until the TCAM is
/// full. The failed filters are localized and tagged with the TCAM-overflow
/// signature.
#[test]
fn tcam_overflow_use_case() {
    let mut universe = sample::three_tier_with_capacity(8);
    let mut fabric = Fabric::new(universe.clone());
    fabric.deploy();

    let mut rejected_total = 0;
    for i in 0..6u16 {
        let filter = next_filter_id(&universe);
        universe = add_filter_to_contract(&universe, sample::C_APP_DB, filter, 9000 + i)
            .expect("fresh filter id on an existing contract");
        rejected_total += fabric.update_policy(universe.clone()).rules_rejected;
    }
    assert!(rejected_total > 0, "the tiny TCAM must eventually overflow");
    assert!(!fabric
        .fault_log()
        .entries_of_kind(FaultKind::TcamOverflow)
        .is_empty());

    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    // At least one of the added filters is in the hypothesis.
    let added_filters: Vec<ObjectId> = (3..9).map(|i| ObjectId::Filter(i.into())).collect();
    assert!(added_filters.iter().any(|f| report.hypothesis.contains(*f)));
    // And the dominant root cause is TCAM overflow.
    let most_likely = report.diagnosis.most_likely();
    assert_eq!(
        most_likely.first().map(|(k, _)| *k),
        Some(FaultKind::TcamOverflow)
    );
}

/// §V-B "Unresponsive switch": filters are added while S2 is unreachable. The
/// filters are localized through the change-log stage and correlated with the
/// switch-unreachable fault that was active when they were created.
#[test]
fn unresponsive_switch_use_case() {
    let mut universe = sample::three_tier();
    let mut fabric = Fabric::new(universe.clone());
    fabric.deploy();
    fabric.disconnect_switch(sample::S2);

    let mut added = Vec::new();
    for port in [8080u16, 8443] {
        let filter = next_filter_id(&universe);
        universe = add_filter_to_contract(&universe, sample::C_APP_DB, filter, port).unwrap();
        let push = fabric.update_policy(universe.clone());
        assert!(push.lost_in_channel() > 0);
        added.push(filter);
    }

    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    for filter in &added {
        let object = ObjectId::Filter(*filter);
        assert!(report.hypothesis.contains(object), "missing {object}");
        assert!(matches!(
            report.hypothesis.evidence(object),
            Some(Evidence::RecentChange { .. })
        ));
        // The diagnosis for each filter points at the unreachable switch.
        let diagnosis = report.diagnosis.for_object(object).unwrap();
        assert!(diagnosis
            .fault_kinds()
            .contains(&FaultKind::SwitchUnreachable));
    }
}

/// §V-B "Too many missing rules": a large policy is pushed onto a fabric whose
/// first switch never responds, causing a flood of missing rules. SCOUT boils
/// the flood down to the unresponsive switch.
#[test]
fn too_many_missing_rules_use_case() {
    let universe = ClusterSpec::small().generate(42);
    let victim = universe.switch_ids()[0];
    let mut fabric = Fabric::new(universe);
    fabric.disconnect_switch(victim);
    let push = fabric.deploy();
    assert!(
        push.lost_in_channel() > 50,
        "the victim switch loses its whole rule set"
    );

    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    assert!(report.missing_rule_count() > 50);
    // Far fewer hypothesis objects than suspects, and the switch is blamed.
    assert!(report.hypothesis.len() <= 3);
    assert!(report.suspect_objects.len() > 20);
    assert!(report.hypothesis.contains(ObjectId::Switch(victim)));
    assert!(report.gamma() < 0.2);
    assert!(report
        .diagnosis
        .causes_by_kind()
        .contains_key(&FaultKind::SwitchUnreachable));
}
