//! The enforced concurrency contract of the sharded engine: M threads
//! ingesting into M sessions of **one shared `ScoutEngine`** produce reports
//! bit-identical to the same batches replayed sequentially — concurrency
//! changes wall-clock time, never results.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout::core::{ReportDelta, ScoutEngine, ScoutReport};
use scout::fabric::{EventBatch, Fabric, FabricProbe};
use scout::server::{
    AdmissionConfig, OverloadPolicy, ScoutServer, ServerConfig, ServerRequest, ServerResponse,
};
use scout::sim::{MultiTenantSoak, WorkloadKind};
use scout::workload::{random_policy_edit, TestbedSpec};

const TENANTS: usize = 4;
const EPOCHS: usize = 30;

fn tenant_fabric(tenant: usize) -> Fabric {
    let spec = TestbedSpec {
        epgs: 10,
        contracts: 6,
        filters: 4,
        target_pairs: 14,
        switches: 3,
        tcam_capacity: 1024,
    };
    let mut fabric = Fabric::new(spec.generate(1000 + tenant as u64));
    fabric.deploy();
    fabric
}

/// Pre-records each tenant's event-batch stream by churning its fabric once,
/// so the sequential and concurrent passes consume identical inputs.
fn tenant_batches(tenant: usize) -> Vec<EventBatch> {
    let mut fabric = tenant_fabric(tenant);
    let mut probe = FabricProbe::new(&fabric);
    let mut rng = StdRng::seed_from_u64(77 + tenant as u64);
    (1..=EPOCHS as u64)
        .map(|epoch| {
            let switch_ids = fabric.universe().switch_ids();
            let &switch = switch_ids.choose(&mut rng).unwrap();
            match rng.gen_range(0u32..5) {
                0 => {
                    let port = rng.gen_range(0u16..7);
                    fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
                }
                1 => {
                    fabric.evict_tcam(switch, rng.gen_range(1usize..3), true);
                }
                2 => {
                    fabric.repair_switch(switch);
                }
                3 => {
                    let universe = fabric.universe().clone();
                    if let Some(edit) = random_policy_edit(&universe, &mut rng) {
                        fabric.update_policy(edit.universe);
                    }
                }
                _ => {}
            }
            EventBatch::new(epoch, probe.observe(&fabric))
        })
        .collect()
}

/// Drives one tenant's batches through a session of `engine`, returning every
/// emitted delta and the final report.
fn drive(
    engine: &ScoutEngine,
    tenant: usize,
    batches: &[EventBatch],
) -> (Vec<ReportDelta>, ScoutReport) {
    let fabric = tenant_fabric(tenant);
    let mut session = engine.open_session(&fabric);
    let deltas = batches
        .iter()
        .map(|batch| {
            session
                .ingest(batch.clone())
                .expect("recorded batches ingest cleanly")
        })
        .collect();
    (deltas, session.full_report().clone())
}

#[test]
fn concurrent_sessions_on_a_shared_engine_match_sequential_replay() {
    let batches: Vec<Vec<EventBatch>> = (0..TENANTS).map(tenant_batches).collect();

    // Sequential reference: one tenant at a time, same shared engine shape.
    let sequential_engine = ScoutEngine::new();
    let sequential: Vec<_> = (0..TENANTS)
        .map(|tenant| drive(&sequential_engine, tenant, &batches[tenant]))
        .collect();

    // Concurrent run: M threads, M sessions, one shared engine.
    let shared = ScoutEngine::new();
    let mut concurrent: Vec<Option<(Vec<ReportDelta>, ScoutReport)>> =
        (0..TENANTS).map(|_| None).collect();
    std::thread::scope(|scope| {
        let shared = &shared;
        let batches = &batches;
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| scope.spawn(move || (tenant, drive(shared, tenant, &batches[tenant]))))
            .collect();
        for handle in handles {
            let (tenant, result) = handle.join().expect("tenant thread panicked");
            concurrent[tenant] = Some(result);
        }
    });
    assert_eq!(
        shared.session_count(),
        0,
        "every session deregistered from its shard on drop"
    );

    for tenant in 0..TENANTS {
        let (seq_deltas, seq_report) = &sequential[tenant];
        let (con_deltas, con_report) = concurrent[tenant].as_ref().unwrap();
        assert_eq!(
            seq_deltas, con_deltas,
            "tenant {tenant}: concurrent ingestion changed a ReportDelta"
        );
        assert_eq!(
            seq_report, con_report,
            "tenant {tenant}: concurrent ingestion changed the final report"
        );
        // A third, fresh replay on the (now idle) shared engine agrees too.
        let (_, replayed_report) = drive(&shared, tenant, &batches[tenant]);
        assert_eq!(&replayed_report, seq_report);
    }
    assert_eq!(shared.session_count(), 0);
}

/// Drives one tenant's batches through a `scout-server` front door mounted
/// on `engine`, returning the same shape as [`drive`] so results can be
/// compared bit for bit. The quota is sized to admit the whole stream: this
/// test is about concurrency, not backpressure (`tests/server.rs` owns that).
fn drive_via_front_door(
    engine: &ScoutEngine,
    tenant: usize,
    batches: &[EventBatch],
) -> (Vec<ReportDelta>, ScoutReport) {
    let admission = AdmissionConfig {
        quota_tokens: EPOCHS as u64 + 1,
        refill_per_tick: 1,
        queue_capacity: 4,
        policy: OverloadPolicy::Queue,
    };
    let mut server = ScoutServer::new(engine.clone(), ServerConfig::in_memory(admission));
    let id = tenant as u64;
    match server.handle(ServerRequest::OpenSession {
        tenant: id,
        universe: tenant_fabric(tenant).universe().clone(),
    }) {
        ServerResponse::Opened { .. } => {}
        other => panic!("tenant {tenant}: open failed: {other:?}"),
    }
    let deltas = batches
        .iter()
        .map(|batch| {
            match server.handle(ServerRequest::Ingest {
                tenant: id,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { delta, .. } => delta,
                other => panic!("tenant {tenant}: ingest failed: {other:?}"),
            }
        })
        .collect();
    let report = match server.handle(ServerRequest::Query { tenant: id }) {
        ServerResponse::Report { report, .. } => report,
        other => panic!("tenant {tenant}: query failed: {other:?}"),
    };
    match server.handle(ServerRequest::CloseSession { tenant: id }) {
        ServerResponse::Closed { .. } => {}
        other => panic!("tenant {tenant}: close failed: {other:?}"),
    }
    (deltas, report)
}

/// The session-level contract above, ported to the serving layer: M threads
/// each running their own [`ScoutServer`] front door over **one shared
/// engine** produce deltas and reports bit-identical to the direct
/// sequential session replay — the wire-facing layer adds admission and
/// routing, never results.
#[test]
fn concurrent_front_doors_on_a_shared_engine_match_sequential_replay() {
    let batches: Vec<Vec<EventBatch>> = (0..TENANTS).map(tenant_batches).collect();

    let sequential_engine = ScoutEngine::new();
    let sequential: Vec<_> = (0..TENANTS)
        .map(|tenant| drive(&sequential_engine, tenant, &batches[tenant]))
        .collect();

    let shared = ScoutEngine::new();
    let mut served: Vec<Option<(Vec<ReportDelta>, ScoutReport)>> =
        (0..TENANTS).map(|_| None).collect();
    std::thread::scope(|scope| {
        let shared = &shared;
        let batches = &batches;
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| {
                scope.spawn(move || {
                    (
                        tenant,
                        drive_via_front_door(shared, tenant, &batches[tenant]),
                    )
                })
            })
            .collect();
        for handle in handles {
            let (tenant, result) = handle.join().expect("tenant thread panicked");
            served[tenant] = Some(result);
        }
    });
    assert_eq!(
        shared.session_count(),
        0,
        "every CloseSession deregistered its session from the shared engine"
    );

    for tenant in 0..TENANTS {
        let (seq_deltas, seq_report) = &sequential[tenant];
        let (srv_deltas, srv_report) = served[tenant].as_ref().unwrap();
        assert_eq!(
            seq_deltas, srv_deltas,
            "tenant {tenant}: the front door changed a ReportDelta"
        );
        assert_eq!(
            seq_report, srv_report,
            "tenant {tenant}: the front door changed the final report"
        );
    }
}

#[test]
fn multi_tenant_soak_outcomes_are_thread_count_invariant() {
    let spec = TestbedSpec {
        epgs: 10,
        contracts: 6,
        filters: 4,
        target_pairs: 14,
        switches: 3,
        tcam_capacity: 1024,
    };
    let base = MultiTenantSoak::new(WorkloadKind::Testbed(spec), TENANTS, 20, 5);

    let concurrent = MultiTenantSoak {
        threads: TENANTS,
        ..base
    }
    .run();
    let sequential = MultiTenantSoak { threads: 1, ..base }.run();

    assert_eq!(concurrent.runs.len(), TENANTS);
    for tenant in 0..TENANTS {
        assert_eq!(
            concurrent.runs[tenant].outcome, sequential.runs[tenant].outcome,
            "tenant {tenant}: thread count changed the soak outcome"
        );
    }
    // Every tenant's differential oracle agreed at every epoch, concurrently.
    assert!(concurrent.oracle_disagreements().is_empty());
    assert_eq!(concurrent.total_ingests(), TENANTS * 20);
}
