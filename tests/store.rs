//! The enforced durability contract of `scout-store`.
//!
//! Three properties are pinned here, against a real churning fabric:
//!
//! * **kill-and-recover bit-identity** — a durable session killed (via the
//!   store's SIGKILL-simulating abort points) at a *random* epoch recovers
//!   to a state bit-identical to an uninterrupted reference session at the
//!   recovered epoch, and — after re-feeding the lost batches — stays
//!   bit-identical through the end of the run;
//! * **tamper evidence** — flipping any single byte of any store file turns
//!   both offline verification and full recovery into a typed
//!   [`StoreError`]: no panic, no silent acceptance, anywhere;
//! * **compaction invariants** — compaction never deletes a segment the
//!   newest anchor still needs, keeps exactly the newest anchor, preserves
//!   hash-chain continuity across the anchor, and recovery after compaction
//!   is still bit-identical.
//!
//! The seeded crash-injection soak from `scout-sim` rides along as a
//! regression pin: its report (crash sites included) is deterministic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout::core::{ScoutEngine, ScoutReport};
use scout::fabric::{CorruptionKind, EventBatch, Fabric, FabricProbe};
use scout::sim::{CrashSoak, WorkloadKind};
use scout::store::test_dir::TestDir;
use scout::store::{verify_dir, CrashPlan, DurableEngine, StoreConfig, StoreError};
use scout::workload::{add_random_filter, random_policy_edit, TestbedSpec};

fn testbed_fabric(seed: u64) -> Fabric {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    let mut fabric = Fabric::new(spec.generate(seed));
    fabric.deploy();
    fabric
}

/// One epoch of soak-style churn (same mix as the enforced session replay).
fn disturb(fabric: &mut Fabric, rng: &mut StdRng) {
    let switch_ids = fabric.universe().switch_ids();
    let &switch = switch_ids.choose(rng).expect("workloads have switches");
    match rng.gen_range(0u32..8) {
        0 => {
            let port = rng.gen_range(0u16..7);
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
        }
        1 => {
            let kind = *[
                CorruptionKind::VrfBit,
                CorruptionKind::SrcEpgBit,
                CorruptionKind::ActionFlip,
            ]
            .choose(rng)
            .unwrap();
            fabric.corrupt_tcam(switch, rng.gen_range(0usize..8), kind);
        }
        2 => {
            fabric.evict_tcam(switch, rng.gen_range(1usize..3), rng.gen_bool(0.5));
        }
        3 => {
            fabric.disconnect_switch(switch);
        }
        4 => {
            fabric.crash_agent(switch);
        }
        5 => {
            fabric.repair_switch(switch);
        }
        6 => {
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
        _ => {
            let universe = fabric.universe().clone();
            if let Some(edit) = random_policy_edit(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
    }
}

/// Small store knobs so short runs still cross segment rolls, anchors and
/// compaction cycles.
fn small_config() -> StoreConfig {
    StoreConfig {
        snapshot_every: 4,
        segment_max_records: 3,
        ..StoreConfig::default()
    }
}

/// First epoch of the oldest journal segment still on disk.
fn oldest_segment_first_epoch(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir.join("journal"))
        .expect("journal dir")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name().into_string().ok()?;
            let digits = name.strip_prefix("seg-")?.strip_suffix(".scjl")?;
            digits.parse().ok()
        })
        .min()
        .expect("at least one segment")
}

/// Every file a store directory holds, sorted: `journal/*` then `snap/*`.
fn store_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    for sub in ["journal", "snap"] {
        let mut entries: Vec<_> = std::fs::read_dir(dir.join(sub))
            .expect("store subdirectory")
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files
}

/// The kill-and-recover contract, at a seeded "random" epoch: the store is
/// SIGKILL-simulated mid-commit via its operation-countdown abort points
/// (torn partial appends included), recovered, cross-checked against an
/// uninterrupted reference session, re-fed, and driven to the end.
#[test]
fn kill_and_recover_at_a_random_epoch_is_bit_identical() {
    const EPOCHS: u64 = 50;
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut fabric = testbed_fabric(11);
    let engine = ScoutEngine::new();
    let dir = TestDir::new("kill-recover");

    let mut reference = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);
    // The abort countdown starts at a random operation index comfortably
    // past open_durable's own writes, so the kill lands at a random epoch
    // somewhere in the middle of the run.
    let plan = CrashPlan {
        abort_after_ops: rng.gen_range(40u64..100),
        partial_seed: rng.gen_range(0u64..u64::MAX),
    };
    let mut durable = engine
        .open_durable(
            &fabric,
            dir.path(),
            StoreConfig {
                crash_plan: Some(plan),
                ..small_config()
            },
        )
        .expect("the countdown outlives open_durable");

    let mut batches: Vec<EventBatch> = Vec::new();
    let mut reports: Vec<ScoutReport> = vec![reference.full_report().clone()];
    let mut crashed_at = None;

    for epoch in 1..=EPOCHS {
        disturb(&mut fabric, &mut rng);
        let batch = EventBatch::new(epoch, probe.observe(&fabric));
        batches.push(batch.clone());
        reference.ingest(batch).expect("reference ingests");
        reports.push(reference.full_report().clone());

        loop {
            let next = durable.next_epoch();
            if next > epoch {
                break;
            }
            match durable.ingest(batches[next as usize - 1].clone()) {
                Ok(_) => {
                    assert_eq!(
                        durable.full_report(),
                        &reports[durable.epoch() as usize],
                        "epoch {}: durable session diverged",
                        durable.epoch()
                    );
                }
                Err(StoreError::InjectedCrash) => {
                    assert!(crashed_at.is_none(), "one crash is armed");
                    assert!(durable.is_poisoned());
                    crashed_at = Some(next);
                    drop(durable);

                    durable = engine
                        .recover(dir.path(), small_config())
                        .expect("a killed store recovers");
                    let recovered = durable.epoch();
                    assert!(recovered <= next, "recovery invented epochs");
                    assert_eq!(
                        durable.full_report(),
                        &reports[recovered as usize],
                        "recovered state at epoch {recovered} is not bit-identical \
                         to the uninterrupted reference"
                    );
                }
                Err(other) => panic!("unexpected store error: {other}"),
            }
        }
    }

    let kill_epoch = crashed_at.expect("the seeded countdown fires mid-run");
    assert!(
        (2..=EPOCHS).contains(&kill_epoch),
        "kill epoch {kill_epoch} must land inside the run"
    );
    assert_eq!(durable.epoch(), EPOCHS);
    assert_eq!(
        durable.full_report(),
        reference.full_report(),
        "final durable state diverged from the uninterrupted reference"
    );
    drop(durable);

    // One more recovery from cold: still bit-identical.
    let summary = verify_dir(dir.path()).expect("store verifies after the run");
    assert_eq!(summary.last_epoch, EPOCHS);
    let recovered = engine
        .recover(dir.path(), small_config())
        .expect("final recovery");
    assert_eq!(recovered.epoch(), EPOCHS);
    assert_eq!(recovered.full_report(), reference.full_report());
}

/// Any single flipped byte, in any byte of any store file, is a typed
/// [`StoreError`] from offline verification — and from full recovery —
/// never a panic and never a silent acceptance.
#[test]
fn every_single_byte_flip_anywhere_is_a_typed_store_error() {
    // A deliberately tiny fabric with light churn: the sweep below runs
    // `verify_dir` (which hashes every store byte) once per flipped byte, so
    // total cost is quadratic in store size — keep the store small, not the
    // coverage.
    let spec = TestbedSpec {
        epgs: 4,
        contracts: 3,
        filters: 2,
        target_pairs: 6,
        switches: 2,
        tcam_capacity: 128,
    };
    let mut fabric = Fabric::new(spec.generate(7));
    fabric.deploy();
    let engine = ScoutEngine::new();
    let dir = TestDir::new("bit-flips");

    let mut durable = engine
        .open_durable(&fabric, dir.path(), small_config())
        .expect("store opens");
    let mut probe = FabricProbe::new(&fabric);
    for epoch in 1..=8u64 {
        let ids = fabric.universe().switch_ids();
        let switch = ids[(epoch / 2) as usize % ids.len()];
        if epoch.is_multiple_of(2) {
            fabric.evict_tcam(switch, 1, false);
        } else {
            fabric.repair_switch(switch);
        }
        durable
            .ingest(EventBatch::new(epoch, probe.observe(&fabric)))
            .expect("epochs ingest");
    }
    let final_report = durable.full_report().clone();
    drop(durable);
    verify_dir(dir.path()).expect("pristine store verifies");

    let files = store_files(dir.path());
    assert!(files.len() >= 2, "store must hold segments and an anchor");
    let mut flips = 0usize;
    for path in &files {
        let clean = std::fs::read(path).expect("store file reads");
        assert!(!clean.is_empty());
        for i in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[i] ^= 0x01;
            std::fs::write(path, &damaged).expect("tampered file writes");

            let verdict = verify_dir(dir.path());
            assert!(
                verdict.is_err(),
                "flip at byte {i} of {} was silently accepted by verify_dir",
                path.display()
            );
            // Full recovery (engine restore + replay) must agree; it is the
            // costlier path, so sample it on a stride.
            if i % 64 == 0 {
                match engine.recover(dir.path(), small_config()) {
                    Err(_) => {}
                    Ok(_) => panic!(
                        "flip at byte {i} of {} was accepted by recover",
                        path.display()
                    ),
                }
            }
            flips += 1;
        }
        std::fs::write(path, &clean).expect("file restored");
    }
    println!(
        "checked {flips} single-byte flips across {} files",
        files.len()
    );

    // After undoing every flip, the store is whole again.
    let recovered = engine
        .recover(dir.path(), small_config())
        .expect("restored store recovers");
    assert_eq!(recovered.full_report(), &final_report);
}

/// Compaction keeps exactly the newest anchor, never deletes a segment the
/// anchor still needs, keeps the chain continuous across the anchor, and
/// recovery after compaction is bit-identical.
#[test]
fn compaction_preserves_recovery_and_retention_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut fabric = testbed_fabric(23);
    let engine = ScoutEngine::new();
    let dir = TestDir::new("compaction");

    let mut reference = engine.open_session(&fabric);
    let mut durable = engine
        .open_durable(&fabric, dir.path(), small_config())
        .expect("store opens");
    let mut probe = FabricProbe::new(&fabric);

    for epoch in 1..=30u64 {
        disturb(&mut fabric, &mut rng);
        let batch = EventBatch::new(epoch, probe.observe(&fabric));
        reference.ingest(batch.clone()).expect("reference ingests");
        durable.ingest(batch).expect("durable ingests");

        let summary = verify_dir(dir.path()).expect("store verifies mid-run");
        // Exactly the newest anchor survives.
        assert_eq!(summary.anchors, 1, "epoch {epoch}: anchor count");
        assert_eq!(summary.anchor_epoch, durable.anchor_epoch());
        // The journal still covers every epoch after the anchor…
        let replay = summary.last_epoch - summary.anchor_epoch;
        assert!(
            summary.records as u64 >= replay,
            "epoch {epoch}: compaction dropped a segment the anchor needs"
        );
        // …and at most one partially-covered segment's worth of pre-anchor
        // records survives: everything older is compacted away.
        assert!(
            summary.records as u64 - replay <= 3,
            "epoch {epoch}: compaction left fully-covered segments behind \
             ({} records for a {replay}-epoch tail)",
            summary.records
        );
        // Oldest-needed retention, by filename: the oldest surviving segment
        // starts at or before the first epoch recovery must replay.
        let oldest = oldest_segment_first_epoch(dir.path());
        assert!(
            oldest <= summary.anchor_epoch + 1,
            "epoch {epoch}: oldest segment {oldest} starts after the replay point"
        );
        assert_eq!(summary.last_epoch, epoch);
        // Chain continuity across the anchor: the summary's running digest
        // is the live session's.
        assert_eq!(summary.chain, durable.chain(), "epoch {epoch}: chain");
    }

    let stats = durable.store_stats();
    assert!(stats.anchors_written >= 6, "anchors: {stats:?}");
    assert!(
        stats.segments_removed > 0,
        "compaction never ran: {stats:?}"
    );
    // The active segment is never removed, and the seed segment is not
    // counted as rolled, so removals can at most match the roll count.
    assert!(stats.segments_rolled >= stats.segments_removed);
    drop(durable);

    // Post-compaction recovery is bit-identical to the uninterrupted
    // reference — the anchor plus the retained tail reconstruct everything.
    let recovered = engine
        .recover(dir.path(), small_config())
        .expect("compacted store recovers");
    assert_eq!(recovered.epoch(), 30);
    assert_eq!(recovered.full_report(), reference.full_report());
}

/// A torn tail (the strict prefix a crashed append left behind) is
/// truncated and recovery continues; a complete-but-damaged suffix is a
/// typed error instead.
#[test]
fn torn_tails_truncate_but_damaged_suffixes_are_errors() {
    let mut rng = StdRng::seed_from_u64(0x70AA);
    let mut fabric = testbed_fabric(3);
    let engine = ScoutEngine::new();
    let dir = TestDir::new("torn-tail");

    let mut durable = engine
        .open_durable(&fabric, dir.path(), small_config())
        .expect("store opens");
    let mut probe = FabricProbe::new(&fabric);
    for epoch in 1..=5 {
        disturb(&mut fabric, &mut rng);
        durable
            .ingest(EventBatch::new(epoch, probe.observe(&fabric)))
            .expect("epochs ingest");
    }
    let report = durable.full_report().clone();
    drop(durable);

    let last_segment = store_files(dir.path())
        .into_iter()
        .rfind(|p| p.extension().and_then(|e| e.to_str()) == Some("scjl"))
        .expect("an active segment exists");
    let clean = std::fs::read(&last_segment).expect("segment reads");

    // Fewer than a frame header's worth of garbage: crash evidence.
    let mut torn = clean.clone();
    torn.extend_from_slice(&[0xEE; 20]);
    std::fs::write(&last_segment, &torn).expect("torn tail written");
    let recovered = engine
        .recover(dir.path(), small_config())
        .expect("torn tail truncates");
    assert_eq!(recovered.epoch(), 5);
    assert_eq!(recovered.full_report(), &report);
    assert_eq!(recovered.store_stats().torn_bytes_truncated, 20);
    drop(recovered);

    // A full frame header of garbage: complete but damaged — typed error.
    let mut damaged = clean.clone();
    damaged.extend_from_slice(&[0xEE; 60]);
    std::fs::write(&last_segment, &damaged).expect("damaged tail written");
    assert!(verify_dir(dir.path()).is_err());
    assert!(engine.recover(dir.path(), small_config()).is_err());

    std::fs::write(&last_segment, &clean).expect("segment restored");
    verify_dir(dir.path()).expect("restored store verifies");
}

/// A crafted header-only segment claiming `first_epoch = 0` (valid CRC,
/// zero records) must surface as a typed error, never a panic: epoch 0 is
/// the genesis anchor, so no legitimate segment ever starts there — and an
/// unguarded `end_epoch` underflows on exactly this file.
#[test]
fn forged_zero_epoch_segment_is_a_typed_error() {
    use scout::store::{sha256, JournalError, SegmentHeader};

    let mut rng = StdRng::seed_from_u64(0x2E80);
    let mut fabric = testbed_fabric(4);
    let engine = ScoutEngine::new();
    let dir = TestDir::new("zero-epoch");

    let mut durable = engine
        .open_durable(&fabric, dir.path(), small_config())
        .expect("store opens");
    let mut probe = FabricProbe::new(&fabric);
    for epoch in 1..=5 {
        disturb(&mut fabric, &mut rng);
        durable
            .ingest(EventBatch::new(epoch, probe.observe(&fabric)))
            .expect("epochs ingest");
    }
    drop(durable);

    let forged = SegmentHeader {
        first_epoch: 0,
        prev_chain: sha256(b"forged"),
    }
    .to_bytes();
    std::fs::write(
        dir.path()
            .join("journal")
            .join("seg-00000000000000000000.scjl"),
        forged,
    )
    .expect("forged segment written");

    for verdict in [
        verify_dir(dir.path()).map(|_| ()),
        engine.recover(dir.path(), small_config()).map(|_| ()),
    ] {
        match verdict {
            Err(StoreError::Journal {
                source: JournalError::FirstEpochZero,
                ..
            }) => {}
            other => panic!("forged segment must be a typed error, got {other:?}"),
        }
    }
}

/// The seeded crash-injection soak: repeated kills at random abort points
/// across segment rolls, anchors and compactions, every recovery
/// cross-checked bit-for-bit inside the soak — and the whole report
/// (crash sites included) is deterministic per seed.
#[test]
fn crash_soak_regression() {
    let soak = CrashSoak::new(
        WorkloadKind::Testbed(TestbedSpec {
            epgs: 10,
            contracts: 6,
            filters: 3,
            target_pairs: 14,
            switches: 3,
            tcam_capacity: 512,
        }),
        48,
        3,
        0xD15C,
    );
    let engine = ScoutEngine::new();
    let report = soak.run(&engine);
    assert_eq!(report.crashes_injected, 3);
    assert_eq!(report.final_epoch, 48);
    assert!(report.anchors_written > 0);
    assert_eq!(report, soak.run(&engine), "soak must be deterministic");
}
