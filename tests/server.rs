//! The enforced contract of the serving layer (`scout-server`): a fleet of
//! tenants pushed through the wire-encoded front door — admission control,
//! queues, sheds, node kills and all — produces analysis results
//! **bit-identical** to a direct single-threaded engine replay.
//!
//! Four headline properties:
//!
//! 1. a fleet of [`TENANTS`] tenants served over the byte-level API matches
//!    per-tenant direct replay, at every server thread count;
//! 2. killing the cluster leader *and* a session-owning node mid-soak, at a
//!    seeded random epoch, leaves every post-failover report bit-identical
//!    to an uninterrupted run;
//! 3. saturating one tenant's quota sheds the offender with typed errors
//!    while bystander tenants are admitted untouched, and no accepted batch
//!    is ever lost;
//! 4. neither the server thread count nor the cluster node count changes a
//!    single analysis result.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scout::core::{ScoutEngine, ScoutReport};
use scout::fabric::EventBatch;
use scout::server::{
    AdmissionConfig, Cluster, ClusterConfig, OverloadPolicy, ScoutServer, ServerConfig,
    ServerError, ServerRequest, ServerResponse, TenantId,
};
use scout::sim::{FleetSoak, WorkloadKind};
use scout::store::test_dir::TestDir;
use scout::workload::TestbedSpec;

/// Fleet width: the full million-user-style fleet in release, a narrower one
/// under debug assertions so plain `cargo test` stays fast.
const TENANTS: usize = if cfg!(debug_assertions) { 60 } else { 1000 };
const EPOCHS: usize = 8;
const SEED: u64 = 41;

fn fleet(threads: usize) -> FleetSoak {
    let spec = TestbedSpec {
        epgs: 10,
        contracts: 6,
        filters: 4,
        target_pairs: 14,
        switches: 3,
        tcam_capacity: 1024,
    };
    FleetSoak {
        threads,
        ..FleetSoak::new(WorkloadKind::Testbed(spec), TENANTS, EPOCHS, SEED)
    }
}

/// Headline 1 + 4a: every tenant's front-door results are bit-identical to a
/// direct single-threaded engine replay, and the server thread count is
/// invisible in the results.
#[test]
fn fleet_through_the_front_door_matches_direct_replay_at_every_thread_count() {
    let soak = fleet(1);
    let sequential = soak.run();
    assert_eq!(sequential.total_ingests(), TENANTS * EPOCHS);

    for tenant in 0..TENANTS {
        let (deltas, report) = soak.direct_replay(tenant);
        assert_eq!(
            sequential.outcomes[tenant].analysis(),
            (&deltas[..], Some(&report)),
            "tenant {tenant}: the front door changed an analysis result"
        );
    }

    for threads in [4, 8] {
        let concurrent = fleet(threads).run();
        for tenant in 0..TENANTS {
            assert_eq!(
                concurrent.outcomes[tenant].analysis(),
                sequential.outcomes[tenant].analysis(),
                "tenant {tenant}: {threads} server threads changed an analysis result"
            );
        }
    }
}

/// Headline 3: one tenant blowing through its quota is queued, then shed
/// with typed, actionable errors — and the bystanders never feel it.
#[test]
fn quota_saturation_sheds_the_offender_and_spares_the_bystanders() {
    let admission = AdmissionConfig {
        quota_tokens: 3,
        refill_per_tick: 1,
        queue_capacity: 2,
        policy: OverloadPolicy::Queue,
    };
    let mut server = ScoutServer::new(ScoutEngine::new(), ServerConfig::in_memory(admission));
    let soak = fleet(1);

    const OFFENDER: TenantId = 0;
    const BYSTANDERS: [TenantId; 3] = [1, 2, 3];
    for tenant in [OFFENDER, 1, 2, 3] {
        match server.handle(ServerRequest::OpenSession {
            tenant,
            universe: soak.tenant_universe(tenant as usize),
        }) {
            ServerResponse::Opened { .. } => {}
            other => panic!("open failed: {other:?}"),
        }
    }

    // The offender floods: 3 admitted (its burst), 2 queued (its lane), the
    // sixth shed with a typed error carrying a usable retry hint. The flood
    // stops at the first shed — a shed batch was *not* accepted, so pushing
    // the epoch after it would be a sequence error, not an overload.
    let offender_batches = soak.tenant_batches(OFFENDER as usize);
    let mut sheds = 0u64;
    for (i, batch) in offender_batches[..6].iter().enumerate() {
        let verdict = server.handle(ServerRequest::Ingest {
            tenant: OFFENDER,
            batch: batch.clone(),
        });
        match (i, verdict) {
            (0..=2, ServerResponse::Ingested { .. }) => {}
            (3..=4, ServerResponse::Queued { tenant, depth }) => {
                assert_eq!(tenant, OFFENDER);
                assert_eq!(depth as usize, i - 2, "queue depth counts parked batches");
            }
            (5, ServerResponse::Error(ServerError::Shed { tenant, retry_hint })) => {
                assert_eq!(tenant, OFFENDER);
                assert!(retry_hint >= 1, "a shed carries an actionable retry hint");
                sheds += 1;
            }
            (i, other) => panic!("batch {i}: unexpected verdict {other:?}"),
        }
    }
    // Shed is stateless: resending the same batch changes nothing.
    for _ in 0..2 {
        match server.handle(ServerRequest::Ingest {
            tenant: OFFENDER,
            batch: offender_batches[5].clone(),
        }) {
            ServerResponse::Error(ServerError::Shed { .. }) => sheds += 1,
            other => panic!("a repeated shed changed state: {other:?}"),
        }
    }
    assert_eq!(
        server.queue_depth(OFFENDER),
        2,
        "sheds never touch the queue"
    );

    // Bystanders, mid-saturation: admitted instantly, never queued, never
    // shed — the offender consumed only its own lane.
    for tenant in BYSTANDERS {
        for batch in soak.tenant_batches(tenant as usize).into_iter().take(3) {
            match server.handle(ServerRequest::Ingest { tenant, batch }) {
                ServerResponse::Ingested { .. } => {}
                other => panic!("bystander {tenant} was not spared: {other:?}"),
            }
            assert_eq!(server.queue_depth(tenant), 0);
        }
    }

    // The offender retries its shed batches under tick-driven refill; every
    // accepted batch lands exactly once, in order — nothing lost.
    for batch in &offender_batches[5..] {
        let mut attempts = 0;
        loop {
            match server.handle(ServerRequest::Ingest {
                tenant: OFFENDER,
                batch: batch.clone(),
            }) {
                ServerResponse::Ingested { .. } | ServerResponse::Queued { .. } => break,
                ServerResponse::Error(ServerError::Shed { .. }) => {
                    sheds += 1;
                    attempts += 1;
                    assert!(attempts < 100, "retry loop cannot make progress");
                    server.tick();
                }
                other => panic!("unexpected retry response: {other:?}"),
            }
        }
    }
    while server.queue_depth(OFFENDER) > 0 {
        server.tick();
    }

    let (_, offender_oracle) = soak.direct_replay(OFFENDER as usize);
    assert_eq!(
        server.full_report(OFFENDER),
        Some(&offender_oracle),
        "shed-and-retry lost or reordered an accepted batch"
    );
    let stats = server.engine().gauges().snapshot();
    assert_eq!(stats.shed, sheds, "every shed was a typed, counted refusal");
    assert_eq!(stats.queued, 0, "every parked batch was drained");
}

/// Drives `tenants` full timelines through `cluster`, killing `kill` nodes
/// after the batch at `kill_epoch` has been offered for every tenant.
/// Returns each tenant's final report, obtained via `Query` after a full
/// drain. Sheds (quota or dead-owner window) are retried around `tick`.
fn drive_cluster(
    cluster: &mut Cluster,
    soak: &FleetSoak,
    tenants: usize,
    kill: &[u64],
    kill_epoch: u64,
) -> Vec<ScoutReport> {
    let batches: Vec<Vec<EventBatch>> = (0..tenants).map(|t| soak.tenant_batches(t)).collect();
    for tenant in 0..tenants as TenantId {
        match cluster.handle(ServerRequest::OpenSession {
            tenant,
            universe: soak.tenant_universe(tenant as usize),
        }) {
            ServerResponse::Opened { .. } => {}
            other => panic!("cluster open failed: {other:?}"),
        }
    }

    for epoch in 1..=EPOCHS as u64 {
        for (index, timeline) in batches.iter().enumerate() {
            let tenant = index as TenantId;
            let batch = timeline[epoch as usize - 1].clone();
            let mut attempts = 0;
            loop {
                match cluster.handle(ServerRequest::Ingest {
                    tenant,
                    batch: batch.clone(),
                }) {
                    ServerResponse::Ingested { .. } | ServerResponse::Queued { .. } => break,
                    ServerResponse::Error(ServerError::Shed { .. }) => {
                        // Dead-owner window or quota: tick (heartbeats,
                        // failover, drain) and resend.
                        attempts += 1;
                        assert!(attempts < 100, "cluster cannot make progress");
                        cluster.tick();
                    }
                    other => panic!("tenant {tenant} epoch {epoch}: {other:?}"),
                }
            }
        }
        if epoch == kill_epoch {
            for &node in kill {
                cluster.kill_node(node);
            }
        }
    }

    // Drain every queue, then read the final reports.
    loop {
        let report = cluster.tick();
        for response in &report.drained {
            assert!(
                matches!(response, ServerResponse::Ingested { .. }),
                "drain surfaced an error: {response:?}"
            );
        }
        if report.drained.is_empty() && report.failed_over.is_empty() {
            break;
        }
    }
    (0..tenants as TenantId)
        .map(|tenant| {
            let mut attempts = 0;
            loop {
                match cluster.handle(ServerRequest::Query { tenant }) {
                    ServerResponse::Report { report, .. } => return report,
                    ServerResponse::Error(ServerError::Shed { .. }) => {
                        attempts += 1;
                        assert!(attempts < 100, "query cannot make progress");
                        cluster.tick();
                    }
                    other => panic!("query failed: {other:?}"),
                }
            }
        })
        .collect()
}

/// Headline 2: kill the leader *and* a session-owning node mid-soak at a
/// seeded random epoch; after leader-driven failover (journal replay on the
/// survivor), every final report is bit-identical to an uninterrupted run —
/// and to the direct engine replay.
#[test]
fn leader_and_owner_kill_mid_soak_recovers_bit_identically() {
    const CLUSTER_TENANTS: usize = 6;
    let soak = fleet(1);
    let config = ClusterConfig {
        nodes: 3,
        heartbeat_timeout: 1,
        ..ClusterConfig::default()
    };

    // Baseline: the same fleet, uninterrupted.
    let baseline_dir = TestDir::new("server-baseline");
    let mut baseline_cluster = Cluster::new(baseline_dir.path(), config);
    let baseline = drive_cluster(&mut baseline_cluster, &soak, CLUSTER_TENANTS, &[], u64::MAX);

    // The kill epoch is drawn from a seeded RNG: mid-soak, never the edges.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xDEAD);
    let kill_epoch = rng.gen_range(2u64..EPOCHS as u64 - 1);

    let dir = TestDir::new("server-failover");
    let mut cluster = Cluster::new(dir.path(), config);
    // Victims: the leader, plus an owner of sessions that is not the leader.
    let leader = cluster.leader().expect("fresh cluster has a leader");
    let owner_victim = (0..config.nodes)
        .find(|&n| n != leader)
        .expect("cluster has more than one node");
    let survivors_report = drive_cluster(
        &mut cluster,
        &soak,
        CLUSTER_TENANTS,
        &[leader, owner_victim],
        kill_epoch,
    );

    assert_ne!(cluster.leader(), Some(leader), "a new leader was elected");
    for tenant in 0..CLUSTER_TENANTS {
        assert_eq!(
            survivors_report[tenant], baseline[tenant],
            "tenant {tenant}: failover at epoch {kill_epoch} changed the final report"
        );
        let (_, oracle) = soak.direct_replay(tenant);
        assert_eq!(
            survivors_report[tenant], oracle,
            "tenant {tenant}: cluster result diverged from the direct engine replay"
        );
    }
}

/// Headline 4b: the cluster node count is invisible in the results.
#[test]
fn node_count_never_changes_results() {
    const CLUSTER_TENANTS: usize = 5;
    let soak = fleet(1);
    let mut per_node_count = Vec::new();
    for nodes in [1u64, 2, 5] {
        let dir = TestDir::new(&format!("server-nodes-{nodes}"));
        let config = ClusterConfig {
            nodes,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(dir.path(), config);
        per_node_count.push(drive_cluster(
            &mut cluster,
            &soak,
            CLUSTER_TENANTS,
            &[],
            u64::MAX,
        ));
    }
    for reports in &per_node_count[1..] {
        assert_eq!(
            reports, &per_node_count[0],
            "node count changed an analysis result"
        );
    }
    for (tenant, report) in per_node_count[0].iter().enumerate() {
        let (_, oracle) = soak.direct_replay(tenant);
        assert_eq!(report, &oracle);
    }
}
