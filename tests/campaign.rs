//! Property tests for the campaign engine: localization invariants must hold
//! on every outcome of randomized multi-fault campaigns, campaigns must be
//! deterministic per seed (regardless of thread count and analysis mode), and
//! healthy fabrics must always be reported consistent.

use scout::core::ScoutEngine;
use scout::fabric::Fabric;
use scout::sim::{AnalysisMode, Campaign, Concurrency, ScenarioMix, WorkloadKind};
use scout::workload::{ClusterSpec, ScaleSpec, TestbedSpec};

fn small_testbed() -> WorkloadKind {
    WorkloadKind::Testbed(TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    })
}

fn tiny_cluster() -> WorkloadKind {
    WorkloadKind::Cluster(ClusterSpec {
        vrfs: 2,
        epgs: 24,
        contracts: 16,
        filters: 8,
        switches: 4,
        max_endpoints_per_epg: 2,
        hub_contract_fraction: 0.2,
        max_hub_fanout: 12,
        tcam_capacity: 4096,
    })
}

/// Localization invariants, checked on every scenario of mixed campaigns over
/// two workloads and several seeds:
///
/// * the hypothesis is a subset of the pre-localization suspect set;
/// * `explained_by_cover + explained_by_changelog + unexplained` equals the
///   number of observations;
/// * a consistent scenario has no observations, an empty hypothesis and γ = 0;
/// * an inconsistent scenario with observations has γ ∈ (0, 1].
#[test]
fn campaign_outcomes_satisfy_localization_invariants() {
    for (workload, seed) in [
        (small_testbed(), 3u64),
        (small_testbed(), 17),
        (tiny_cluster(), 5),
    ] {
        let run = Campaign {
            max_faults: 4,
            ..Campaign::new(workload, 40, seed)
        }
        .run();
        assert_eq!(run.outcomes.len(), 40);
        for outcome in &run.outcomes {
            let tag = format!("seed {seed} scenario {}", outcome.index);
            assert!(
                outcome.hypothesis.is_subset(&outcome.suspects),
                "{tag}: hypothesis must be within the suspect set"
            );
            assert_eq!(
                outcome.explained_by_cover + outcome.explained_by_changelog + outcome.unexplained,
                outcome.observations,
                "{tag}: explanation accounting must cover the observations"
            );
            if outcome.consistent {
                assert_eq!(outcome.observations, 0, "{tag}");
                assert_eq!(outcome.missing_rules, 0, "{tag}");
                assert!(outcome.hypothesis.is_empty(), "{tag}");
                assert_eq!(outcome.gamma, 0.0, "{tag}");
            } else if outcome.observations > 0 {
                assert!(
                    outcome.gamma > 0.0 && outcome.gamma <= 1.0,
                    "{tag}: gamma {} out of (0, 1]",
                    outcome.gamma
                );
                assert!(!outcome.suspects.is_empty(), "{tag}");
            }
            // Fault bookkeeping: an inert disturbance claims no ground truth.
            if outcome.fault_count == 0 {
                assert!(outcome.truth.is_empty(), "{tag}");
            }
        }
    }
}

/// Same seed, same aggregate report — across thread counts and analysis
/// modes (the two axes that must never affect results, only wall-clock).
#[test]
fn campaigns_are_deterministic_per_seed() {
    let base = Campaign {
        max_faults: 3,
        concurrency: Concurrency::Sequential,
        ..Campaign::new(small_testbed(), 24, 99)
    };
    let reference = base.run();
    let threaded = Campaign {
        concurrency: Concurrency::Threads(4),
        ..base
    }
    .run();
    let scratch = Campaign {
        analysis: AnalysisMode::FromScratch,
        concurrency: Concurrency::Threads(2),
        ..base
    }
    .run();
    assert_eq!(reference.outcomes, threaded.outcomes);
    assert_eq!(reference.outcomes, scratch.outcomes);
    assert_eq!(reference.report(), threaded.report());
    assert_eq!(reference.report(), scratch.report());
}

/// A campaign restricted to object faults drives the accuracy population the
/// golden regression test gates on; sanity-check its shape here.
#[test]
fn object_fault_campaign_produces_scored_population() {
    let run = Campaign {
        mix: ScenarioMix::object_faults_only(),
        max_faults: 2,
        ..Campaign::new(small_testbed(), 30, 7)
    }
    .run();
    let report = run.report();
    let faulty: usize = report.per_kind.values().map(|s| s.faulty).sum();
    assert!(faulty >= 25, "most scenarios must inject successfully");
    assert!(report.object_recall.count == faulty);
    assert!(report.object_recall.mean > 0.5);
    assert!(!report.gamma.is_empty());
}

/// Healthy fabrics are always consistent: deploying any workload without a
/// disturbance must produce an empty report through the full pipeline.
#[test]
fn healthy_fabrics_are_always_consistent() {
    let workloads = [
        small_testbed(),
        tiny_cluster(),
        WorkloadKind::Scale(ScaleSpec::with_switches(6)),
    ];
    for (i, workload) in workloads.into_iter().enumerate() {
        for seed in [1u64, 23] {
            let mut fabric = Fabric::new(workload.generate(seed));
            fabric.deploy();
            let engine = ScoutEngine::new();
            let report = engine.analyze(&fabric);
            assert!(report.is_consistent(), "workload {i} seed {seed}");
            assert!(report.hypothesis.is_empty(), "workload {i} seed {seed}");
            assert_eq!(report.gamma(), 0.0, "workload {i} seed {seed}");
            // The baseline snapshot agrees with the report.
            assert!(engine.open_session(&fabric).is_consistent());
        }
    }
}
