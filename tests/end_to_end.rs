//! Cross-crate integration tests: the full SCOUT pipeline (policy → deploy →
//! break → detect → localize → diagnose) on the 3-tier example policy under
//! every failure mode the paper lists in §II-B.

use scout::core::{Evidence, ScoutEngine};
use scout::fabric::{CorruptionKind, Fabric, FaultKind};
use scout::policy::{sample, EpgPair, ObjectId};

fn deployed_three_tier() -> Fabric {
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    fabric
}

#[test]
fn healthy_network_is_reported_consistent() {
    let fabric = deployed_three_tier();
    let report = ScoutEngine::new().analyze(&fabric);
    assert!(report.is_consistent());
    assert_eq!(report.missing_rule_count(), 0);
    assert!(report.hypothesis.is_empty());
    assert!(report.suspect_objects.is_empty());
}

#[test]
fn missing_filter_rules_are_localized_to_the_filter() {
    let mut fabric = deployed_three_tier();
    for switch in [sample::S2, sample::S3] {
        fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
    }
    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    assert_eq!(report.missing_rule_count(), 4);
    assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
    // The healthy port-80 filter must not be blamed.
    assert!(!report.hypothesis.contains(ObjectId::Filter(sample::F_HTTP)));
    // Risk-model bookkeeping is coherent.
    assert_eq!(report.observations.len(), 2);
    assert!(report.gamma() < 1.0);
    // No fault log exists for the silent removal, so causes are unknown.
    assert_eq!(
        report.diagnosis.unknown_objects().len(),
        report.hypothesis.len()
    );
}

#[test]
fn tcam_corruption_is_detected_and_localized() {
    let mut fabric = deployed_three_tier();
    fabric
        .corrupt_tcam(sample::S1, 0, CorruptionKind::SrcEpgBit)
        .expect("S1 has rules to corrupt");
    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    assert_eq!(report.check.inconsistent_switches(), vec![sample::S1]);
    // Corruption on a single switch is most economically explained by that
    // switch in the controller risk model.
    assert!(report.hypothesis.contains(ObjectId::Switch(sample::S1)));
    // Silent corruption has no fault-log entry.
    assert!(report.diagnosis.causes_by_kind().is_empty());
}

#[test]
fn rule_eviction_behind_the_controllers_back_is_detected() {
    let mut fabric = deployed_three_tier();
    let evicted = fabric.evict_tcam(sample::S2, 3, true);
    assert_eq!(evicted.len(), 3);
    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    assert!(report.missing_rule_count() >= 3);
    assert!(!report.hypothesis.is_empty());
    // The eviction was logged, so the correlation engine can tie it back.
    assert!(report
        .diagnosis
        .causes_by_kind()
        .contains_key(&FaultKind::RuleEviction));
}

#[test]
fn agent_crash_mid_update_yields_partial_state_and_is_diagnosed() {
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.crash_agent_after(sample::S2, 3);
    fabric.deploy();
    assert_eq!(fabric.tcam_rules(sample::S2).len(), 3);

    let report = ScoutEngine::new().analyze(&fabric);
    assert!(!report.is_consistent());
    assert!(report
        .diagnosis
        .causes_by_kind()
        .contains_key(&FaultKind::AgentCrash));
}

#[test]
fn repairing_the_fabric_clears_the_report() {
    let mut fabric = deployed_three_tier();
    fabric.disconnect_switch(sample::S3);
    fabric.remove_tcam_rules_where(sample::S3, |_| true);
    let broken = ScoutEngine::new().analyze(&fabric);
    assert!(!broken.is_consistent());

    // Operator repairs: reconnect and resync.
    fabric.reconnect_switch(sample::S3);
    fabric.resync();
    let fixed = ScoutEngine::new().analyze(&fabric);
    assert!(fixed.is_consistent());
    assert!(fixed.hypothesis.is_empty());
}

#[test]
fn switch_level_analysis_matches_figure_4a_reasoning() {
    let mut fabric = deployed_three_tier();
    // Remove the Web-App rules from S2 only (the Figure 4(a) scenario).
    fabric.remove_tcam_rules_where(sample::S2, |r| {
        r.pair() == EpgPair::new(sample::WEB, sample::APP)
    });
    let engine = ScoutEngine::new();
    let (check, model, hypothesis) = engine.analyze_switch(
        fabric.universe(),
        sample::S2,
        fabric.logical_rules(),
        &fabric.tcam_rules(sample::S2),
        fabric.change_log(),
    );
    assert!(!check.equivalent);
    assert_eq!(model.failure_signature().len(), 1);
    // Occam's razor: the objects used solely by the Web-App pair explain the
    // observation; the shared VRF and EPG:App do not.
    assert!(hypothesis.contains(ObjectId::Epg(sample::WEB)));
    assert!(hypothesis.contains(ObjectId::Contract(sample::C_WEB_APP)));
    assert!(!hypothesis.contains(ObjectId::Vrf(sample::VRF)));
    assert!(!hypothesis.contains(ObjectId::Epg(sample::APP)));
    assert!(matches!(
        hypothesis.evidence(ObjectId::Epg(sample::WEB)),
        Some(Evidence::FullCover)
    ));
}

#[test]
fn facade_prelude_exposes_the_common_types() {
    use scout::prelude::*;
    let universe: PolicyUniverse = sample::three_tier();
    let mut fabric = Fabric::new(universe);
    fabric.deploy();
    let report: ScoutReport = ScoutEngine::new().analyze(&fabric);
    assert!(report.is_consistent());
}
