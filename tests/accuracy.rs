//! Accuracy-oriented integration tests: the model-level fault synthesis used by
//! the large-scale experiments is validated against the full fabric pipeline,
//! and the headline comparison of the paper (SCOUT recall beats SCORE's on
//! partial faults, without losing precision) is asserted on a small cluster.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use scout::core::{
    augment_controller_model, controller_risk_model, score_localize, scout_localize, ScoutConfig,
    ScoutEngine,
};
use scout::equiv::EquivalenceChecker;
use scout::fabric::Fabric;
use scout::faults::{
    synthesize_fault_on, synthesize_object_faults, synthetic_change_log, FaultInjector,
    ObjectFaultKind, SyntheticFaults,
};
use scout::metrics::Accuracy;
use scout::policy::{sample, ObjectId, PolicyUniverse};
use scout::sim::{Campaign, WorkloadKind};
use scout::workload::{ClusterSpec, TestbedSpec};

/// The model-level synthesis of a *full* object fault must mark exactly the
/// same `(switch, pair)` elements as failed as the real pipeline does when the
/// same object's rules are removed from the deployed TCAMs.
#[test]
fn synthetic_full_fault_matches_fabric_pipeline() {
    let universe = sample::three_tier();
    let object = ObjectId::Filter(sample::F_700);

    // Ground truth through the fabric + BDD checker.
    let mut fabric = Fabric::new(universe.clone());
    fabric.deploy();
    let mut injector = FaultInjector::new(StdRng::seed_from_u64(1));
    injector
        .inject_fault_on(&mut fabric, object, ObjectFaultKind::Full)
        .unwrap();
    let checker = EquivalenceChecker::new();
    let check = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
    let mut fabric_model = controller_risk_model(&universe);
    augment_controller_model(&mut fabric_model, check.missing_rules());

    // Model-level synthesis of the same fault.
    let mut rng = StdRng::seed_from_u64(1);
    let violations =
        synthesize_fault_on(&universe, object, ObjectFaultKind::Full, &mut rng).unwrap();
    let synthetic = SyntheticFaults {
        objects: BTreeSet::from([object]),
        violations,
    };
    let mut synthetic_model = controller_risk_model(&universe);
    synthetic.apply_to_controller_model(&mut synthetic_model);

    assert_eq!(
        fabric_model.failure_signature(),
        synthetic_model.failure_signature()
    );
    for element in fabric_model.failure_signature() {
        assert_eq!(
            fabric_model.failed_risks_of(&element),
            synthetic_model.failed_risks_of(&element),
            "failed risks differ for {element}"
        );
    }
}

fn model_level_accuracy(
    universe: &PolicyUniverse,
    faults: usize,
    runs: usize,
) -> (Accuracy, Accuracy) {
    let base = controller_risk_model(universe);
    let mut scout_precision = 0.0;
    let mut scout_recall = 0.0;
    let mut score_precision = 0.0;
    let mut score_recall = 0.0;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(1000 + run as u64);
        let injected = synthesize_object_faults(universe, faults, &mut rng);
        let change_log = synthetic_change_log(universe, &injected);
        let mut model = base.clone();
        injected.apply_to_controller_model(&mut model);

        let truth = injected.objects.clone();
        let scout = scout_localize(&model, &change_log, ScoutConfig::default());
        let score = score_localize(&model, 1.0);
        let scout_acc = Accuracy::of(&truth, &scout.objects());
        let score_acc = Accuracy::of(&truth, &score.objects());
        scout_precision += scout_acc.precision;
        scout_recall += scout_acc.recall;
        score_precision += score_acc.precision;
        score_recall += score_acc.recall;
    }
    let n = runs as f64;
    (
        Accuracy {
            precision: scout_precision / n,
            recall: scout_recall / n,
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
        },
        Accuracy {
            precision: score_precision / n,
            recall: score_recall / n,
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
        },
    )
}

/// The paper's headline result (Figures 8 and 9): SCOUT's recall is clearly
/// better than SCORE's with threshold 1, without giving up much precision.
#[test]
fn scout_beats_score_on_recall_without_losing_precision() {
    let universe = ClusterSpec::small().generate(11);
    let (scout, score) = model_level_accuracy(&universe, 5, 8);
    assert!(
        scout.recall >= score.recall + 0.1,
        "SCOUT recall {:.3} should clearly exceed SCORE recall {:.3}",
        scout.recall,
        score.recall
    );
    assert!(
        scout.recall >= 0.75,
        "SCOUT recall {:.3} should be high",
        scout.recall
    );
    assert!(
        scout.precision >= score.precision - 0.15,
        "SCOUT precision {:.3} must stay comparable to SCORE's {:.3}",
        scout.precision,
        score.precision
    );
}

/// A single fault must be found with perfect recall by the end-to-end system
/// on the testbed policy (the paper reports 100% recall below four faults).
#[test]
fn single_faults_are_always_found_on_the_testbed() {
    let universe = TestbedSpec::paper().generate(3);
    let mut base_fabric = Fabric::new(universe);
    base_fabric.deploy();
    let engine = ScoutEngine::new();

    for seed in 0..5u64 {
        let mut fabric = base_fabric.clone();
        let mut injector = FaultInjector::new(StdRng::seed_from_u64(seed));
        let truth = injector.inject_object_faults(&mut fabric, 1).objects();
        let report = engine.analyze(&fabric);
        let acc = Accuracy::of(&truth, &report.hypothesis.objects());
        assert_eq!(
            acc.recall, 1.0,
            "seed {seed}: the single injected fault must be recalled"
        );
        // γ stays small: the admin examines a handful of objects at most.
        assert!(report.hypothesis.len() <= report.suspect_objects.len());
    }
}

/// Injecting zero faults leaves the system consistent and the hypothesis
/// empty (no false alarms).
#[test]
fn no_faults_no_alarms() {
    let universe = TestbedSpec::paper().generate(9);
    let mut fabric = Fabric::new(universe);
    fabric.deploy();
    let report = ScoutEngine::new().analyze(&fabric);
    assert!(report.is_consistent());
    assert!(report.hypothesis.is_empty());
}

/// Golden accuracy regression: a fixed-seed 200-scenario campaign through the
/// *full* pipeline (deploy → disturb → BDD check → localize → correlate) must
/// stay above the committed thresholds, and SCOUT's recall must clearly beat
/// SCORE-1.0's on partial faults — the paper's Figures 7/8 claim.
///
/// The aggregate is deterministic for the fixed seed, so any regression in
/// the checker, the risk models, the localization stages or the campaign
/// engine shifts these numbers and fails the build. Thresholds carry margin
/// below the currently observed values (P 0.856, R 0.934, partial R 0.932 vs
/// SCORE 0.375, mean γ 0.194 at seed 42).
#[test]
fn golden_campaign_accuracy_thresholds() {
    let workload = WorkloadKind::Testbed(TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    });
    let campaign = Campaign::new(workload, 200, 42);
    let run = campaign.run();
    let report = run.report();
    assert_eq!(report.scenarios, 200);

    // Determinism of the aggregate itself.
    assert_eq!(campaign.run().report(), report);

    let precision = report.object_precision.mean;
    let recall = report.object_recall.mean;
    assert!(
        precision >= 0.78,
        "SCOUT object-fault precision regressed: {precision:.3} < 0.78"
    );
    assert!(
        recall >= 0.88,
        "SCOUT object-fault recall regressed: {recall:.3} < 0.88"
    );

    // The headline comparison: on partial faults SCORE-1.0 is structurally
    // blind (hit ratio < 1), SCOUT recovers them through the change log.
    let scout_partial = report.partial_recall.mean;
    let score_partial = report.score_partial_recall.mean;
    assert!(
        scout_partial >= 0.85,
        "SCOUT partial-fault recall regressed: {scout_partial:.3} < 0.85"
    );
    assert!(
        scout_partial >= score_partial + 0.2,
        "SCOUT partial-fault recall {scout_partial:.3} must clearly beat \
         SCORE-1.0's {score_partial:.3}"
    );

    // Suspect-set reduction: localization must keep saving the admin work.
    let gamma = report.gamma.summary();
    assert!(gamma.count > 0);
    assert!(
        gamma.mean > 0.0 && gamma.mean <= 0.35,
        "mean γ {:.3} outside the expected band",
        gamma.mean
    );
}
