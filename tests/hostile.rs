//! The enforced hostile-telemetry contract: SCOUT under lying, lossy, and
//! torn inputs.
//!
//! A fixed-seed campaign (seed 42, 100 scenarios per class, the paper's
//! testbed workload) runs all five hostile classes — lossy probe, torn TCAM
//! sync, flapping faults, correlated gray failures, wiped fault logs — and
//! this suite gates on the calibrated per-class accuracy floors, on SCOUT
//! beating or matching SCORE-1.0 recall in every class, and on the ranked
//! partial diagnosis placing the true root cause in the top-3 for at least
//! 70% of the missing-log scenarios.
//!
//! The companion regression test pins the recovery semantics behind the
//! lossy-probe class: a session that loses a batch, observes the gap as a
//! typed [`SessionError::EpochGap`] and resyncs from a full fabric read must
//! be bit-identical to an uninterrupted session from the resync epoch onward.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout::core::{ScoutEngine, SessionError};
use scout::fabric::{Fabric, FabricProbe};
use scout::sim::{Concurrency, HostileCampaign, HostileKind, WorkloadKind};
use scout::workload::TestbedSpec;

/// The committed hostile sweep: the paper's testbed workload, seed 42,
/// 100 scenarios of each class.
fn committed_campaign() -> HostileCampaign {
    HostileCampaign::new(WorkloadKind::Testbed(TestbedSpec::paper()), 100, 42)
}

/// Per-class floors for the committed sweep, with margin below the measured
/// values (release, seed 42: lossy P=.75 R=.97, torn P=.96 R=.99, flapping
/// P=.95 R=.99, gray P=.90 R=.99, missing P=.97 R=.96, top-3 = 1.0).
#[test]
fn hostile_sweep_meets_the_committed_accuracy_floors() {
    let run = committed_campaign().run();
    let report = run.report();
    assert_eq!(report.scenarios, 500);

    let floors = [
        (HostileKind::LossyProbe, 0.65, 0.90),
        (HostileKind::TornSync, 0.85, 0.93),
        (HostileKind::Flapping, 0.85, 0.93),
        (HostileKind::GrayFailure, 0.80, 0.93),
        (HostileKind::MissingLogs, 0.85, 0.90),
    ];
    for (kind, precision_floor, recall_floor) in floors {
        let stats = report.class(kind).expect("every class ran");
        assert_eq!(stats.scenarios, 100, "{kind}: class must run in full");
        assert!(
            stats.faulty >= 40,
            "{kind}: only {} of 100 scenarios injected a fault",
            stats.faulty
        );
        assert!(
            stats.precision.mean >= precision_floor,
            "{kind}: precision {:.3} below the {precision_floor} floor",
            stats.precision.mean
        );
        assert!(
            stats.recall.mean >= recall_floor,
            "{kind}: recall {:.3} below the {recall_floor} floor",
            stats.recall.mean
        );
        // The paper's comparison axis: SCOUT must not lose to the structural
        // SCORE baseline on recall in any hostile class.
        assert!(
            stats.recall.mean >= stats.score_recall.mean,
            "{kind}: SCOUT recall {:.3} below SCORE's {:.3}",
            stats.recall.mean,
            stats.score_recall.mean
        );
    }

    // Lossy transport really dropped batches, every loss was survived via a
    // full resync, and no fault escaped detection because of it.
    let lossy = report.class(HostileKind::LossyProbe).unwrap();
    assert!(lossy.disturbed > 0, "the transport must disturb batches");
    assert!(lossy.resyncs >= 1, "lost batches must force full resyncs");
    assert_eq!(
        lossy.detected, lossy.faulty,
        "every lossy-probe fault must still be detected after recovery"
    );

    // Wiped fault logs still produce a ranked partial diagnosis, and the true
    // root cause sits in the top-3 in at least 70% of the faulty scenarios.
    let missing = report.class(HostileKind::MissingLogs).unwrap();
    assert_eq!(
        missing.ranked_nonempty, missing.faulty,
        "wiped logs must never leave the operator without a ranked diagnosis"
    );
    let top3 = missing.rank.top3_rate();
    assert!(
        top3 >= 0.70,
        "missing-logs top-3 rate {top3:.3} below the 0.70 floor"
    );
}

/// Same seed, same outcomes — thread count must only change wall-clock time.
#[test]
fn hostile_campaigns_are_deterministic_across_thread_counts() {
    let base = HostileCampaign {
        concurrency: Concurrency::Sequential,
        ..HostileCampaign::new(WorkloadKind::Testbed(TestbedSpec::paper()), 6, 1337)
    };
    let reference = base.run();
    let threaded = HostileCampaign {
        concurrency: Concurrency::Threads(4),
        ..base
    }
    .run();
    assert_eq!(reference.outcomes, threaded.outcomes);
    assert_eq!(reference.report(), threaded.report());
}

fn testbed_fabric(seed: u64) -> Fabric {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    let mut fabric = Fabric::new(spec.generate(seed));
    fabric.deploy();
    fabric
}

/// One epoch of churn for the recovery replay: evictions (logged and
/// silent), repairs and admin touches, decided by the seeded rng.
fn disturb(fabric: &mut Fabric, rng: &mut StdRng, epoch: u64) {
    let switch_ids = fabric.universe().switch_ids();
    let &switch = switch_ids.choose(rng).expect("workloads have switches");
    match rng.gen_range(0u32..4) {
        0 => {
            fabric.evict_tcam(switch, rng.gen_range(1usize..3), true);
        }
        1 => {
            fabric.evict_tcam(switch, 1, false);
        }
        2 => {
            fabric.repair_switch(switch);
        }
        _ => {
            fabric.record_admin_change(
                scout::fabric::Timestamp(epoch),
                scout::policy::ObjectId::Switch(switch),
                "routine audit touch",
            );
        }
    }
}

/// The recovery regression behind the lossy-probe class: a session that
/// loses one batch mid-stream wedges with [`SessionError::EpochGap`], resyncs
/// from a full fabric read, and from the resync epoch onward is
/// bit-identical — report for report — to a session that never missed a
/// batch and to a from-scratch analysis.
#[test]
fn gap_resync_recovery_is_bit_identical_to_an_uninterrupted_session() {
    let mut fabric = testbed_fabric(42);
    let mut rng = StdRng::seed_from_u64(42);
    let engine = ScoutEngine::new();

    let mut interrupted = engine.open_session(&fabric);
    let mut lossy_probe = FabricProbe::new(&fabric);
    let mut uninterrupted = engine.open_session(&fabric);
    let mut faithful_probe = FabricProbe::new(&fabric);

    const EPOCHS: u64 = 30;
    const LOST: u64 = 9;

    for epoch in 1..=EPOCHS {
        disturb(&mut fabric, &mut rng, epoch);

        uninterrupted
            .ingest_observation(&mut faithful_probe, &fabric)
            .expect("the faithful feed ingests cleanly");

        if epoch == LOST {
            // The batch is produced — the probe's cursors advance — but it
            // never reaches the session.
            let _lost = lossy_probe.observe(&fabric);
            continue;
        }

        if epoch == LOST + 1 {
            // The next delivery reveals the gap: a typed error naming the
            // missing range, consuming nothing.
            let events = lossy_probe.observe(&fabric);
            let batch = scout::fabric::EventBatch::new(epoch, events);
            let err = interrupted.ingest(batch.clone()).unwrap_err();
            let SessionError::EpochGap { resync } = err else {
                panic!("a post-loss batch must classify as a gap, got {err:?}");
            };
            assert_eq!(resync.from_epoch, LOST);
            assert_eq!(resync.observed_epoch, epoch);
            assert_eq!(interrupted.epoch(), LOST - 1, "the gap consumed nothing");

            // Without a resync the session is wedged: retrying the same
            // batch keeps failing the same way.
            assert!(matches!(
                interrupted.ingest(batch).unwrap_err(),
                SessionError::EpochGap { .. }
            ));

            // Recovery: one full fabric read realigns session and probe.
            interrupted
                .resync(resync.observed_epoch, lossy_probe.full_resync(&fabric))
                .expect("a forward resync is accepted");
            assert_eq!(interrupted.epoch(), epoch);
        } else {
            interrupted
                .ingest_observation(&mut lossy_probe, &fabric)
                .expect("deltas ingest cleanly once realigned");
        }

        // From the resync epoch onward the recovered session is bit-identical
        // to the uninterrupted one and to a from-scratch analysis.
        if epoch > LOST {
            assert_eq!(
                interrupted.full_report(),
                uninterrupted.full_report(),
                "epoch {epoch}: recovered session diverged from the faithful one"
            );
            assert_eq!(
                *interrupted.full_report(),
                engine.analyze(&fabric),
                "epoch {epoch}: recovered session diverged from scratch"
            );
        }
    }

    assert_eq!(interrupted.epoch(), EPOCHS);
    assert_eq!(interrupted.stats().resyncs, 1);
    assert_eq!(uninterrupted.stats().resyncs, 0);
    assert_eq!(uninterrupted.stats().ingests, EPOCHS as usize);
}
