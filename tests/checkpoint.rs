//! The enforced checkpoint/restore contract: a 200-epoch, seed-42 soak-style
//! timeline with a **mid-run checkpoint**, a replay tail, a byte-level
//! round-trip and a restore — after which the restored session must be
//! **bit-identical** to the uninterrupted one at every remaining epoch, and
//! both must match the from-scratch differential oracle.
//!
//! Timeline of the test:
//!
//! * epochs 1–100: one session monitors the churning fabric;
//! * epoch 100: the session is checkpointed;
//! * epochs 101–120: the live session keeps ingesting while the same batches
//!   are appended to the snapshot's replay tail (the crash window);
//! * epoch 120: the snapshot is serialized, decoded, and restored — replaying
//!   the tail — and the restored session must agree exactly;
//! * epochs 121–200: both sessions ingest the same batches; deltas, reports
//!   and the oracle must agree bit-for-bit at every epoch.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout::core::{ScoutEngine, Snapshot};
use scout::fabric::{CorruptionKind, EventBatch, Fabric, FabricProbe};
use scout::workload::{add_random_filter, random_policy_edit, TestbedSpec};

fn testbed_fabric(seed: u64) -> Fabric {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    let mut fabric = Fabric::new(spec.generate(seed));
    fabric.deploy();
    fabric
}

/// One epoch of soak-style churn (same mix as the enforced session replay).
fn disturb(fabric: &mut Fabric, rng: &mut StdRng) {
    let switch_ids = fabric.universe().switch_ids();
    let &switch = switch_ids.choose(rng).expect("workloads have switches");
    match rng.gen_range(0u32..8) {
        0 => {
            let port = rng.gen_range(0u16..7);
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
        }
        1 => {
            let kind = *[
                CorruptionKind::VrfBit,
                CorruptionKind::SrcEpgBit,
                CorruptionKind::ActionFlip,
            ]
            .choose(rng)
            .unwrap();
            fabric.corrupt_tcam(switch, rng.gen_range(0usize..8), kind);
        }
        2 => {
            fabric.evict_tcam(switch, rng.gen_range(1usize..3), rng.gen_bool(0.5));
        }
        3 => {
            fabric.disconnect_switch(switch);
        }
        4 => {
            fabric.crash_agent(switch);
        }
        5 => {
            fabric.repair_switch(switch);
        }
        6 => {
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
        _ => {
            let universe = fabric.universe().clone();
            if let Some(edit) = random_policy_edit(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
    }
}

#[test]
fn checkpoint_restore_mid_soak_is_bit_identical_to_uninterrupted_session() {
    const EPOCHS: usize = 200;
    const CHECKPOINT_AT: usize = 100;
    const RESTORE_AT: usize = 120;

    let mut fabric = testbed_fabric(42);
    let mut rng = StdRng::seed_from_u64(42);

    let engine = ScoutEngine::new();
    let mut live = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    let mut snapshot: Option<Snapshot> = None;
    let mut restored: Option<scout::core::AnalysisSession> = None;

    for epoch in 1..=EPOCHS {
        disturb(&mut fabric, &mut rng);
        let batch = EventBatch::new(live.next_epoch(), probe.observe(&fabric));

        // The crash window: batches delivered after the checkpoint also land
        // in the snapshot's replay tail.
        if let Some(snapshot) = snapshot.as_mut() {
            if restored.is_none() {
                snapshot
                    .push_tail(batch.clone())
                    .expect("tail batches are sequential");
            }
        }

        let live_delta = live
            .ingest(batch.clone())
            .expect("faithful observations ingest cleanly");

        if let Some(session) = restored.as_mut() {
            let replayed_delta = session
                .ingest(batch)
                .expect("the restored session accepts the same batches");
            assert_eq!(
                live_delta, replayed_delta,
                "epoch {epoch}: restored session emitted a different delta"
            );
            assert_eq!(
                live.full_report(),
                session.full_report(),
                "epoch {epoch}: restored session report diverged"
            );
        }

        // Differential oracle at every epoch: from-scratch analysis of the
        // same fabric state must be bit-identical to the monitor(s).
        let reference = engine.analyze(&fabric);
        assert_eq!(
            *live.full_report(),
            reference,
            "epoch {epoch}: live session diverged from the oracle"
        );

        if epoch == CHECKPOINT_AT {
            let taken = live.checkpoint();
            assert_eq!(taken.epoch(), CHECKPOINT_AT as u64);
            assert_eq!(taken.fabric_id(), fabric.id());
            snapshot = Some(taken);
        }
        if epoch == RESTORE_AT {
            let snapshot = snapshot.as_ref().expect("checkpoint was taken");
            assert_eq!(snapshot.tail().len(), RESTORE_AT - CHECKPOINT_AT);

            // Byte-level round trip before restoring: the durable form is
            // what survives a crash, so it is the form that must restore.
            let bytes = snapshot.to_bytes();
            let decoded = Snapshot::from_bytes(&bytes).expect("snapshot decodes");
            assert_eq!(&decoded, snapshot);

            let session = engine.restore(&decoded).expect("tail replays cleanly");
            assert_eq!(session.epoch(), live.epoch());
            assert_eq!(
                session.full_report(),
                live.full_report(),
                "restore + tail replay must land exactly where the live session is"
            );
            assert_eq!(engine.session_count(), 2);
            restored = Some(session);
        }
    }

    assert_eq!(live.epoch(), EPOCHS as u64);
    let restored = restored.expect("restore happened");
    assert_eq!(restored.epoch(), EPOCHS as u64);
    assert_eq!(
        restored.stats().ingests,
        EPOCHS - CHECKPOINT_AT,
        "the restored session ingested the tail plus the post-restore epochs"
    );
}
