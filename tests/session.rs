//! The enforced session contract: a 200-epoch, seed-42 soak-style timeline
//! replayed through `AnalysisSession::ingest`, with every epoch's
//! `full_report()` asserted **bit-identical** to a from-scratch
//! `ScoutEngine::analyze` of the same fabric state — plus the typed-error
//! edge cases of the ingestion API at the facade level.
//!
//! This is the differential guarantee behind the service API: a monitor that
//! only ever sees typed event deltas (policy updates, TCAM syncs, change-log
//! and fault-log events) must reach exactly the conclusions a batch analysis
//! of the whole fabric would.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout::core::{ScoutEngine, SessionError};
use scout::fabric::{CorruptionKind, EventBatch, Fabric, FabricEvent, FabricProbe};
use scout::policy::{LogicalRule, SwitchId};
use scout::workload::{add_random_filter, random_policy_edit, TestbedSpec};

use std::collections::BTreeSet;

fn testbed_fabric(seed: u64) -> Fabric {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    let mut fabric = Fabric::new(spec.generate(seed));
    fabric.deploy();
    fabric
}

/// One epoch of soak-style churn: faults, repairs and concurrent policy
/// edits, all decided by the seeded rng.
fn disturb(fabric: &mut Fabric, rng: &mut StdRng) {
    let switch_ids = fabric.universe().switch_ids();
    let &switch = switch_ids.choose(rng).expect("workloads have switches");
    match rng.gen_range(0u32..8) {
        0 => {
            let port = rng.gen_range(0u16..7);
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
        }
        1 => {
            let kind = *[
                CorruptionKind::VrfBit,
                CorruptionKind::SrcEpgBit,
                CorruptionKind::ActionFlip,
            ]
            .choose(rng)
            .unwrap();
            fabric.corrupt_tcam(switch, rng.gen_range(0usize..8), kind);
        }
        2 => {
            fabric.evict_tcam(switch, rng.gen_range(1usize..3), rng.gen_bool(0.5));
        }
        3 => {
            fabric.disconnect_switch(switch);
        }
        4 => {
            fabric.crash_agent(switch);
        }
        5 => {
            fabric.repair_switch(switch);
        }
        6 => {
            let universe = fabric.universe().clone();
            if let Some(edit) = add_random_filter(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
        _ => {
            let universe = fabric.universe().clone();
            if let Some(edit) = random_policy_edit(&universe, rng) {
                fabric.update_policy(edit.universe);
            }
        }
    }
}

/// The committed differential replay: 200 epochs, seed 42. At every epoch the
/// session ingests the probe's delta batch and its on-demand full report must
/// be bit-identical to a from-scratch analysis; the emitted `ReportDelta`s
/// must also *compose*: folding them over the open-time report reproduces the
/// current missing-rule set and hypothesis exactly.
#[test]
fn session_replay_of_200_epoch_soak_timeline_is_bit_identical() {
    let mut fabric = testbed_fabric(42);
    let mut rng = StdRng::seed_from_u64(42);

    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);

    // Delta-folding state, seeded from the open-time report.
    let mut folded_missing: BTreeSet<LogicalRule> = session.full_report().check.missing_rule_set();
    let mut folded_hypothesis = session.full_report().hypothesis.objects();
    let mut non_noop_deltas = 0usize;

    for epoch in 0..200usize {
        disturb(&mut fabric, &mut rng);

        let delta = session
            .ingest_observation(&mut probe, &fabric)
            .expect("faithful observations ingest cleanly");

        // The headline contract: bit-identical to from-scratch analysis.
        let reference = engine.analyze(&fabric);
        assert_eq!(
            *session.full_report(),
            reference,
            "epoch {epoch}: session report diverged from from-scratch analysis"
        );
        // The session's mirror tracks the fabric's artifacts exactly.
        assert!(
            session.view().matches(&fabric),
            "epoch {epoch}: the session view drifted from the fabric"
        );

        // Deltas compose: the folded missing set and hypothesis reproduce the
        // full report.
        for rule in &delta.restored {
            assert!(folded_missing.remove(rule), "epoch {epoch}: bad restore");
        }
        for rule in &delta.newly_missing {
            assert!(folded_missing.insert(*rule), "epoch {epoch}: bad missing");
        }
        for object in &delta.hypothesis_removed {
            assert!(folded_hypothesis.remove(object), "epoch {epoch}");
        }
        for object in &delta.hypothesis_added {
            assert!(folded_hypothesis.insert(*object), "epoch {epoch}");
        }
        assert_eq!(folded_missing, reference.check.missing_rule_set());
        assert_eq!(folded_hypothesis, reference.hypothesis.objects());
        assert_eq!(delta.consistent, reference.is_consistent());
        if !delta.is_noop() {
            non_noop_deltas += 1;
        }
    }

    assert_eq!(session.epoch(), 200);
    let stats = session.stats();
    assert_eq!(stats.ingests, 200);
    assert_eq!(stats.ingest_latency.len(), 200);
    // The timeline actually exercised the machinery: most epochs carried
    // events, and plenty of deltas were visible to the operator.
    assert!(stats.events >= 200, "events: {}", stats.events);
    assert!(non_noop_deltas >= 50, "non-noop deltas: {non_noop_deltas}");
}

/// Ingestion is epoch-sequenced end to end: duplicates, reordering and gaps
/// are typed errors that consume nothing, and an empty batch is a cheap
/// no-op that still advances the epoch.
#[test]
fn facade_ingest_edge_cases() {
    let mut fabric = testbed_fabric(7);
    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);
    let baseline_report = session.full_report().clone();

    // Empty batch: cheap no-op, epoch advances, report untouched.
    let delta = session.ingest(EventBatch::empty(1)).unwrap();
    assert!(delta.is_noop());
    assert_eq!(session.epoch(), 1);
    assert_eq!(*session.full_report(), baseline_report);

    // Duplicate epoch.
    assert_eq!(
        session.ingest(EventBatch::empty(1)),
        Err(SessionError::EpochOutOfOrder {
            expected: 2,
            got: 1
        })
    );
    // Gap (lost deltas): a distinct typed error carrying the resync request.
    let err = session.ingest(EventBatch::empty(5)).unwrap_err();
    let SessionError::EpochGap { resync } = err else {
        panic!("a future epoch must be classified as a gap, got {err:?}");
    };
    assert_eq!(resync.from_epoch, 2);
    assert_eq!(resync.observed_epoch, 5);
    assert_eq!(session.epoch(), 1, "the gap consumed nothing");

    // Unknown switch id, rejected with context and without consuming the
    // epoch.
    let stray = SwitchId::new(404);
    let err = session
        .ingest(EventBatch::new(
            2,
            vec![FabricEvent::TcamSync {
                switch: stray,
                rules: Vec::new(),
            }],
        ))
        .unwrap_err();
    assert_eq!(
        err,
        SessionError::UnknownSwitch {
            epoch: 2,
            switch: stray
        }
    );
    assert_eq!(session.epoch(), 1);

    // The session recovers seamlessly: a real observation ingests as epoch 2
    // and the report matches from scratch.
    let victim = fabric.universe().switch_ids()[0];
    fabric.remove_tcam_rules_where(victim, |_| true);
    let events = probe.observe(&fabric);
    let delta = session.ingest(EventBatch::new(2, events)).unwrap();
    assert!(!delta.consistent);
    assert_eq!(*session.full_report(), engine.analyze(&fabric));
}
