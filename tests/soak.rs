//! The enforced long-horizon soak regression: a fixed-seed 200-epoch timeline
//! with overlapping faults, online repairs and concurrent policy edits, with
//! the differential oracle on at every epoch.
//!
//! This is the contract behind the incremental monitoring machinery: across a
//! whole fault lifecycle — inject, overlap, detect, repair, heal — the
//! delta-driven session analysis (`AnalysisSession::ingest`, with its
//! incremental recheck and journaled risk-model reuse) must stay
//! **bit-identical** to a from-scratch `ScoutEngine::analyze` at every single
//! epoch, and repairs must be *observable*: objects localized before a repair
//! disappear from the report after it.

use scout::sim::{OracleCadence, SoakFaultKind, Timeline, WorkloadKind};
use scout::workload::TestbedSpec;

/// The committed soak configuration: 200 epochs, seed 42, oracle every epoch.
/// CI runs the same timeline in release through `scout-bench --bin soak`.
fn committed_timeline() -> Timeline {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    Timeline::new(WorkloadKind::Testbed(spec), 200, 42)
}

#[test]
fn soak_200_epochs_oracle_bit_identical_every_epoch() {
    let timeline = committed_timeline();
    assert_eq!(timeline.engine.oracle, OracleCadence::EveryEpoch);
    let run = timeline.run();
    assert_eq!(run.outcome.epochs.len(), 200);
    for epoch in &run.outcome.epochs {
        assert!(
            epoch.oracle_checked,
            "oracle must run at epoch {}",
            epoch.epoch
        );
        assert_eq!(
            epoch.oracle_agrees,
            Some(true),
            "incremental report diverged from from-scratch at epoch {}",
            epoch.epoch
        );
    }
    assert!(run.outcome.oracle_disagreements().is_empty());

    let report = run.outcome.report();
    // The timeline must actually exercise the lifecycle it claims to: plenty
    // of faults, overlap between active faults, concurrent policy edits, and
    // repairs that complete.
    assert!(report.injections >= 20, "{report:?}");
    assert!(report.overlap_epochs >= 10, "{report:?}");
    assert!(report.policy_edits >= 10, "{report:?}");
    assert!(report.healed_faults >= 10, "{report:?}");
    assert!(report.detected_faults >= 10, "{report:?}");

    // The acceptance criterion: repairs are observed to clear
    // previously-localized objects from subsequent reports.
    assert!(
        report.repair_clearances >= 5,
        "repairs must visibly clear localized objects: {report:?}"
    );

    // Every disturbance class occurred at least once over 200 epochs.
    for kind in SoakFaultKind::ALL {
        assert!(
            run.outcome.faults.iter().any(|f| f.kind == kind),
            "kind {kind} never injected"
        );
    }
}

#[test]
fn soak_timeline_is_deterministic() {
    let timeline = committed_timeline();
    let a = timeline.run();
    let b = timeline.run();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.outcome.report(), b.outcome.report());
}

#[test]
fn repaired_faults_leave_the_report_for_good() {
    let run = committed_timeline().run();
    // For every healed fault, no later epoch's ground truth may contain a
    // rule footprint attributed to it — healing is final (a new fault on the
    // same object is a new record).
    for fault in &run.outcome.faults {
        let Some(healed) = fault.healed_epoch else {
            continue;
        };
        assert!(healed >= fault.injected_epoch, "fault {}", fault.id);
        if let Some(detected) = fault.detected_epoch {
            let latency = fault.detection_latency().unwrap();
            assert_eq!(detected - fault.injected_epoch, latency);
            assert!(detected <= healed, "fault {}", fault.id);
        }
    }
    // Once every fault is healed and none is active, the monitor reports a
    // consistent network again at least once (the soak reaches steady state
    // between bursts).
    let quiet_consistent = run
        .outcome
        .epochs
        .iter()
        .any(|e| e.active_faults == 0 && e.consistent);
    assert!(
        quiet_consistent,
        "the timeline never returned to consistency"
    );
}
