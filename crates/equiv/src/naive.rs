//! A naive, sampling-based consistency checker used as a cross-validation
//! oracle for the BDD-based checker.
//!
//! For every logical rule it evaluates a handful of concrete flows drawn from
//! the rule's match (the first, middle and last port of the range, and each
//! concrete protocol when the rule matches any protocol) against the deployed
//! TCAM with first-match semantics. The rule is reported missing if any sampled
//! flow is denied.
//!
//! For the rules produced by the policy compiler (exact ports, concrete
//! protocols) the sampling is exhaustive, so on that rule shape this oracle is
//! exact and must agree with [`EquivalenceChecker`](crate::EquivalenceChecker);
//! the property tests in this crate assert exactly that.

use scout_policy::{evaluate, Action, FlowKey, LogicalRule, Protocol, TcamRule};

/// Concrete flows sampled from a rule match for the naive check.
pub fn sample_flows(rule: &LogicalRule) -> Vec<FlowKey> {
    let m = &rule.rule.matcher;
    let protocols: Vec<Protocol> = match m.protocol {
        Protocol::Any => vec![Protocol::Tcp, Protocol::Udp, Protocol::Icmp],
        p => vec![p],
    };
    let mut ports = vec![m.ports.start];
    if m.ports.end != m.ports.start {
        ports.push(m.ports.end);
        let mid = (u32::from(m.ports.start) + u32::from(m.ports.end)) / 2;
        let mid = mid as u16;
        if mid != m.ports.start && mid != m.ports.end {
            ports.push(mid);
        }
    }
    let mut flows = Vec::with_capacity(protocols.len() * ports.len());
    for &protocol in &protocols {
        for &port in &ports {
            flows.push(FlowKey::new(m.vrf, m.src_epg, m.dst_epg, protocol, port));
        }
    }
    flows
}

/// Returns the logical rules (restricted to `switch`'s rules in `logical`)
/// whose sampled traffic is not fully allowed by `tcam`.
pub fn naive_missing_rules(logical: &[LogicalRule], tcam: &[TcamRule]) -> Vec<LogicalRule> {
    logical
        .iter()
        .filter(|l| {
            sample_flows(l)
                .iter()
                .any(|flow| evaluate(tcam, flow) != Action::Allow)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{
        ContractId, EpgId, FilterId, PortRange, Protocol, RuleMatch, RuleProvenance, SwitchId,
        TcamRule, VrfId,
    };

    fn logical(port: u16, proto: Protocol) -> LogicalRule {
        let matcher = RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            proto,
            PortRange::single(port),
        );
        LogicalRule::new(
            SwitchId::new(1),
            TcamRule::allow(matcher),
            RuleProvenance::new(
                VrfId::new(101),
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
                FilterId::new(1),
            ),
        )
    }

    #[test]
    fn sample_flows_single_port_concrete_protocol() {
        let flows = sample_flows(&logical(80, Protocol::Tcp));
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].port, 80);
        assert_eq!(flows[0].protocol, Protocol::Tcp);
    }

    #[test]
    fn sample_flows_any_protocol_expands() {
        let flows = sample_flows(&logical(80, Protocol::Any));
        assert_eq!(flows.len(), 3);
    }

    #[test]
    fn sample_flows_range_includes_bounds_and_midpoint() {
        let mut rule = logical(0, Protocol::Tcp);
        rule.rule.matcher.ports = PortRange::new(10, 20);
        let flows = sample_flows(&rule);
        let ports: Vec<u16> = flows.iter().map(|f| f.port).collect();
        assert_eq!(ports, vec![10, 20, 15]);
    }

    #[test]
    fn missing_when_tcam_lacks_rule() {
        let l = vec![logical(80, Protocol::Tcp), logical(443, Protocol::Tcp)];
        let tcam = vec![l[0].rule];
        let missing = naive_missing_rules(&l, &tcam);
        assert_eq!(missing, vec![l[1]]);
    }

    #[test]
    fn nothing_missing_when_tcam_matches() {
        let l = vec![logical(80, Protocol::Tcp)];
        let tcam = vec![l[0].rule];
        assert!(naive_missing_rules(&l, &tcam).is_empty());
    }
}
