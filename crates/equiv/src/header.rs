//! Header-space encoding of TCAM rules as BDDs.
//!
//! The equivalence checker of the paper compares two ROBDDs, one built from the
//! logical (L-type) rules and one from the deployed TCAM (T-type) rules. The
//! encoding here maps the five match fields of a [`TcamRule`] onto a fixed
//! layout of BDD variables: VRF id, source EPG, destination EPG, protocol and
//! destination port.

use scout_bdd::{Bdd, BddManager, FieldLayout, NodeTableKind};
use scout_policy::{Action, Protocol, TcamRule};

/// Bit width of the VRF id field.
pub const VRF_BITS: u32 = 16;
/// Bit width of each EPG class-id field.
pub const EPG_BITS: u32 = 16;
/// Bit width of the protocol field.
pub const PROTO_BITS: u32 = 8;
/// Bit width of the destination-port field.
pub const PORT_BITS: u32 = 16;

/// Field indexes within the layout.
const F_VRF: usize = 0;
const F_SRC: usize = 1;
const F_DST: usize = 2;
const F_PROTO: usize = 3;
const F_PORT: usize = 4;

/// The header space used for L–T equivalence checking.
#[derive(Debug, Clone)]
pub struct HeaderSpace {
    layout: FieldLayout,
}

impl Default for HeaderSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl HeaderSpace {
    /// Creates the standard 72-bit header space (VRF, src EPG, dst EPG,
    /// protocol, port).
    pub fn new() -> Self {
        Self {
            layout: FieldLayout::new(&[VRF_BITS, EPG_BITS, EPG_BITS, PROTO_BITS, PORT_BITS]),
        }
    }

    /// Creates a BDD manager sized for this header space.
    pub fn manager(&self) -> BddManager {
        self.layout.manager()
    }

    /// Creates a manager sized for this header space on an explicit node-table
    /// backend (the checker's baseline-vs-arena toggle routes through here).
    pub fn manager_with(&self, kind: NodeTableKind) -> BddManager {
        BddManager::with_backend(self.total_vars(), kind)
    }

    /// Total number of BDD variables of the encoding.
    pub fn total_vars(&self) -> u32 {
        self.layout.total_vars()
    }

    /// Encodes the match portion of one rule as the set of packets it covers.
    pub fn rule_match(&self, manager: &mut BddManager, rule: &TcamRule) -> Bdd {
        let vrf = self
            .layout
            .field(F_VRF)
            .exact(manager, u64::from(rule.matcher.vrf.raw() & 0xffff));
        let src = self
            .layout
            .field(F_SRC)
            .exact(manager, u64::from(rule.matcher.src_epg.raw() & 0xffff));
        let dst = self
            .layout
            .field(F_DST)
            .exact(manager, u64::from(rule.matcher.dst_epg.raw() & 0xffff));
        let proto = match rule.matcher.protocol {
            Protocol::Any => Bdd::TRUE,
            p => self
                .layout
                .field(F_PROTO)
                .exact(manager, u64::from(p.code())),
        };
        let port = self.layout.field(F_PORT).range(
            manager,
            u64::from(rule.matcher.ports.start),
            u64::from(rule.matcher.ports.end),
        );
        let mut acc = manager.and(vrf, src);
        acc = manager.and(acc, dst);
        acc = manager.and(acc, proto);
        manager.and(acc, port)
    }

    /// Encodes the *allowed space* of an ordered rule set under first-match,
    /// deny-by-default semantics.
    ///
    /// Rules are evaluated from the highest priority down (ties broken by list
    /// order, matching [`scout_policy::evaluate`]): a packet belongs to the
    /// allowed space if the first rule covering it has [`Action::Allow`].
    pub fn allowed_space(&self, manager: &mut BddManager, rules: &[TcamRule]) -> Bdd {
        allowed_space_with(manager, rules, |m, rule| self.rule_match(m, rule))
    }
}

/// The first-match, deny-by-default allowed-space fold, parameterized over the
/// per-rule encoder so callers can plug in a memoizing one (see the checker's
/// rule cache). This is the single home of the priority/tie-break semantics.
pub fn allowed_space_with<F>(manager: &mut BddManager, rules: &[TcamRule], encode: F) -> Bdd
where
    F: FnMut(&mut BddManager, &TcamRule) -> Bdd,
{
    allowed_space_traced_with(manager, rules, encode).0
}

/// Like [`allowed_space_with`], but also returns every rule's match diagram,
/// indexed in *input order* (`result.1[i]` is the match space of `rules[i]`).
///
/// Callers that need the per-rule spaces after the fold — the checker
/// classifying missing and unexpected rules is the motivating one — get them
/// from the single batched encode pass here instead of re-querying the
/// encoder rule by rule.
pub fn allowed_space_traced_with<F>(
    manager: &mut BddManager,
    rules: &[TcamRule],
    mut encode: F,
) -> (Bdd, Vec<Bdd>)
where
    F: FnMut(&mut BddManager, &TcamRule) -> Bdd,
{
    // Stable sort by descending priority preserves list order inside a
    // priority class, matching `scout_policy::evaluate`.
    let mut order: Vec<usize> = (0..rules.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rules[i].priority));

    let mut matches = vec![Bdd::FALSE; rules.len()];
    let mut covered = Bdd::FALSE;
    let mut allowed = Bdd::FALSE;
    for i in order {
        let rule = &rules[i];
        let matched = encode(manager, rule);
        matches[i] = matched;
        let effective = manager.diff(matched, covered);
        if rule.action == Action::Allow {
            allowed = manager.or(allowed, effective);
        }
        covered = manager.or(covered, matched);
    }
    (allowed, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{EpgId, PortRange, RuleMatch, VrfId};

    fn matcher(port_start: u16, port_end: u16) -> RuleMatch {
        RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::new(port_start, port_end),
        )
    }

    #[test]
    fn rule_match_counts_ports() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let rule = TcamRule::allow(matcher(80, 90));
        let bdd = hs.rule_match(&mut m, &rule);
        assert_eq!(m.sat_count(bdd), 11.0);
    }

    #[test]
    fn allowed_space_of_empty_ruleset_is_empty() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        assert!(hs.allowed_space(&mut m, &[]).is_false());
    }

    #[test]
    fn allow_rules_union() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let r1 = TcamRule::allow(matcher(80, 80));
        let r2 = TcamRule::allow(matcher(443, 443));
        let allowed = hs.allowed_space(&mut m, &[r1, r2]);
        assert_eq!(m.sat_count(allowed), 2.0);
    }

    #[test]
    fn higher_priority_deny_shadows_allow() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let allow = TcamRule::allow(matcher(80, 90));
        let mut deny = TcamRule::deny(matcher(85, 85));
        deny.priority = allow.priority + 10;
        let allowed = hs.allowed_space(&mut m, &[allow, deny]);
        assert_eq!(m.sat_count(allowed), 10.0);
    }

    #[test]
    fn lower_priority_deny_is_shadowed() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let allow = TcamRule::allow(matcher(80, 90));
        let mut deny = TcamRule::deny(matcher(85, 85));
        deny.priority = allow.priority - 10;
        let allowed = hs.allowed_space(&mut m, &[allow, deny]);
        assert_eq!(m.sat_count(allowed), 11.0);
    }

    #[test]
    fn any_protocol_covers_all_codes() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let rule = TcamRule::allow(RuleMatch::new(
            VrfId::new(1),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Any,
            PortRange::single(80),
        ));
        let bdd = hs.rule_match(&mut m, &rule);
        // Free over the 8 protocol bits: 256 satisfying headers.
        assert_eq!(m.sat_count(bdd), 256.0);
    }

    #[test]
    fn overlapping_identical_rules_do_not_double_count() {
        let hs = HeaderSpace::new();
        let mut m = hs.manager();
        let r = TcamRule::allow(matcher(80, 80));
        let allowed = hs.allowed_space(&mut m, &[r, r]);
        assert_eq!(m.sat_count(allowed), 1.0);
    }
}
