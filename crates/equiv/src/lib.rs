//! # scout-equiv
//!
//! The L–T equivalence checker of the SCOUT system (ICDCS 2018).
//!
//! SCOUT detects policy-deployment failures by comparing the *desired state*
//! (logical, L-type rules compiled from the network policy) against the
//! *actual state* (T-type rules collected from switch TCAMs). Following the
//! paper, the comparison is done on reduced ordered binary decision diagrams:
//! each rule set is encoded into the packet header space (VRF, source EPG,
//! destination EPG, protocol, port) and the two allowed spaces are compared.
//! When they differ, the checker emits the set of **missing rules** — the
//! logical rules whose traffic the deployed TCAM does not allow — which is the
//! evidence used to augment the risk models, plus any **unexpected rules**
//! that allow traffic the policy does not.
//!
//! A naive sampling-based oracle ([`naive_missing_rules`]) is included and
//! property-tested against the BDD checker.
//!
//! # Example
//!
//! ```
//! use scout_equiv::EquivalenceChecker;
//! use scout_fabric::Fabric;
//! use scout_policy::sample;
//!
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//! // Silently lose the port-700 rules on S2.
//! fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
//!
//! let checker = EquivalenceChecker::new();
//! let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
//! assert!(!result.is_consistent());
//! assert_eq!(result.missing_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod header;
pub mod naive;

pub use checker::{EquivalenceChecker, NetworkCheckResult, SwitchCheckResult};
pub use header::HeaderSpace;
pub use naive::{naive_missing_rules, sample_flows};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use scout_policy::{
        ContractId, EpgId, FilterId, LogicalRule, PortRange, Protocol, RuleMatch, RuleProvenance,
        SwitchId, TcamRule, VrfId,
    };
    use std::collections::BTreeSet;

    const SWITCH: SwitchId = SwitchId::new(1);

    /// Strategy producing a logical rule with a small id space so that
    /// collisions (duplicate matches) actually happen.
    fn logical_rule_strategy() -> impl Strategy<Value = LogicalRule> {
        (
            0u32..3,       // vrf
            0u32..4,       // src epg
            0u32..4,       // dst epg
            prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp), Just(Protocol::Icmp)],
            0u16..6,       // port
            0u32..3,       // contract
            0u32..3,       // filter
        )
            .prop_map(|(vrf, src, dst, proto, port, contract, filter)| {
                let matcher = RuleMatch::new(
                    VrfId::new(100 + vrf),
                    EpgId::new(src),
                    EpgId::new(dst),
                    proto,
                    PortRange::single(port),
                );
                LogicalRule::new(
                    SWITCH,
                    TcamRule::allow(matcher),
                    RuleProvenance::new(
                        VrfId::new(100 + vrf),
                        EpgId::new(src),
                        EpgId::new(dst),
                        ContractId::new(contract),
                        FilterId::new(filter),
                    ),
                )
            })
    }

    proptest! {
        /// The BDD checker and the naive oracle agree on which logical rules
        /// are missing, for arbitrary subsets of the rules removed from the
        /// TCAM (including duplicates covering the same traffic).
        #[test]
        fn bdd_checker_agrees_with_naive_oracle(
            logical in proptest::collection::vec(logical_rule_strategy(), 1..20),
            keep_mask in proptest::collection::vec(any::<bool>(), 20),
        ) {
            let tcam: Vec<TcamRule> = logical
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask.get(*i).copied().unwrap_or(true))
                .map(|(_, l)| l.rule)
                .collect();

            let checker = EquivalenceChecker::new();
            let result = checker.check_switch(SWITCH, &logical, &tcam);
            let naive = naive_missing_rules(&logical, &tcam);

            let bdd_missing: BTreeSet<LogicalRule> = result.missing_rules.iter().copied().collect();
            let naive_missing: BTreeSet<LogicalRule> = naive.iter().copied().collect();
            prop_assert_eq!(bdd_missing, naive_missing);
        }

        /// When the TCAM holds exactly the compiled rules, the checker reports
        /// consistency regardless of rule ordering.
        #[test]
        fn identical_rule_sets_are_equivalent(
            logical in proptest::collection::vec(logical_rule_strategy(), 1..20),
            seed in any::<u64>(),
        ) {
            let mut tcam: Vec<TcamRule> = logical.iter().map(|l| l.rule).collect();
            // Deterministic shuffle driven by the seed.
            let len = tcam.len();
            for i in (1..len).rev() {
                let j = (seed as usize).wrapping_mul(31).wrapping_add(i * 7) % (i + 1);
                tcam.swap(i, j);
            }
            let checker = EquivalenceChecker::new();
            let result = checker.check_switch(SWITCH, &logical, &tcam);
            prop_assert!(result.equivalent);
            prop_assert!(result.missing_rules.is_empty());
            prop_assert!(result.unexpected_rules.is_empty());
        }

        /// Missing rules are always a subset of the logical rules of the
        /// checked switch, and removing everything reports every rule missing.
        #[test]
        fn missing_rules_are_logical_rules(
            logical in proptest::collection::vec(logical_rule_strategy(), 1..15),
        ) {
            let checker = EquivalenceChecker::new();
            let result = checker.check_switch(SWITCH, &logical, &[]);
            let all: BTreeSet<LogicalRule> = logical.iter().copied().collect();
            let missing: BTreeSet<LogicalRule> = result.missing_rules.iter().copied().collect();
            prop_assert_eq!(missing.len(), all.len());
            prop_assert!(missing.is_subset(&all));
        }
    }
}
