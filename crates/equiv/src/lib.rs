//! # scout-equiv
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! The L–T equivalence checker of the SCOUT system (ICDCS 2018).
//!
//! SCOUT detects policy-deployment failures by comparing the *desired state*
//! (logical, L-type rules compiled from the network policy) against the
//! *actual state* (T-type rules collected from switch TCAMs). Following the
//! paper, the comparison is done on reduced ordered binary decision diagrams:
//! each rule set is encoded into the packet header space (VRF, source EPG,
//! destination EPG, protocol, port) and the two allowed spaces are compared.
//! When they differ, the checker emits the set of **missing rules** — the
//! logical rules whose traffic the deployed TCAM does not allow — which is the
//! evidence used to augment the risk models, plus any **unexpected rules**
//! that allow traffic the policy does not.
//!
//! A naive sampling-based oracle ([`naive_missing_rules`]) is included and
//! property-tested against the BDD checker.
//!
//! # Example
//!
//! ```
//! use scout_equiv::EquivalenceChecker;
//! use scout_fabric::Fabric;
//! use scout_policy::sample;
//!
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//! // Silently lose the port-700 rules on S2.
//! fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
//!
//! let checker = EquivalenceChecker::new();
//! let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
//! assert!(!result.is_consistent());
//! assert_eq!(result.missing_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod header;
pub mod naive;

pub use checker::{
    EquivalenceChecker, NetworkCheckResult, Parallelism, SwitchCheckResult, DEFAULT_NODE_BUDGET,
};
pub use header::HeaderSpace;
pub use naive::{naive_missing_rules, sample_flows};
// Re-exported so downstream crates can pick a node-table backend and read
// cache counters without depending on `scout-bdd` directly.
pub use scout_bdd::{CacheStats, NodeTableKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use scout_policy::{
        ContractId, EpgId, FilterId, LogicalRule, PortRange, Protocol, RuleMatch, RuleProvenance,
        SwitchId, TcamRule, VrfId,
    };
    use std::collections::BTreeSet;

    const SWITCH: SwitchId = SwitchId::new(1);

    /// Generates a logical rule from a small id space so that collisions
    /// (duplicate matches covering the same traffic) actually happen.
    fn random_logical_rule(rng: &mut StdRng) -> LogicalRule {
        let vrf = 100 + rng.gen_range(0u32..3);
        let src = rng.gen_range(0u32..4);
        let dst = rng.gen_range(0u32..4);
        let proto = *[Protocol::Tcp, Protocol::Udp, Protocol::Icmp]
            .choose(rng)
            .unwrap();
        let port = rng.gen_range(0u16..6);
        let matcher = RuleMatch::new(
            VrfId::new(vrf),
            EpgId::new(src),
            EpgId::new(dst),
            proto,
            PortRange::single(port),
        );
        LogicalRule::new(
            SWITCH,
            TcamRule::allow(matcher),
            RuleProvenance::new(
                VrfId::new(vrf),
                EpgId::new(src),
                EpgId::new(dst),
                ContractId::new(rng.gen_range(0u32..3)),
                FilterId::new(rng.gen_range(0u32..3)),
            ),
        )
    }

    fn random_rule_set(rng: &mut StdRng, max: usize) -> Vec<LogicalRule> {
        let count = rng.gen_range(1..=max);
        (0..count).map(|_| random_logical_rule(rng)).collect()
    }

    /// The BDD checker and the naive oracle agree on which logical rules are
    /// missing, for arbitrary subsets of the rules removed from the TCAM
    /// (including duplicates covering the same traffic).
    #[test]
    fn bdd_checker_agrees_with_naive_oracle() {
        let checker = EquivalenceChecker::new();
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let logical = random_rule_set(&mut rng, 20);
            let tcam: Vec<TcamRule> = logical
                .iter()
                .filter(|_| rng.gen_bool(0.5))
                .map(|l| l.rule)
                .collect();

            let result = checker.check_switch(SWITCH, &logical, &tcam);
            let naive = naive_missing_rules(&logical, &tcam);

            let bdd_missing: BTreeSet<LogicalRule> = result.missing_rules.iter().copied().collect();
            let naive_missing: BTreeSet<LogicalRule> = naive.iter().copied().collect();
            assert_eq!(bdd_missing, naive_missing, "seed {seed}");
        }
    }

    /// When the TCAM holds exactly the compiled rules, the checker reports
    /// consistency regardless of rule ordering.
    #[test]
    fn identical_rule_sets_are_equivalent() {
        let checker = EquivalenceChecker::new();
        for seed in 0..150 {
            let mut rng = StdRng::seed_from_u64(seed);
            let logical = random_rule_set(&mut rng, 20);
            let mut tcam: Vec<TcamRule> = logical.iter().map(|l| l.rule).collect();
            tcam.shuffle(&mut rng);
            let result = checker.check_switch(SWITCH, &logical, &tcam);
            assert!(result.equivalent, "seed {seed}");
            assert!(result.missing_rules.is_empty(), "seed {seed}");
            assert!(result.unexpected_rules.is_empty(), "seed {seed}");
        }
    }

    /// Missing rules are always a subset of the logical rules of the checked
    /// switch, and removing everything reports every rule missing.
    #[test]
    fn missing_rules_are_logical_rules() {
        let checker = EquivalenceChecker::new();
        for seed in 0..150 {
            let mut rng = StdRng::seed_from_u64(seed);
            let logical = random_rule_set(&mut rng, 15);
            let result = checker.check_switch(SWITCH, &logical, &[]);
            let all: BTreeSet<LogicalRule> = logical.iter().copied().collect();
            let missing: BTreeSet<LogicalRule> = result.missing_rules.iter().copied().collect();
            assert_eq!(missing.len(), all.len(), "seed {seed}");
            assert!(missing.is_subset(&all), "seed {seed}");
        }
    }
}
