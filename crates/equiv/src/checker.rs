//! The L–T equivalence checker.
//!
//! Implements the paper's "in-house equivalence checker" (§III-C): for each
//! switch it compares the ROBDD of the logical rules (L-type, what the
//! controller expects) with the ROBDD of the collected TCAM rules (T-type, what
//! the hardware actually holds). When the diagrams differ it reports the set of
//! *missing rules* — logical rules whose traffic is not (fully) allowed by the
//! deployed TCAM — which is the failure evidence the risk models are augmented
//! with.
//!
//! # Pipeline architecture
//!
//! The checker is built for production-scale fabrics (thousands of switches,
//! continuous re-checking after every change):
//!
//! * **Persistent caches** — the checker's BDD workers (one for sequential
//!   checking plus a pool for threaded checking) survive across calls, so a
//!   rule appearing on many switches (or across many checks) is encoded into
//!   the header space once per worker and every apply/implies result stays
//!   memoized.
//! * **Indexed logical rules** — [`EquivalenceChecker::check_network`] groups
//!   the logical rules by switch once (`O(total rules)`) instead of re-scanning
//!   the full rule list per switch (`O(switches × total rules)`).
//! * **Parallel checking** — per-switch checks are embarrassingly parallel;
//!   large networks are split across worker threads, each with its own
//!   manager. Results are deterministic regardless of thread count.
//! * **Incremental re-checking** — [`EquivalenceChecker::recheck_dirty`]
//!   reuses a previous [`NetworkCheckResult`] and only revisits the switches
//!   whose TCAM (or logical rule set) changed, doing work proportional to the
//!   change instead of the network.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;
use std::thread;

use scout_bdd::{Bdd, BddManager, CacheStats, NodeTableKind};
use scout_policy::{Action, EpgPair, LogicalRule, SwitchId, TcamRule};

use crate::header::HeaderSpace;

/// The outcome of checking one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCheckResult {
    /// The switch that was checked.
    pub switch: SwitchId,
    /// `true` if the allowed spaces of L-type and T-type rules are identical.
    pub equivalent: bool,
    /// Logical rules whose traffic is not fully allowed by the deployed TCAM.
    pub missing_rules: Vec<LogicalRule>,
    /// Deployed rules that allow traffic the logical policy does not allow
    /// (e.g. corrupted entries now matching the wrong VRF or EPG).
    pub unexpected_rules: Vec<TcamRule>,
}

impl SwitchCheckResult {
    /// A result reporting `switch` as fully consistent with the policy.
    pub fn consistent(switch: SwitchId) -> Self {
        Self {
            switch,
            equivalent: true,
            missing_rules: Vec::new(),
            unexpected_rules: Vec::new(),
        }
    }

    /// The EPG pairs affected by the missing rules on this switch.
    pub fn affected_pairs(&self) -> BTreeSet<EpgPair> {
        self.missing_rules.iter().map(|r| r.pair()).collect()
    }
}

/// The outcome of checking the whole network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkCheckResult {
    /// Per-switch results, keyed by switch id.
    pub per_switch: BTreeMap<SwitchId, SwitchCheckResult>,
}

impl NetworkCheckResult {
    /// An empty result (no switches checked), identical to `Default`.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if every switch is consistent with the policy.
    pub fn is_consistent(&self) -> bool {
        self.per_switch.values().all(|r| r.equivalent)
    }

    /// All missing rules across switches, in switch order, without
    /// materializing an intermediate `Vec`.
    pub fn missing_rules(&self) -> impl Iterator<Item = LogicalRule> + '_ {
        self.per_switch
            .values()
            .flat_map(|r| r.missing_rules.iter().copied())
    }

    /// Total number of missing rules.
    pub fn missing_count(&self) -> usize {
        self.per_switch
            .values()
            .map(|r| r.missing_rules.len())
            .sum()
    }

    /// Switches that are not consistent with the policy.
    pub fn inconsistent_switches(&self) -> Vec<SwitchId> {
        self.per_switch
            .iter()
            .filter(|(_, r)| !r.equivalent)
            .map(|(&s, _)| s)
            .collect()
    }

    /// All missing rules, materialized as an ordered set — the form delta
    /// consumers (e.g. a session computing a report delta between two checks)
    /// need for set difference.
    pub fn missing_rule_set(&self) -> BTreeSet<LogicalRule> {
        self.missing_rules().collect()
    }
}

/// Default bound on a worker's BDD node table; when exceeded the manager is
/// rebuilt, keeping the memory of a long-lived checker bounded. Override per
/// checker with [`EquivalenceChecker::set_node_budget`].
pub const DEFAULT_NODE_BUDGET: usize = 1 << 20;

/// Networks below this size are checked sequentially even in auto mode; the
/// per-thread manager warm-up would cost more than it saves.
const AUTO_PARALLEL_THRESHOLD: usize = 8;

/// Derives a manager operation-cache limit from a node-table budget: a
/// quarter of the budget, so the lossy apply/not/implies caches can never
/// outweigh the node table they accelerate (see
/// [`BddManager::set_cache_limit`]).
fn cache_limit_for(node_budget: usize) -> usize {
    (node_budget / 4).max(1)
}

/// A BDD manager plus the memoized per-rule encodings built on top of it.
///
/// This is the unit of state the checker keeps per thread: the manager's
/// hash-consed node table and operation caches persist across switches and
/// across calls, and `rule_cache` maps every [`TcamRule`] ever encoded to its
/// diagram so shared rules (the common case — the compiler renders the same
/// contract onto many switches) are encoded once.
#[derive(Debug, Clone)]
struct CheckWorker {
    manager: BddManager,
    rule_cache: HashMap<TcamRule, Bdd>,
    /// Node-table backend the manager was (and any rebuild will be) created
    /// on.
    kind: NodeTableKind,
}

impl CheckWorker {
    fn new(header_space: &HeaderSpace, kind: NodeTableKind, node_budget: usize) -> Self {
        let mut manager = header_space.manager_with(kind);
        manager.set_cache_limit(cache_limit_for(node_budget));
        Self {
            manager,
            rule_cache: HashMap::new(),
            kind,
        }
    }

    /// Allowed space of an ordered rule set under first-match semantics plus
    /// each rule's own match diagram (input order), built from cached
    /// per-rule encodings in one pass. The fold itself lives in
    /// [`crate::header::allowed_space_traced_with`]; only the memoizing
    /// encoder is supplied here.
    fn allowed_space_traced(
        &mut self,
        header_space: &HeaderSpace,
        rules: &[TcamRule],
    ) -> (Bdd, Vec<Bdd>) {
        let Self {
            manager,
            rule_cache,
            ..
        } = self;
        crate::header::allowed_space_traced_with(manager, rules, |m, rule| {
            *rule_cache
                .entry(*rule)
                .or_insert_with(|| header_space.rule_match(m, rule))
        })
    }

    /// Checks one switch given its (pre-filtered) logical rules.
    ///
    /// Both rule sets are encoded in one batched pass each; the
    /// missing/unexpected classification below reuses the returned per-rule
    /// diagrams instead of going back to the manager (or even the rule cache)
    /// once per rule.
    fn check_switch(
        &mut self,
        header_space: &HeaderSpace,
        switch: SwitchId,
        logical: &[LogicalRule],
        tcam: &[TcamRule],
    ) -> SwitchCheckResult {
        let logical_rules: Vec<TcamRule> = logical.iter().map(|l| l.rule).collect();
        let (l_allowed, l_matches) = self.allowed_space_traced(header_space, &logical_rules);
        let (t_allowed, t_matches) = self.allowed_space_traced(header_space, tcam);

        let equivalent = self.manager.equivalent(l_allowed, t_allowed);
        let mut missing_rules = Vec::new();
        let mut unexpected_rules = Vec::new();

        if !equivalent {
            // A logical rule is missing if part of its traffic is not allowed
            // by the deployed TCAM.
            for (l, &space) in logical.iter().zip(&l_matches) {
                if !self.manager.implies(space, t_allowed) {
                    missing_rules.push(*l);
                }
            }
            // A deployed rule is unexpected if it allows traffic the policy
            // does not allow.
            for (t, &space) in tcam.iter().zip(&t_matches) {
                if t.action != Action::Allow {
                    continue;
                }
                let effectively_allowed = self.manager.and(space, t_allowed);
                if !self.manager.implies(effectively_allowed, l_allowed) {
                    unexpected_rules.push(*t);
                }
            }
        }

        SwitchCheckResult {
            switch,
            equivalent,
            missing_rules,
            unexpected_rules,
        }
    }

    /// Rebuilds the manager (same backend, budget-derived cache limit) if the
    /// node table outgrew `budget`.
    fn maybe_shrink(&mut self, header_space: &HeaderSpace, budget: usize) {
        if self.manager.node_count() > budget {
            let stats = self.manager.cache_stats();
            self.manager = header_space.manager_with(self.kind);
            self.manager.set_cache_limit(cache_limit_for(budget));
            self.manager.absorb_cache_stats(stats);
            self.rule_cache.clear();
        }
    }
}

/// How many worker threads [`EquivalenceChecker::check_network`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Decide from the network size and the machine's available parallelism.
    #[default]
    Auto,
    /// Always check sequentially (single thread, maximal cache reuse).
    Sequential,
    /// Use exactly this many worker threads (clamped to the switch count).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves the policy to a concrete worker count for `work_items`
    /// independent tasks.
    ///
    /// `Auto` consults the machine's available parallelism once the work is
    /// large enough to amortize per-thread state; the result is always in
    /// `1..=max(work_items, 1)`. Other sharded stages of the pipeline (e.g.
    /// risk-model re-derivation in `scout-core`) use the same resolution so
    /// one configured policy governs every parallel fan-out.
    pub fn worker_count(self, work_items: usize) -> usize {
        let requested = match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                if work_items < AUTO_PARALLEL_THRESHOLD {
                    1
                } else {
                    thread::available_parallelism().map_or(1, |n| n.get())
                }
            }
        };
        requested.min(work_items.max(1))
    }
}

/// The BDD-based L–T equivalence checker.
///
/// The checker keeps a persistent, internally synchronized BDD worker so that
/// repeated calls — the normal mode of operation for a monitor that re-checks
/// the fabric after every change — reuse rule encodings and operation caches
/// instead of rebuilding the world.
///
/// # Example
///
/// ```
/// use scout_equiv::EquivalenceChecker;
/// use scout_fabric::Fabric;
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let checker = EquivalenceChecker::new();
/// let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
/// assert!(result.is_consistent());
/// ```
#[derive(Debug)]
pub struct EquivalenceChecker {
    header_space: HeaderSpace,
    parallelism: Parallelism,
    /// Node-table backend every worker manager is created on.
    node_table: NodeTableKind,
    /// Per-worker BDD node-table budget; a worker whose table outgrows it is
    /// rebuilt (see [`DEFAULT_NODE_BUDGET`]).
    node_budget: usize,
    /// The sequential worker, warm across calls.
    worker: Mutex<CheckWorker>,
    /// Parallel workers, returned to this pool after every threaded check so
    /// their managers and rule caches stay warm across calls too.
    pool: Mutex<Vec<CheckWorker>>,
}

impl Default for EquivalenceChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for EquivalenceChecker {
    /// Clones the configuration; the clone starts with fresh (empty) caches.
    fn clone(&self) -> Self {
        Self {
            header_space: self.header_space.clone(),
            parallelism: self.parallelism,
            node_table: self.node_table,
            node_budget: self.node_budget,
            worker: Mutex::new(CheckWorker::new(
                &self.header_space,
                self.node_table,
                self.node_budget,
            )),
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl EquivalenceChecker {
    /// Creates a checker over the standard header space with automatic
    /// parallelism.
    pub fn new() -> Self {
        Self::with_parallelism(Parallelism::Auto)
    }

    /// Creates a checker with an explicit parallelism policy.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        let header_space = HeaderSpace::new();
        let node_table = NodeTableKind::default();
        let worker = Mutex::new(CheckWorker::new(
            &header_space,
            node_table,
            DEFAULT_NODE_BUDGET,
        ));
        Self {
            header_space,
            parallelism,
            node_table,
            node_budget: DEFAULT_NODE_BUDGET,
            worker,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Changes the parallelism policy.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Switches every worker manager to the given node-table backend.
    ///
    /// Results never depend on the backend (the differential tests in
    /// `scout-bdd` pin the two to bit-identical handles); the toggle exists
    /// so benchmarks can compare the arena table against the baseline
    /// hash-map one. Existing workers are discarded, so the next check
    /// starts cold.
    pub fn set_node_table(&mut self, kind: NodeTableKind) {
        if self.node_table == kind {
            return;
        }
        self.node_table = kind;
        *self.lock_worker() = CheckWorker::new(&self.header_space, kind, self.node_budget);
        self.lock_pool().clear();
    }

    /// The node-table backend worker managers run on.
    pub fn node_table(&self) -> NodeTableKind {
        self.node_table
    }

    /// Aggregated BDD operation-cache counters (hits, misses, evictions)
    /// across the sequential worker and the parallel pool — cumulative over
    /// the checker's lifetime, surviving budget-triggered worker rebuilds.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = self.lock_worker().manager.cache_stats();
        for worker in self.lock_pool().iter() {
            let stats = worker.manager.cache_stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
        }
        total
    }

    /// Bounds each worker's BDD node table: a worker whose hash-consed table
    /// outgrows the budget after a check is rebuilt from scratch. Lower
    /// budgets cap the memory of a long-lived checker at the price of colder
    /// caches; results never change. A budget of 0 effectively disables cache
    /// persistence.
    pub fn set_node_budget(&mut self, budget: usize) {
        self.node_budget = budget;
        // Keep the managers' lossy operation caches tied to the new budget
        // immediately, not only after the next worker rebuild.
        let limit = cache_limit_for(budget);
        self.lock_worker().manager.set_cache_limit(limit);
        for worker in self.lock_pool().iter_mut() {
            worker.manager.set_cache_limit(limit);
        }
    }

    /// The configured per-worker BDD node-table budget.
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// Groups logical rules by destination switch.
    ///
    /// Building this index once per check replaces the quadratic
    /// filter-per-switch scan of the naive formulation.
    pub fn index_by_switch(logical: &[LogicalRule]) -> BTreeMap<SwitchId, Vec<LogicalRule>> {
        let mut index: BTreeMap<SwitchId, Vec<LogicalRule>> = BTreeMap::new();
        for &rule in logical {
            index.entry(rule.switch).or_default().push(rule);
        }
        index
    }

    /// Checks one switch: compares the logical rules destined for `switch`
    /// against the TCAM rules collected from it.
    ///
    /// `logical` may be the full network-wide rule list; it is filtered here.
    /// When checking many switches prefer [`EquivalenceChecker::check_network`],
    /// which indexes the rules once.
    pub fn check_switch(
        &self,
        switch: SwitchId,
        logical: &[LogicalRule],
        tcam: &[TcamRule],
    ) -> SwitchCheckResult {
        let for_switch: Vec<LogicalRule> = logical
            .iter()
            .filter(|l| l.switch == switch)
            .copied()
            .collect();
        let mut worker = self.lock_worker();
        let result = worker.check_switch(&self.header_space, switch, &for_switch, tcam);
        worker.maybe_shrink(&self.header_space, self.node_budget);
        result
    }

    /// Checks every switch appearing either in the logical rules or in the
    /// collected TCAM snapshot.
    pub fn check_network(
        &self,
        logical: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
    ) -> NetworkCheckResult {
        let index = Self::index_by_switch(logical);
        let mut switches: BTreeSet<SwitchId> = tcam.keys().copied().collect();
        switches.extend(index.keys().copied());
        let per_switch = self.check_switches(&index, tcam, switches.into_iter().collect());
        NetworkCheckResult { per_switch }
    }

    /// Incrementally re-checks the network after a change.
    ///
    /// Starts from `previous` (a result produced by
    /// [`EquivalenceChecker::check_network`] or an earlier `recheck_dirty`
    /// against the *same evolving network*) and re-checks only:
    ///
    /// * the switches listed in `dirty`, and
    /// * switches present now but absent from `previous` (newly added).
    ///
    /// Switches that disappeared from the network are dropped. Provided
    /// `dirty` covers every switch whose TCAM contents *or* logical rule set
    /// changed since `previous` was computed (see
    /// `scout_fabric::Fabric::dirty_switches_since`), the result is identical
    /// to a full [`EquivalenceChecker::check_network`] — at a cost
    /// proportional to the change, not the network.
    pub fn recheck_dirty(
        &self,
        previous: &NetworkCheckResult,
        logical: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
        dirty: &BTreeSet<SwitchId>,
    ) -> NetworkCheckResult {
        let switches: BTreeSet<SwitchId> = tcam.keys().copied().collect();
        self.recheck_dirty_with(previous, logical, &switches, dirty, |s| {
            tcam.get(&s).cloned().unwrap_or_default()
        })
    }

    /// Like [`EquivalenceChecker::recheck_dirty`], but fetches TCAM snapshots
    /// lazily, only for the switches that are actually re-checked.
    ///
    /// `current_switches` is the set of switches present in the network now
    /// (switches appearing in `logical` are added automatically); `tcam_of`
    /// is consulted once per re-checked switch. This keeps the *entire* cost
    /// of an incremental cycle proportional to the change — a no-change cycle
    /// copies no TCAM rules at all, where [`EquivalenceChecker::recheck_dirty`]
    /// requires the caller to have collected the full network snapshot first.
    pub fn recheck_dirty_with<F>(
        &self,
        previous: &NetworkCheckResult,
        logical: &[LogicalRule],
        current_switches: &BTreeSet<SwitchId>,
        dirty: &BTreeSet<SwitchId>,
        mut tcam_of: F,
    ) -> NetworkCheckResult
    where
        F: FnMut(SwitchId) -> Vec<TcamRule>,
    {
        let index = Self::index_by_switch(logical);
        let mut current = current_switches.clone();
        current.extend(index.keys().copied());

        let to_check: Vec<SwitchId> = current
            .iter()
            .copied()
            .filter(|s| dirty.contains(s) || !previous.per_switch.contains_key(s))
            .collect();
        let tcam: BTreeMap<SwitchId, Vec<TcamRule>> =
            to_check.iter().map(|&s| (s, tcam_of(s))).collect();

        // Carry over every clean, still-present switch.
        let mut per_switch: BTreeMap<SwitchId, SwitchCheckResult> = previous
            .per_switch
            .iter()
            .filter(|(s, _)| current.contains(s) && !dirty.contains(s))
            .map(|(&s, r)| (s, r.clone()))
            .collect();

        per_switch.append(&mut self.check_switches(&index, &tcam, to_check));
        NetworkCheckResult { per_switch }
    }

    /// Checks the given switches, sequentially or in parallel according to the
    /// configured policy. Results are deterministic either way.
    fn check_switches(
        &self,
        index: &BTreeMap<SwitchId, Vec<LogicalRule>>,
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
        switches: Vec<SwitchId>,
    ) -> BTreeMap<SwitchId, SwitchCheckResult> {
        static EMPTY_LOGICAL: Vec<LogicalRule> = Vec::new();
        static EMPTY_TCAM: Vec<TcamRule> = Vec::new();

        let threads = self.effective_threads(switches.len());
        if threads <= 1 {
            let mut worker = self.lock_worker();
            let result = switches
                .into_iter()
                .map(|switch| {
                    let logical = index.get(&switch).unwrap_or(&EMPTY_LOGICAL);
                    let rules = tcam.get(&switch).unwrap_or(&EMPTY_TCAM);
                    (
                        switch,
                        worker.check_switch(&self.header_space, switch, logical, rules),
                    )
                })
                .collect();
            worker.maybe_shrink(&self.header_space, self.node_budget);
            return result;
        }

        // Split the switches into contiguous chunks, one worker (and one
        // private BDD manager) per thread. Workers are checked out of the
        // persistent pool and returned afterwards, so threaded checks stay
        // warm across calls just like the sequential path. The per-switch
        // results are independent, so parallel and sequential checking agree
        // exactly.
        let chunk_size = switches.len().div_ceil(threads);
        let chunk_count = switches.len().div_ceil(chunk_size);
        let header_space = &self.header_space;
        let node_budget = self.node_budget;
        let mut workers = {
            let mut pool = self.lock_pool();
            while pool.len() < chunk_count {
                pool.push(CheckWorker::new(header_space, self.node_table, node_budget));
            }
            let keep = pool.len() - chunk_count;
            pool.split_off(keep)
        };
        let mut per_switch = BTreeMap::new();
        thread::scope(|scope| {
            let handles: Vec<_> = switches
                .chunks(chunk_size)
                .zip(workers.drain(..))
                .map(|(chunk, mut worker)| {
                    scope.spawn(move || {
                        let results = chunk
                            .iter()
                            .map(|&switch| {
                                let logical = index.get(&switch).unwrap_or(&EMPTY_LOGICAL);
                                let rules = tcam.get(&switch).unwrap_or(&EMPTY_TCAM);
                                (
                                    switch,
                                    worker.check_switch(header_space, switch, logical, rules),
                                )
                            })
                            .collect::<Vec<_>>();
                        worker.maybe_shrink(header_space, node_budget);
                        (worker, results)
                    })
                })
                .collect();
            let mut pool = self.lock_pool();
            for handle in handles {
                let (worker, results) = handle.join().expect("checker thread panicked");
                pool.push(worker);
                per_switch.extend(results);
            }
        });
        per_switch
    }

    fn effective_threads(&self, switch_count: usize) -> usize {
        self.parallelism.worker_count(switch_count)
    }

    fn lock_worker(&self) -> std::sync::MutexGuard<'_, CheckWorker> {
        self.worker.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<CheckWorker>> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::{CorruptionKind, Fabric};
    use scout_policy::{sample, Action};

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    #[test]
    fn healthy_deployment_is_consistent() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert!(result.is_consistent());
        assert_eq!(result.missing_count(), 0);
        assert!(result.inconsistent_switches().is_empty());
    }

    #[test]
    fn missing_rule_is_detected_on_the_right_switch() {
        let mut fabric = deployed();
        // Silently drop the port-700 rules from S2 (Figure 2 rules 5 and 6).
        let removed = fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        assert_eq!(removed.len(), 2);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert!(!result.is_consistent());
        assert_eq!(result.inconsistent_switches(), vec![sample::S2]);
        let s2 = &result.per_switch[&sample::S2];
        assert_eq!(s2.missing_rules.len(), 2);
        assert!(s2
            .missing_rules
            .iter()
            .all(|r| r.provenance.filter == sample::F_700));
        assert_eq!(
            s2.affected_pairs(),
            BTreeSet::from([scout_policy::EpgPair::new(sample::APP, sample::DB)])
        );
        // Other switches are untouched.
        assert!(result.per_switch[&sample::S1].equivalent);
        assert!(result.per_switch[&sample::S3].equivalent);
    }

    #[test]
    fn empty_tcam_reports_every_logical_rule_missing() {
        let mut fabric = deployed();
        let total = fabric.tcam_rules(sample::S2).len();
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert_eq!(result.per_switch[&sample::S2].missing_rules.len(), total);
    }

    #[test]
    fn corruption_produces_missing_and_unexpected_rules() {
        let mut fabric = deployed();
        // Corrupt the VRF field of one S2 entry: the original traffic is no
        // longer allowed (missing) and a foreign VRF is now allowed
        // (unexpected).
        fabric
            .corrupt_tcam(sample::S2, 0, CorruptionKind::VrfBit)
            .unwrap();
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        let s2 = &result.per_switch[&sample::S2];
        assert!(!s2.equivalent);
        assert_eq!(s2.missing_rules.len(), 1);
        assert_eq!(s2.unexpected_rules.len(), 1);
        assert_ne!(s2.unexpected_rules[0].matcher.vrf, sample::VRF);
    }

    #[test]
    fn action_flip_makes_rule_missing_but_not_unexpected() {
        let mut fabric = deployed();
        fabric
            .corrupt_tcam(sample::S1, 0, CorruptionKind::ActionFlip)
            .unwrap();
        let checker = EquivalenceChecker::new();
        let tcam = fabric.collect_tcam();
        assert!(tcam[&sample::S1].iter().any(|r| r.action == Action::Deny));
        let result = checker.check_network(fabric.logical_rules(), &tcam);
        let s1 = &result.per_switch[&sample::S1];
        assert!(!s1.equivalent);
        assert_eq!(s1.missing_rules.len(), 1);
        assert!(s1.unexpected_rules.is_empty());
    }

    #[test]
    fn extra_tcam_rule_is_unexpected_but_nothing_missing() {
        let fabric = deployed();
        // Hand-install a rule on S1 that the policy does not call for.
        let logical = fabric.logical_rules_for(sample::S3)[0];
        let foreign = logical.rule;
        let mut tcam = fabric.collect_tcam();
        tcam.get_mut(&sample::S1).unwrap().push(foreign);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &tcam);
        let s1 = &result.per_switch[&sample::S1];
        assert!(!s1.equivalent);
        assert!(s1.missing_rules.is_empty());
        assert_eq!(s1.unexpected_rules, vec![foreign]);
    }

    #[test]
    fn switch_known_only_from_tcam_is_checked() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let mut tcam = fabric.collect_tcam();
        // A stray switch with a leftover rule and no logical rules.
        let stray = scout_policy::SwitchId::new(99);
        tcam.insert(stray, vec![fabric.logical_rules()[0].rule]);
        let result = checker.check_network(fabric.logical_rules(), &tcam);
        assert!(result.per_switch.contains_key(&stray));
        assert!(!result.per_switch[&stray].equivalent);
    }

    #[test]
    fn repeated_checks_reuse_the_persistent_cache() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let tcam = fabric.collect_tcam();
        let first = checker.check_network(fabric.logical_rules(), &tcam);
        let cached_nodes = {
            let worker = checker.lock_worker();
            assert!(!worker.rule_cache.is_empty(), "rule cache must be warm");
            worker.manager.node_count()
        };
        let second = checker.check_network(fabric.logical_rules(), &tcam);
        assert_eq!(first, second);
        let after = checker.lock_worker().manager.node_count();
        assert_eq!(cached_nodes, after, "second check must not allocate nodes");
    }

    #[test]
    fn parallel_pool_stays_warm_across_calls() {
        let fabric = deployed();
        let checker = EquivalenceChecker::with_parallelism(Parallelism::Fixed(2));
        let tcam = fabric.collect_tcam();
        let first = checker.check_network(fabric.logical_rules(), &tcam);
        let warm_nodes: Vec<usize> = {
            let pool = checker.lock_pool();
            assert_eq!(pool.len(), 2, "both workers must return to the pool");
            pool.iter().map(|w| w.manager.node_count()).collect()
        };
        let second = checker.check_network(fabric.logical_rules(), &tcam);
        assert_eq!(first, second);
        let after: Vec<usize> = checker
            .lock_pool()
            .iter()
            .map(|w| w.manager.node_count())
            .collect();
        assert_eq!(warm_nodes, after, "second parallel check must hit caches");
    }

    #[test]
    fn recheck_dirty_with_fetches_only_dirty_switches() {
        let mut fabric = deployed();
        let checker = EquivalenceChecker::new();
        let baseline = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());

        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let current: BTreeSet<_> = fabric.collect_tcam().keys().copied().collect();
        let mut fetched = Vec::new();
        let incremental = checker.recheck_dirty_with(
            &baseline,
            fabric.logical_rules(),
            &current,
            &BTreeSet::from([sample::S2]),
            |s| {
                fetched.push(s);
                fabric.tcam_rules(s)
            },
        );
        assert_eq!(fetched, vec![sample::S2], "only the dirty switch is read");
        let full = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert_eq!(incremental, full);
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        let mut fabric = deployed();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric
            .corrupt_tcam(sample::S3, 0, CorruptionKind::SrcEpgBit)
            .unwrap();
        let logical = fabric.logical_rules();
        let tcam = fabric.collect_tcam();

        let sequential = EquivalenceChecker::with_parallelism(Parallelism::Sequential)
            .check_network(logical, &tcam);
        for threads in [2usize, 3, 8] {
            let parallel = EquivalenceChecker::with_parallelism(Parallelism::Fixed(threads))
                .check_network(logical, &tcam);
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn recheck_dirty_matches_full_check() {
        let mut fabric = deployed();
        let checker = EquivalenceChecker::new();
        let baseline = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());

        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let tcam = fabric.collect_tcam();
        let full = checker.check_network(fabric.logical_rules(), &tcam);
        let incremental = checker.recheck_dirty(
            &baseline,
            fabric.logical_rules(),
            &tcam,
            &BTreeSet::from([sample::S2]),
        );
        assert_eq!(full, incremental);
        assert!(!incremental.is_consistent());
    }

    #[test]
    fn recheck_dirty_handles_added_and_removed_switches() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let baseline = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());

        // S1 disappears from the snapshot; a stray switch appears.
        let mut tcam = fabric.collect_tcam();
        tcam.remove(&sample::S1);
        let stray = scout_policy::SwitchId::new(77);
        tcam.insert(stray, vec![fabric.logical_rules()[0].rule]);
        // Restrict the logical rules to the remaining switches so S1 truly
        // vanishes from the network.
        let logical: Vec<_> = fabric
            .logical_rules()
            .iter()
            .filter(|l| l.switch != sample::S1)
            .copied()
            .collect();

        let full = checker.check_network(&logical, &tcam);
        let incremental = checker.recheck_dirty(&baseline, &logical, &tcam, &BTreeSet::new());
        assert_eq!(full, incremental);
        assert!(!incremental.per_switch.contains_key(&sample::S1));
        assert!(incremental.per_switch.contains_key(&stray));
    }

    #[test]
    fn recheck_with_empty_dirty_set_is_a_cheap_clone() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let tcam = fabric.collect_tcam();
        let baseline = checker.check_network(fabric.logical_rules(), &tcam);
        let again =
            checker.recheck_dirty(&baseline, fabric.logical_rules(), &tcam, &BTreeSet::new());
        assert_eq!(baseline, again);
    }

    #[test]
    fn arena_and_baseline_backends_agree() {
        let mut fabric = deployed();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric
            .corrupt_tcam(sample::S3, 0, CorruptionKind::SrcEpgBit)
            .unwrap();
        let logical = fabric.logical_rules();
        let tcam = fabric.collect_tcam();

        let arena = EquivalenceChecker::new();
        assert_eq!(arena.node_table(), NodeTableKind::Arena);
        let mut baseline = EquivalenceChecker::new();
        baseline.set_node_table(NodeTableKind::Baseline);
        assert_eq!(baseline.node_table(), NodeTableKind::Baseline);

        assert_eq!(
            arena.check_network(logical, &tcam),
            baseline.check_network(logical, &tcam)
        );
    }

    #[test]
    fn cache_stats_accumulate_across_checks() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let tcam = fabric.collect_tcam();
        checker.check_network(fabric.logical_rules(), &tcam);
        let first = checker.cache_stats();
        assert!(first.misses > 0, "a cold check must miss");
        checker.check_network(fabric.logical_rules(), &tcam);
        let second = checker.cache_stats();
        assert!(second.hits > first.hits, "a repeat check must hit");
        assert!(second.misses >= first.misses);
    }

    #[test]
    fn worker_count_resolves_the_policy() {
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert_eq!(Parallelism::Fixed(4).worker_count(100), 4);
        assert_eq!(Parallelism::Fixed(4).worker_count(2), 2);
        assert_eq!(Parallelism::Fixed(0).worker_count(5), 1);
        assert_eq!(Parallelism::Fixed(3).worker_count(0), 1);
        assert_eq!(Parallelism::Auto.worker_count(1), 1);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn consistent_constructor_matches_a_real_clean_check() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        for (&switch, r) in &result.per_switch {
            assert_eq!(r, &SwitchCheckResult::consistent(switch));
        }
    }
}
