//! The L–T equivalence checker.
//!
//! Implements the paper's "in-house equivalence checker" (§III-C): for each
//! switch it compares the ROBDD of the logical rules (L-type, what the
//! controller expects) with the ROBDD of the collected TCAM rules (T-type, what
//! the hardware actually holds). When the diagrams differ it reports the set of
//! *missing rules* — logical rules whose traffic is not (fully) allowed by the
//! deployed TCAM — which is the failure evidence the risk models are augmented
//! with.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use scout_policy::{EpgPair, LogicalRule, SwitchId, TcamRule};

use crate::header::HeaderSpace;

/// The outcome of checking one switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCheckResult {
    /// The switch that was checked.
    pub switch: SwitchId,
    /// `true` if the allowed spaces of L-type and T-type rules are identical.
    pub equivalent: bool,
    /// Logical rules whose traffic is not fully allowed by the deployed TCAM.
    pub missing_rules: Vec<LogicalRule>,
    /// Deployed rules that allow traffic the logical policy does not allow
    /// (e.g. corrupted entries now matching the wrong VRF or EPG).
    pub unexpected_rules: Vec<TcamRule>,
}

impl SwitchCheckResult {
    /// The EPG pairs affected by the missing rules on this switch.
    pub fn affected_pairs(&self) -> BTreeSet<EpgPair> {
        self.missing_rules.iter().map(|r| r.pair()).collect()
    }
}

/// The outcome of checking the whole network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkCheckResult {
    /// Per-switch results, keyed by switch id.
    pub per_switch: BTreeMap<SwitchId, SwitchCheckResult>,
}

impl NetworkCheckResult {
    /// `true` if every switch is consistent with the policy.
    pub fn is_consistent(&self) -> bool {
        self.per_switch.values().all(|r| r.equivalent)
    }

    /// All missing rules across switches.
    pub fn missing_rules(&self) -> Vec<LogicalRule> {
        self.per_switch
            .values()
            .flat_map(|r| r.missing_rules.iter().copied())
            .collect()
    }

    /// Total number of missing rules.
    pub fn missing_count(&self) -> usize {
        self.per_switch.values().map(|r| r.missing_rules.len()).sum()
    }

    /// Switches that are not consistent with the policy.
    pub fn inconsistent_switches(&self) -> Vec<SwitchId> {
        self.per_switch
            .iter()
            .filter(|(_, r)| !r.equivalent)
            .map(|(&s, _)| s)
            .collect()
    }
}

/// The BDD-based L–T equivalence checker.
///
/// # Example
///
/// ```
/// use scout_equiv::EquivalenceChecker;
/// use scout_fabric::Fabric;
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let checker = EquivalenceChecker::new();
/// let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
/// assert!(result.is_consistent());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EquivalenceChecker {
    header_space: HeaderSpace,
}

impl EquivalenceChecker {
    /// Creates a checker over the standard header space.
    pub fn new() -> Self {
        Self {
            header_space: HeaderSpace::new(),
        }
    }

    /// Checks one switch: compares the logical rules destined for `switch`
    /// against the TCAM rules collected from it.
    pub fn check_switch(
        &self,
        switch: SwitchId,
        logical: &[LogicalRule],
        tcam: &[TcamRule],
    ) -> SwitchCheckResult {
        let mut manager = self.header_space.manager();

        let logical_rules: Vec<TcamRule> = logical
            .iter()
            .filter(|l| l.switch == switch)
            .map(|l| l.rule)
            .collect();
        let l_allowed = self.header_space.allowed_space(&mut manager, &logical_rules);
        let t_allowed = self.header_space.allowed_space(&mut manager, tcam);

        let equivalent = manager.equivalent(l_allowed, t_allowed);
        let mut missing_rules = Vec::new();
        let mut unexpected_rules = Vec::new();

        if !equivalent {
            // A logical rule is missing if part of its traffic is not allowed
            // by the deployed TCAM.
            for l in logical.iter().filter(|l| l.switch == switch) {
                let space = self.header_space.rule_match(&mut manager, &l.rule);
                if !manager.implies(space, t_allowed) {
                    missing_rules.push(*l);
                }
            }
            // A deployed rule is unexpected if it allows traffic the policy
            // does not allow.
            for t in tcam {
                if t.action != scout_policy::Action::Allow {
                    continue;
                }
                let space = self.header_space.rule_match(&mut manager, t);
                let effectively_allowed = manager.and(space, t_allowed);
                if !manager.implies(effectively_allowed, l_allowed) {
                    unexpected_rules.push(*t);
                }
            }
        }

        SwitchCheckResult {
            switch,
            equivalent,
            missing_rules,
            unexpected_rules,
        }
    }

    /// Checks every switch appearing either in the logical rules or in the
    /// collected TCAM snapshot.
    pub fn check_network(
        &self,
        logical: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
    ) -> NetworkCheckResult {
        let mut switches: BTreeSet<SwitchId> = tcam.keys().copied().collect();
        switches.extend(logical.iter().map(|l| l.switch));

        let empty: Vec<TcamRule> = Vec::new();
        let mut per_switch = BTreeMap::new();
        for switch in switches {
            let tcam_rules = tcam.get(&switch).unwrap_or(&empty);
            per_switch.insert(switch, self.check_switch(switch, logical, tcam_rules));
        }
        NetworkCheckResult { per_switch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::{CorruptionKind, Fabric};
    use scout_policy::{sample, Action};

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    #[test]
    fn healthy_deployment_is_consistent() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert!(result.is_consistent());
        assert_eq!(result.missing_count(), 0);
        assert!(result.inconsistent_switches().is_empty());
    }

    #[test]
    fn missing_rule_is_detected_on_the_right_switch() {
        let mut fabric = deployed();
        // Silently drop the port-700 rules from S2 (Figure 2 rules 5 and 6).
        let removed = fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        assert_eq!(removed.len(), 2);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert!(!result.is_consistent());
        assert_eq!(result.inconsistent_switches(), vec![sample::S2]);
        let s2 = &result.per_switch[&sample::S2];
        assert_eq!(s2.missing_rules.len(), 2);
        assert!(s2
            .missing_rules
            .iter()
            .all(|r| r.provenance.filter == sample::F_700));
        assert_eq!(
            s2.affected_pairs(),
            BTreeSet::from([scout_policy::EpgPair::new(sample::APP, sample::DB)])
        );
        // Other switches are untouched.
        assert!(result.per_switch[&sample::S1].equivalent);
        assert!(result.per_switch[&sample::S3].equivalent);
    }

    #[test]
    fn empty_tcam_reports_every_logical_rule_missing() {
        let mut fabric = deployed();
        let total = fabric.tcam_rules(sample::S2).len();
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        assert_eq!(result.per_switch[&sample::S2].missing_rules.len(), total);
    }

    #[test]
    fn corruption_produces_missing_and_unexpected_rules() {
        let mut fabric = deployed();
        // Corrupt the VRF field of one S2 entry: the original traffic is no
        // longer allowed (missing) and a foreign VRF is now allowed
        // (unexpected).
        fabric
            .corrupt_tcam(sample::S2, 0, CorruptionKind::VrfBit)
            .unwrap();
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        let s2 = &result.per_switch[&sample::S2];
        assert!(!s2.equivalent);
        assert_eq!(s2.missing_rules.len(), 1);
        assert_eq!(s2.unexpected_rules.len(), 1);
        assert_ne!(s2.unexpected_rules[0].matcher.vrf, sample::VRF);
    }

    #[test]
    fn action_flip_makes_rule_missing_but_not_unexpected() {
        let mut fabric = deployed();
        fabric
            .corrupt_tcam(sample::S1, 0, CorruptionKind::ActionFlip)
            .unwrap();
        let checker = EquivalenceChecker::new();
        let tcam = fabric.collect_tcam();
        assert!(tcam[&sample::S1].iter().any(|r| r.action == Action::Deny));
        let result = checker.check_network(fabric.logical_rules(), &tcam);
        let s1 = &result.per_switch[&sample::S1];
        assert!(!s1.equivalent);
        assert_eq!(s1.missing_rules.len(), 1);
        assert!(s1.unexpected_rules.is_empty());
    }

    #[test]
    fn extra_tcam_rule_is_unexpected_but_nothing_missing() {
        let fabric = deployed();
        // Hand-install a rule on S1 that the policy does not call for.
        let logical = fabric.logical_rules_for(sample::S3)[0];
        let foreign = logical.rule;
        {
            // Direct TCAM manipulation through the fault hook: remove nothing,
            // then reuse remove_tcam_rules_where's access path via agent is not
            // exposed; emulate by corrupting after install through a dedicated
            // fabric with modified policy instead.
            let mut tcam = fabric.collect_tcam();
            tcam.get_mut(&sample::S1).unwrap().push(foreign);
            let checker = EquivalenceChecker::new();
            let result = checker.check_network(fabric.logical_rules(), &tcam);
            let s1 = &result.per_switch[&sample::S1];
            assert!(!s1.equivalent);
            assert!(s1.missing_rules.is_empty());
            assert_eq!(s1.unexpected_rules, vec![foreign]);
        }
    }

    #[test]
    fn switch_known_only_from_tcam_is_checked() {
        let fabric = deployed();
        let checker = EquivalenceChecker::new();
        let mut tcam = fabric.collect_tcam();
        // A stray switch with a leftover rule and no logical rules.
        let stray = scout_policy::SwitchId::new(99);
        tcam.insert(stray, vec![fabric.logical_rules()[0].rule]);
        let result = checker.check_network(fabric.logical_rules(), &tcam);
        assert!(result.per_switch.contains_key(&stray));
        assert!(!result.per_switch[&stray].equivalent);
    }
}
