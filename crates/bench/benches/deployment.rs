//! Criterion micro-benchmarks for policy compilation and full fabric
//! deployment (controller → channels → agents → TCAM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use scout_fabric::{compile, Fabric};
use scout_workload::{ClusterSpec, TestbedSpec};

fn bench_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployment");
    group.sample_size(10);

    let testbed = TestbedSpec::paper().generate(1);
    group.bench_function("compile/testbed", |b| {
        b.iter(|| compile(&testbed));
    });
    group.bench_function("deploy/testbed", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(testbed.clone());
            fabric.deploy()
        });
    });

    let small_cluster = ClusterSpec::small().generate(1);
    group.bench_with_input(
        BenchmarkId::new("compile", "small-cluster"),
        &small_cluster,
        |b, universe| {
            b.iter(|| compile(universe));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("deploy", "small-cluster"),
        &small_cluster,
        |b, universe| {
            b.iter(|| {
                let mut fabric = Fabric::new(universe.clone());
                fabric.deploy()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_deployment);
criterion_main!(benches);
