//! Micro-benchmarks for policy compilation and full fabric deployment
//! (controller → channels → agents → TCAM).

use scout_bench::harness::Harness;
use scout_fabric::{compile, Fabric};
use scout_workload::{ClusterSpec, TestbedSpec};

fn main() {
    let mut h = Harness::new("deployment");

    let testbed = TestbedSpec::paper().generate(1);
    h.bench("compile/testbed", || compile(&testbed));
    h.bench("deploy/testbed", || {
        let mut fabric = Fabric::new(testbed.clone());
        fabric.deploy()
    });

    let small_cluster = ClusterSpec::small().generate(1);
    h.bench("compile/small-cluster", || compile(&small_cluster));
    h.bench("deploy/small-cluster", || {
        let mut fabric = Fabric::new(small_cluster.clone());
        fabric.deploy()
    });

    h.finish();
}
