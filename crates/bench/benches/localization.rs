//! Micro-benchmarks for the localization algorithms: SCOUT and the SCORE
//! baseline on controller risk models of increasing size (the scaling
//! workload of §VI-B).

use rand::rngs::StdRng;
use rand::SeedableRng;

use scout_bench::harness::Harness;
use scout_core::{controller_risk_model, score_localize, scout_localize, ScoutConfig};
use scout_faults::{synthesize_object_faults, synthetic_change_log};
use scout_workload::ScaleSpec;

fn main() {
    let mut h = Harness::new("localization");

    for &switches in &[10usize, 25, 50] {
        let universe = ScaleSpec::with_switches(switches).generate(1);
        let base = controller_risk_model(&universe);
        let mut rng = StdRng::seed_from_u64(7);
        let faults = synthesize_object_faults(&universe, 10, &mut rng);
        let change_log = synthetic_change_log(&universe, &faults);
        let mut model = base.clone();
        faults.apply_to_controller_model(&mut model);

        h.bench(&format!("scout/{switches}"), || {
            scout_localize(&model, &change_log, ScoutConfig::default())
        });
        h.bench(&format!("score-1.0/{switches}"), || {
            score_localize(&model, 1.0)
        });
        h.bench(&format!("build-model/{switches}"), || {
            controller_risk_model(&universe)
        });
    }

    h.finish();
}
