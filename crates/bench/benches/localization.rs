//! Criterion micro-benchmarks for the localization algorithms: SCOUT and the
//! SCORE baseline on controller risk models of increasing size (the scaling
//! workload of §VI-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use scout_core::{controller_risk_model, score_localize, scout_localize, ScoutConfig};
use scout_faults::{synthesize_object_faults, synthetic_change_log};
use scout_workload::ScaleSpec;

fn bench_localization(c: &mut Criterion) {
    let mut group = c.benchmark_group("localization");
    group.sample_size(10);

    for &switches in &[10usize, 25, 50] {
        let universe = ScaleSpec::with_switches(switches).generate(1);
        let base = controller_risk_model(&universe);
        let mut rng = StdRng::seed_from_u64(7);
        let faults = synthesize_object_faults(&universe, 10, &mut rng);
        let change_log = synthetic_change_log(&universe, &faults);
        let mut model = base.clone();
        faults.apply_to_controller_model(&mut model);

        group.bench_with_input(
            BenchmarkId::new("scout", switches),
            &switches,
            |b, _| {
                b.iter(|| scout_localize(&model, &change_log, ScoutConfig::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("score-1.0", switches),
            &switches,
            |b, _| {
                b.iter(|| score_localize(&model, 1.0));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build-model", switches),
            &switches,
            |b, _| {
                b.iter(|| controller_risk_model(&universe));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_localization);
criterion_main!(benches);
