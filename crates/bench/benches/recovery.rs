//! Durable-store throughput and crash-recovery latency.
//!
//! The `scout-store` journal only earns its keep if (a) journaling every
//! epoch is cheap next to the analysis itself and (b) recovery after a crash
//! is fast enough to restart the monitoring loop without losing the fabric.
//! This bench measures both halves on a real churning fabric:
//!
//! * **append path** — per-epoch `ingest` (append + fsync'd commit every
//!   epoch) versus group commit (a batch of appends amortized under one
//!   fsync), the knob an operator trades durability lag against;
//! * **recovery path** — `DurableEngine::recover` latency as a function of
//!   the journal tail length behind the newest snapshot anchor (0, 64 and
//!   256 epochs of replay), plus a genesis-anchored recovery that replays
//!   everything;
//! * **fidelity** — every recovered session is asserted bit-identical to the
//!   live session the store was written by before anything is reported.
//!
//! Results are serialized to `BENCH_recovery.json` at the repo root
//! (schema-checked by `scout_bench::json::validate_bench_report` and pinned
//! by `tests/bench_artifact.rs` in both the bench crate and the repo root);
//! pass `--max-tail N` to trim the recovery sweep locally, which skips the
//! assertions and the artifact.

use std::path::Path;
use std::time::Duration;

use scout_bench::harness::{fmt_duration, Harness};
use scout_bench::{arg_value, json};
use scout_core::{ScoutEngine, ScoutReport};
use scout_fabric::{EventBatch, Fabric, FabricProbe};
use scout_policy::sample;
use scout_store::test_dir::TestDir;
use scout_store::{DurableEngine, StoreConfig};

/// Journal tail lengths (epochs replayed behind the newest anchor) swept by
/// the recovery benches.
const TAIL_SWEEP: [u64; 3] = [0, 64, 256];
/// Epochs appended per iteration of the group-commit bench.
const GROUP: u64 = 8;
/// Recovery latency budget asserted at the longest sweep point.
const RECOVER_BUDGET: Duration = Duration::from_secs(2);

/// One epoch of light churn: evict on even epochs, repair on odd, rotating
/// over the three-tier switches so damage never accumulates.
fn churn_batch(fabric: &mut Fabric, probe: &mut FabricProbe, epoch: u64) -> EventBatch {
    let ids = fabric.universe().switch_ids();
    let switch = ids[(epoch / 2) as usize % ids.len()];
    if epoch.is_multiple_of(2) {
        fabric.evict_tcam(switch, 1, false);
    } else {
        fabric.repair_switch(switch);
    }
    EventBatch::new(epoch, probe.observe(fabric))
}

fn deployed_fabric() -> Fabric {
    let mut fabric = Fabric::new(sample::three_tier());
    fabric.deploy();
    fabric
}

/// Writes a store whose journal holds `tail` epochs past the newest anchor
/// and returns its directory plus the live session's final report.
fn build_store(engine: &ScoutEngine, tail: u64, label: &str) -> (TestDir, u64, ScoutReport) {
    let mut fabric = deployed_fabric();
    let mut probe = FabricProbe::new(&fabric);
    let dir = TestDir::new(label);
    // Anchor exactly once mid-run, then let the tail grow: `tail + 1` epochs
    // after open puts the anchor at epoch 1 with `tail` epochs to replay.
    let config = StoreConfig {
        snapshot_every: 1,
        segment_max_records: 64,
        ..StoreConfig::default()
    };
    let mut durable = engine
        .open_durable(&fabric, dir.path(), config)
        .expect("store opens");
    durable
        .ingest(churn_batch(&mut fabric, &mut probe, 1))
        .expect("epoch 1 ingests");
    // From here on, never anchor again: the journal tail grows. The config
    // is fixed at open, so reopen the store with anchoring disabled.
    let tail_only = StoreConfig {
        snapshot_every: u64::MAX,
        ..StoreConfig::default()
    };
    drop(durable);
    let mut durable = engine
        .recover(dir.path(), tail_only)
        .expect("store reopens for the tail phase");
    for epoch in 2..=tail + 1 {
        durable
            .ingest(churn_batch(&mut fabric, &mut probe, epoch))
            .expect("tail epoch ingests");
    }
    let epoch = durable.epoch();
    let report = durable.full_report().clone();
    (dir, epoch, report)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_tail: u64 = arg_value(&args, "--max-tail", u64::MAX);
    let sweep: Vec<u64> = TAIL_SWEEP.into_iter().filter(|&n| n <= max_tail).collect();
    let full_sweep = sweep.len() == TAIL_SWEEP.len();

    let engine = ScoutEngine::new();
    let mut h = Harness::new("recovery");

    // Append path, commit every epoch: the fsync-per-epoch worst case.
    {
        let mut fabric = deployed_fabric();
        let mut probe = FabricProbe::new(&fabric);
        let dir = TestDir::new("bench-append-commit");
        let mut durable = engine
            .open_durable(&fabric, dir.path(), StoreConfig::default())
            .expect("store opens");
        h.set_samples(10);
        h.bench("append/commit-per-epoch", || {
            let epoch = durable.next_epoch();
            durable
                .ingest(churn_batch(&mut fabric, &mut probe, epoch))
                .expect("sequential epochs ingest");
        });
    }

    // Append path, group commit: GROUP appends amortized under one fsync.
    {
        let mut fabric = deployed_fabric();
        let mut probe = FabricProbe::new(&fabric);
        let dir = TestDir::new("bench-append-group");
        let mut durable = engine
            .open_durable(&fabric, dir.path(), StoreConfig::default())
            .expect("store opens");
        h.set_samples(10);
        h.bench(&format!("append/group-commit-{GROUP}"), || {
            for _ in 0..GROUP {
                let epoch = durable.next_epoch();
                durable
                    .append(churn_batch(&mut fabric, &mut probe, epoch))
                    .expect("sequential epochs append");
            }
            durable.commit().expect("group commit");
        });
    }

    // Recovery path: latency as a function of journal tail length. Recovery
    // is read-only on a clean store, so the same directory can be recovered
    // once per sample.
    for &tail in &sweep {
        let (dir, epoch, report) = build_store(&engine, tail, &format!("bench-recover-{tail}"));
        let recovered = engine
            .recover(dir.path(), StoreConfig::default())
            .expect("store recovers");
        assert_eq!(recovered.epoch(), epoch, "tail {tail}: wrong epoch");
        assert_eq!(
            recovered.full_report(),
            &report,
            "tail {tail}: recovered session diverged from the live one"
        );
        drop(recovered);
        h.set_samples(if tail >= 256 { 5 } else { 10 });
        h.bench(&format!("recover/tail-{tail}"), || {
            let session = engine
                .recover(dir.path(), StoreConfig::default())
                .expect("store recovers");
            assert_eq!(session.epoch(), epoch);
        });
    }

    if full_sweep {
        let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json");
        h.write_json(&artifact).expect("artifact is writable");
        json::validate_bench_report(&h.to_json()).expect("artifact matches the bench schema");
        println!("wrote {}", artifact.display());

        let longest = TAIL_SWEEP[TAIL_SWEEP.len() - 1];
        let stats = h
            .stats_for(&format!("recover/tail-{longest}"))
            .expect("sweep covers the assertion point");
        assert!(
            stats.p50 < RECOVER_BUDGET,
            "recovery with a {longest}-epoch tail must stay under {}: measured {}",
            fmt_duration(RECOVER_BUDGET),
            fmt_duration(stats.p50),
        );
    } else {
        println!("trimmed sweep (--max-tail): assertions and artifact skipped");
    }

    h.finish();
}
