//! Full vs. incremental vs. parallel equivalence checking on a ≥32-switch
//! fabric.
//!
//! This is the benchmark behind the incremental-pipeline refactor: after one
//! of 32 switches loses TCAM rules, `recheck_dirty` must do work proportional
//! to the change (1 switch), not the network (32 switches). The run asserts
//! that the three strategies agree bit-for-bit and that the incremental
//! recheck beats the full sequential check by at least 5×.

use std::collections::BTreeSet;
use std::time::Duration;

use scout_bench::harness::{fmt_duration, Harness};
use scout_equiv::{EquivalenceChecker, Parallelism};
use scout_fabric::Fabric;
use scout_workload::ScaleSpec;

const SWITCHES: usize = 32;

fn main() {
    let universe = ScaleSpec::with_switches(SWITCHES).generate(1);
    let mut fabric = Fabric::new(universe);
    fabric.deploy();

    // Baseline check of the healthy fabric, then dirty exactly one switch.
    let sequential = EquivalenceChecker::with_parallelism(Parallelism::Sequential);
    // Force the threaded path even on small machines so the bench always
    // exercises (and validates) per-thread workers.
    let worker_threads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let parallel = EquivalenceChecker::with_parallelism(Parallelism::Fixed(worker_threads));
    let baseline = sequential.check_network(fabric.logical_rules(), &fabric.collect_tcam());
    let checkpoint = fabric.epoch();

    let victim = fabric.universe().switch_ids()[0];
    let total = fabric.tcam_rules(victim).len().max(1);
    let mut seen = 0usize;
    fabric.remove_tcam_rules_where(victim, |_| {
        seen += 1;
        seen <= total / 2
    });
    let dirty: BTreeSet<_> = fabric.dirty_switches_since(checkpoint);
    assert_eq!(dirty.len(), 1, "exactly one switch must be dirty");

    let logical = fabric.logical_rules().to_vec();
    let tcam = fabric.collect_tcam();

    // The three strategies must agree bit-for-bit.
    let full_result = sequential.check_network(&logical, &tcam);
    let parallel_result = parallel.check_network(&logical, &tcam);
    let incremental_result = sequential.recheck_dirty(&baseline, &logical, &tcam, &dirty);
    assert_eq!(full_result, parallel_result, "parallel check diverged");
    assert_eq!(
        full_result, incremental_result,
        "incremental check diverged"
    );
    assert!(!full_result.is_consistent());

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut h = Harness::new(
        format!("incremental-equiv ({SWITCHES} switches, 1 dirty, {threads} cores)").as_str(),
    );
    // Warm: the persistent checker re-uses its rule/op caches across calls —
    // the steady state of a long-running monitor.
    let t_full = h.bench("full/sequential-warm", || {
        sequential.check_network(&logical, &tcam)
    });
    // Cold: a fresh checker per call, the cost of rebuilding the world.
    let t_cold = h.bench("full/sequential-cold", || {
        EquivalenceChecker::with_parallelism(Parallelism::Sequential).check_network(&logical, &tcam)
    });
    // Parallel workers come from a persistent pool, so repeated calls are
    // warm here too; wall-clock gains over warm-sequential require cores.
    let t_parallel = h.bench("full/parallel-warm", || {
        parallel.check_network(&logical, &tcam)
    });
    let t_incremental = h.bench("incremental/1-dirty", || {
        sequential.recheck_dirty(&baseline, &logical, &tcam, &dirty)
    });
    h.finish();

    let speedup = |num: Duration, den: Duration| num.as_secs_f64() / den.as_secs_f64().max(1e-12);
    println!(
        "\nincremental speedup over full sequential: {:.1}x ({} -> {})",
        speedup(t_full, t_incremental),
        fmt_duration(t_full),
        fmt_duration(t_incremental),
    );
    println!(
        "warm-cache speedup over cold rebuild:     {:.1}x ({} -> {})",
        speedup(t_cold, t_full),
        fmt_duration(t_cold),
        fmt_duration(t_full),
    );
    println!(
        "parallel(warm) speedup over cold rebuild: {:.1}x ({} -> {}, {threads} cores)",
        speedup(t_cold, t_parallel),
        fmt_duration(t_cold),
        fmt_duration(t_parallel),
    );

    assert!(
        speedup(t_full, t_incremental) >= 5.0,
        "incremental recheck must be at least 5x faster than a full check \
         when 1 of {SWITCHES} switches is dirty"
    );
}
