//! Micro-benchmarks for the ROBDD engine: encoding rule sets into the packet
//! header space and checking them for equivalence.

use scout_bench::harness::Harness;
use scout_equiv::HeaderSpace;
use scout_policy::{EpgId, PortRange, Protocol, RuleMatch, TcamRule, VrfId};

fn rules(count: usize) -> Vec<TcamRule> {
    (0..count)
        .map(|i| {
            TcamRule::allow(RuleMatch::new(
                VrfId::new((i % 6) as u32),
                EpgId::new((i % 40) as u32),
                EpgId::new(((i * 7) % 40) as u32),
                if i % 3 == 0 {
                    Protocol::Udp
                } else {
                    Protocol::Tcp
                },
                PortRange::single((1024 + i % 500) as u16),
            ))
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("bdd");
    for &count in &[64usize, 256, 1024] {
        let rule_set = rules(count);
        let hs = HeaderSpace::new();
        h.bench(&format!("allowed-space/{count}"), || {
            let mut manager = hs.manager();
            hs.allowed_space(&mut manager, &rule_set)
        });
        h.bench(&format!("equivalence-check/{count}"), || {
            let mut manager = hs.manager();
            let a = hs.allowed_space(&mut manager, &rule_set);
            let reversed: Vec<TcamRule> = rule_set.iter().rev().copied().collect();
            let b = hs.allowed_space(&mut manager, &reversed);
            manager.equivalent(a, b)
        });
    }
    h.finish();
}
