//! Criterion micro-benchmarks for the ROBDD engine: encoding rule sets into
//! the packet header space and checking them for equivalence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use scout_equiv::HeaderSpace;
use scout_policy::{EpgId, PortRange, Protocol, RuleMatch, TcamRule, VrfId};

fn rules(count: usize) -> Vec<TcamRule> {
    (0..count)
        .map(|i| {
            TcamRule::allow(RuleMatch::new(
                VrfId::new((i % 6) as u32),
                EpgId::new((i % 40) as u32),
                EpgId::new(((i * 7) % 40) as u32),
                if i % 3 == 0 { Protocol::Udp } else { Protocol::Tcp },
                PortRange::single((1024 + i % 500) as u16),
            ))
        })
        .collect()
}

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd");
    group.sample_size(10);

    for &count in &[64usize, 256, 1024] {
        let rule_set = rules(count);
        group.bench_with_input(
            BenchmarkId::new("allowed-space", count),
            &count,
            |b, _| {
                let hs = HeaderSpace::new();
                b.iter(|| {
                    let mut manager = hs.manager();
                    hs.allowed_space(&mut manager, &rule_set)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("equivalence-check", count),
            &count,
            |b, _| {
                let hs = HeaderSpace::new();
                b.iter(|| {
                    let mut manager = hs.manager();
                    let a = hs.allowed_space(&mut manager, &rule_set);
                    let reversed: Vec<TcamRule> = rule_set.iter().rev().copied().collect();
                    let bdd = hs.allowed_space(&mut manager, &reversed);
                    manager.equivalent(a, bdd)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
