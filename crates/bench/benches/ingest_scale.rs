//! Per-epoch ingest latency at production fabric scale.
//!
//! The monitoring loop only matters if it keeps up with the fabric: this
//! bench sweeps the [`ScaleSpec::large_fabric`] preset family over switch
//! count × dirty fraction and records the *distribution* of per-epoch
//! [`AnalysisSession::ingest_observation`] latencies — each timed sample is
//! one real churn epoch, so the reported p50/p99 are the numbers an operator
//! would see, not a best-case mean. Three properties are enforced:
//!
//! * **latency** — p99 per-epoch ingest stays under 1 s at 1000 switches,
//!   for both a single-switch epoch and a 5%-dirty epoch;
//! * **node table** — a cold full-network equivalence check on the arena
//!   node-table backend is at least 2× faster than on the baseline hash-map
//!   backend at 256 switches (the toggle exists exactly for this comparison);
//! * **fidelity** — at every scale the session's incremental report is
//!   bit-identical to a from-scratch [`ScoutEngine::analyze`] oracle.
//!
//! The recorded distributions are serialized to `BENCH_ingest_scale.json` at
//! the repo root (schema-checked by `scout_bench::json::validate_bench_report`
//! in CI); pass `--max-switches N` to trim the sweep locally, which skips the
//! assertions and the artifact.
//!
//! [`ScaleSpec::large_fabric`]: scout_workload::ScaleSpec::large_fabric
//! [`AnalysisSession::ingest_observation`]: scout_core::AnalysisSession::ingest_observation
//! [`ScoutEngine::analyze`]: scout_core::ScoutEngine::analyze

use std::path::Path;
use std::time::Duration;

use scout_bench::harness::{fmt_duration, Harness};
use scout_bench::{arg_value, json};
use scout_core::ScoutEngine;
use scout_equiv::{EquivalenceChecker, NodeTableKind};
use scout_fabric::{Fabric, FabricProbe};
use scout_workload::ScaleSpec;

/// The switch-count sweep (the paper scales to 500; the large-fabric presets
/// push past it).
const SWEEP: [usize; 3] = [64, 256, 1000];
/// Scale at which the arena-vs-baseline node-table comparison runs (the
/// arena's cache-locality edge grows with the table, so the biggest sweep
/// point gives the comparison its widest margin).
const NODE_TABLE_SWITCHES: usize = 1000;
/// Scale at which the p99 latency budget is asserted.
const ASSERT_SWITCHES: usize = 1000;
/// The per-epoch ingest latency budget at [`ASSERT_SWITCHES`].
const P99_BUDGET: Duration = Duration::from_secs(1);

/// One churn epoch: dirty `width` switches (a rotating window, evicting on
/// one epoch and repairing the same window on the next so damage never
/// accumulates), then ingest the resulting delta batch.
fn churn_epoch(
    fabric: &mut Fabric,
    session: &mut scout_core::AnalysisSession,
    probe: &mut FabricProbe,
    epoch: &mut usize,
    width: usize,
) {
    let ids = fabric.universe().switch_ids();
    let window = *epoch / 2;
    for i in 0..width {
        let switch = ids[(window * width + i) % ids.len()];
        if (*epoch).is_multiple_of(2) {
            fabric.evict_tcam(switch, 1, false);
        } else {
            fabric.repair_switch(switch);
        }
    }
    *epoch += 1;
    session
        .ingest_observation(probe, fabric)
        .expect("probe batches are sequential");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_switches: usize = arg_value(&args, "--max-switches", usize::MAX);
    let sweep: Vec<usize> = SWEEP.into_iter().filter(|&n| n <= max_switches).collect();
    let full_sweep = sweep.len() == SWEEP.len();

    let mut h = Harness::new("ingest_scale");
    let mut node_table_fabric: Option<Fabric> = None;

    for &switches in &sweep {
        let spec = ScaleSpec::large_fabric(switches);
        let mut fabric = Fabric::new(spec.generate(42));
        fabric.deploy();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        // Heavier epochs get fewer samples; each sample is still one real
        // churn epoch, so the tail quantiles stay meaningful.
        h.set_samples(if switches >= 1000 { 10 } else { 20 });

        // Single-switch dirty fraction: the steady-state monitoring epoch.
        let mut epoch = 0usize;
        h.bench(&format!("ingest/{switches}sw/single-switch"), || {
            churn_epoch(&mut fabric, &mut session, &mut probe, &mut epoch, 1)
        });

        // 5% dirty fraction: a correlated event front (power feed, bad
        // rollout) touching a whole slice of the fabric in one epoch.
        let width = (switches / 20).max(1);
        let mut epoch = 0usize;
        h.bench(&format!("ingest/{switches}sw/5pct-dirty"), || {
            churn_epoch(&mut fabric, &mut session, &mut probe, &mut epoch, width)
        });

        // Differential oracle: after all that churn the incremental report
        // must still be bit-identical to a from-scratch analysis.
        assert_eq!(
            *session.full_report(),
            engine.analyze(&fabric),
            "{switches} switches: session report diverged from the oracle"
        );
        println!("oracle ok at {switches} switches");

        if switches == NODE_TABLE_SWITCHES {
            node_table_fabric = Some(fabric);
        }
    }

    // Arena vs. baseline node table: cold full-network checks, fresh checker
    // per iteration so every run pays the interning cost the table exists to
    // absorb.
    let mut speedup = None;
    if let Some(fabric) = &node_table_fabric {
        let logical = fabric.logical_rules();
        let tcam = fabric.collect_tcam();
        h.set_samples(5);
        let cold_check = |kind: NodeTableKind| {
            let mut checker = EquivalenceChecker::new();
            checker.set_node_table(kind);
            checker.check_network(logical, &tcam)
        };
        let arena = h.bench(&format!("node-table/{NODE_TABLE_SWITCHES}sw/arena"), || {
            cold_check(NodeTableKind::Arena)
        });
        let baseline = h.bench(
            &format!("node-table/{NODE_TABLE_SWITCHES}sw/baseline"),
            || cold_check(NodeTableKind::Baseline),
        );
        speedup = Some(baseline.as_secs_f64() / arena.as_secs_f64().max(1e-12));
    }

    // Report before asserting, so a failed budget still shows the numbers.
    if let Some(speedup) = speedup {
        println!("node-table speedup at {NODE_TABLE_SWITCHES} switches: {speedup:.2}x");
    }

    if full_sweep {
        let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest_scale.json");
        h.write_json(&artifact).expect("artifact is writable");
        json::validate_bench_report(&h.to_json()).expect("artifact matches the bench schema");
        println!("wrote {}", artifact.display());

        for fraction in ["single-switch", "5pct-dirty"] {
            let stats = h
                .stats_for(&format!("ingest/{ASSERT_SWITCHES}sw/{fraction}"))
                .expect("sweep covers the assertion scale");
            assert!(
                stats.p99 < P99_BUDGET,
                "p99 per-epoch ingest ({fraction}) at {ASSERT_SWITCHES} switches must stay \
                 under {}: measured {}",
                fmt_duration(P99_BUDGET),
                fmt_duration(stats.p99),
            );
        }
        let speedup = speedup.expect("full sweep includes the node-table comparison");
        assert!(
            speedup >= 2.0,
            "arena node table must be at least 2x faster than the baseline hash-map \
             table on a cold {NODE_TABLE_SWITCHES}-switch check (measured {speedup:.2}x)"
        );
    } else {
        println!("trimmed sweep (--max-switches): assertions and artifact skipped");
    }

    h.finish();
}
