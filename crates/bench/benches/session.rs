//! Sustained event-ingestion throughput of the session API.
//!
//! A production monitor lives on `AnalysisSession::ingest`: every epoch the
//! fabric's telemetry arrives as a typed delta batch and the session must
//! absorb it — re-checking only the dirtied switches and re-deriving only the
//! failed risk-model edges — fast enough to keep up with the change rate.
//! This bench drives a cluster-workload fabric through a churn loop, feeds
//! every epoch through a long-lived session, and measures:
//!
//! * per-ingest latency and sustained ingestion throughput (events/sec, with
//!   a `ReportDelta` emitted per batch), and
//! * the same epoch sequence analyzed from scratch, as the differential
//!   reference.
//!
//! It asserts the reports agree at every epoch and that the mean ingest is at
//! least 1.5× faster than the mean from-scratch analysis — the margin that
//! makes continuous delta-driven monitoring affordable.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_bench::harness::fmt_duration;
use scout_core::ScoutEngine;
use scout_fabric::{Fabric, FabricProbe};
use scout_workload::{random_policy_edit, ClusterSpec};

fn main() {
    // A quarter-paper cluster: big enough that a from-scratch epoch clearly
    // costs more than an incremental ingest, small enough for a quick bench.
    let spec = ClusterSpec {
        vrfs: 4,
        epgs: 150,
        contracts: 100,
        filters: 48,
        switches: 8,
        ..ClusterSpec::paper()
    };
    let mut fabric = Fabric::new(spec.generate(42));
    fabric.deploy();

    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&fabric);
    let mut probe = FabricProbe::new(&fabric);
    let mut rng = StdRng::seed_from_u64(42);

    const EPOCHS: usize = 40;
    let mut scratch_total = Duration::ZERO;
    let mut deltas_emitted = 0usize;
    let mut non_noop = 0usize;

    for epoch in 0..EPOCHS {
        // Churn: silent losses and evictions on one switch, the occasional
        // repair and concurrent policy edit.
        let switch_ids = fabric.universe().switch_ids();
        let &switch = switch_ids.choose(&mut rng).expect("cluster has switches");
        match epoch % 5 {
            0 => {
                let port = rng.gen_range(0u16..7);
                fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start % 7 == port);
            }
            1 => {
                fabric.evict_tcam(switch, rng.gen_range(1usize..4), true);
            }
            2 => {
                fabric.repair_switch(switch);
            }
            3 => {
                let universe = fabric.universe().clone();
                if let Some(edit) = random_policy_edit(&universe, &mut rng) {
                    fabric.update_policy(edit.universe);
                }
            }
            _ => {
                fabric.evict_tcam(switch, 1, false);
            }
        }

        // The monitored path: probe + ingest (timed inside the session).
        let delta = session
            .ingest_observation(&mut probe, &fabric)
            .expect("probe batches are sequential");
        deltas_emitted += 1;
        if !delta.is_noop() {
            non_noop += 1;
        }

        // The reference path: a from-scratch analysis of the same state.
        let t0 = std::time::Instant::now();
        let reference = engine.analyze(&fabric);
        scratch_total += t0.elapsed();
        assert_eq!(
            *session.full_report(),
            reference,
            "epoch {epoch}: ingest-driven report must match from-scratch"
        );
    }

    let stats = session.stats();
    let ingest = stats.ingest_latency.summary();
    let ingest_mean = Duration::from_nanos(ingest.mean as u64);
    let ingest_total =
        Duration::from_nanos(stats.ingest_latency.values().iter().sum::<f64>() as u64);
    let scratch_mean = scratch_total / EPOCHS as u32;
    let events_per_sec = stats.events as f64 / ingest_total.as_secs_f64().max(1e-12);
    let batches_per_sec = EPOCHS as f64 / ingest_total.as_secs_f64().max(1e-12);

    println!("== session ingestion (quarter-paper cluster, {EPOCHS} epochs) ==");
    println!(
        "events ingested              {} ({} batches, {} report deltas, {} non-noop)",
        stats.events, stats.ingests, deltas_emitted, non_noop
    );
    println!(
        "ingest latency               mean {} (max {})",
        fmt_duration(ingest_mean),
        fmt_duration(Duration::from_nanos(ingest.max as u64)),
    );
    println!(
        "from-scratch epoch analysis  mean {}",
        fmt_duration(scratch_mean),
    );
    println!(
        "sustained ingestion          {events_per_sec:.0} events/s, {batches_per_sec:.0} batches/s, \
         speedup {:.1}x over from-scratch",
        scratch_mean.as_secs_f64() / ingest_mean.as_secs_f64().max(1e-12),
    );

    assert!(
        non_noop * 2 >= EPOCHS,
        "the churn loop must produce visible report deltas"
    );
    assert!(
        scratch_mean.as_secs_f64() >= ingest_mean.as_secs_f64() * 1.5,
        "delta ingestion must be at least 1.5x faster than per-epoch \
         from-scratch analysis (ingest {} vs from-scratch {})",
        fmt_duration(ingest_mean),
        fmt_duration(scratch_mean),
    );
}
