//! Serving-layer sweep: 1000 tenants through the `scout-server` front door
//! at 1, 4 and 8 serving threads.
//!
//! Every request in this bench crosses the full wire funnel — encode,
//! [`ScoutServer::handle_bytes`], admission control, session, encode the
//! response — so the recorded latencies are what a tenant of the front door
//! would see, not what the engine costs in isolation. The sweep runs with
//! **uniform tenant seeding** (`distinct_seeds = false`): every tenant
//! carries the same universe and batch stream, so the max/min per-tenant
//! throughput ratio measures the *scheduler's* fairness, with workload
//! variance held at zero.
//!
//! Three properties are enforced on the full sweep:
//!
//! * **determinism** — sampled tenants' delta streams and final reports are
//!   bit-identical to a direct single-threaded engine replay at every thread
//!   count (always asserted; the root suite `tests/server.rs` covers every
//!   tenant);
//! * **fairness** — the fastest tenant's winsorized-busy-time throughput is
//!   at most [`FAIRNESS_BUDGET`]× the slowest tenant's, asserted at every thread
//!   count the host can actually run in parallel (oversubscribed threads on
//!   a smaller host measure the OS scheduler's time slicing, not the
//!   admission layer — the same hardware gate `scale.rs` applies);
//! * **loss-freedom** — accepted ingests across the fleet equal
//!   tenants × epochs exactly.
//!
//! The per-thread-count request-latency distributions are serialized to
//! `BENCH_server.json` at the repo root (schema-pinned by the root test
//! `tests/bench_artifact.rs`); pass `--tenants N` to trim the fleet locally,
//! which skips the assertions and the artifact.
//!
//! [`ScoutServer::handle_bytes`]: scout_server::ScoutServer::handle_bytes

use std::path::Path;

use scout_bench::{arg_value, json};
use scout_sim::{FleetRun, FleetSoak, WorkloadKind};
use scout_workload::TestbedSpec;

const TENANTS: usize = 1000;
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const EPOCHS: usize = 8;
const SEED: u64 = 42;
/// Largest tolerated max/min per-tenant throughput ratio under uniform load.
const FAIRNESS_BUDGET: f64 = 2.0;

fn sweep_point(tenants: usize, threads: usize) -> FleetSoak {
    // Heavier than the unit-test spec on purpose: a request must cost enough
    // that one OS preemption stall cannot move a tenant's p50.
    let spec = TestbedSpec {
        epgs: 24,
        contracts: 14,
        filters: 6,
        target_pairs: 48,
        switches: 6,
        tcam_capacity: 2048,
    };
    FleetSoak {
        threads,
        distinct_seeds: false,
        ..FleetSoak::new(WorkloadKind::Testbed(spec), tenants, EPOCHS, SEED)
    }
}

/// Per-tenant throughput over *winsorized* busy time: every round-trip is
/// clamped at the tenant's own p90 before summing. A tenant's handful of
/// requests that straddle an OS preemption stall report milliseconds of
/// wall-clock for microseconds of service; un-clamped, one stall would
/// dominate a tenant's busy time and the fleet-wide max/min ratio would
/// measure kernel scheduling, not admission fairness. The clamp discards
/// exactly that additive noise while keeping every real service cost (under
/// uniform load all tenants run identical requests, so their p90s agree).
fn tenant_throughput(run: &FleetRun, tenant: usize) -> f64 {
    let outcome = &run.outcomes[tenant];
    let mut sorted = outcome.latencies_ns.clone();
    sorted.sort_unstable();
    let cap = sorted[(sorted.len() * 9 / 10).min(sorted.len() - 1)];
    let busy_ns: u64 = sorted.iter().map(|&ns| ns.min(cap)).sum();
    outcome.deltas.len() as f64 / (busy_ns as f64 / 1e9).max(1e-12)
}

/// Max-over-min winsorized tenant throughput at one sweep point.
fn fairness(run: &FleetRun) -> f64 {
    let rates: Vec<f64> = (0..run.outcomes.len())
        .map(|tenant| tenant_throughput(run, tenant))
        .collect();
    let max = rates.iter().copied().fold(f64::MIN, f64::max);
    let min = rates.iter().copied().fold(f64::MAX, f64::min);
    max / min.max(1e-12)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tenants: usize = arg_value(&args, "--tenants", TENANTS);
    let full_fleet = tenants == TENANTS;
    let fleet = sweep_point(tenants, 1);

    println!("== serving-layer sweep ({tenants} tenants x {EPOCHS} epochs, uniform load) ==");
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "threads", "wall", "p50 req", "p99 req", "ingests/s", "fairness", "shed"
    );

    // Every tenant is the same workload, so one direct replay is the oracle
    // for all of them.
    let (oracle_deltas, oracle_report) = fleet.direct_replay(0);

    let mut rows: Vec<(usize, FleetRun, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let run = sweep_point(tenants, threads).run();

        // Determinism: sampled tenants must match the direct-engine replay
        // bit for bit (the root suite covers every tenant; the bench keeps
        // its own spot-check so a regression fails here too).
        for tenant in [0, tenants / 2, tenants - 1] {
            assert_eq!(
                run.outcomes[tenant].analysis(),
                (&oracle_deltas[..], Some(&oracle_report)),
                "tenant {tenant} at {threads} threads diverged from the direct replay"
            );
        }
        assert_eq!(
            run.total_ingests(),
            tenants * EPOCHS,
            "{threads} threads: accepted batches were lost"
        );

        let ratio = fairness(&run);
        println!(
            "{:>7} {:>10} {:>9} ns {:>9} ns {:>12.0} {:>8.2}x {:>8}",
            threads,
            scout_bench::harness::fmt_duration(run.elapsed),
            run.latency_p(50.0),
            run.latency_p(99.0),
            run.ingests_per_sec(),
            ratio,
            run.total_shed(),
        );
        rows.push((threads, run, ratio));
    }

    if !full_fleet {
        println!("trimmed fleet (--tenants): assertions and artifact skipped");
        return;
    }

    // The artifact: one row per thread count, carrying the fleet-wide
    // request-latency distribution and the wall-clock ingest throughput.
    let mut out = String::new();
    out.push_str("{\n  \"group\": \"server\",\n  \"benches\": [\n");
    for (i, (threads, run, _)) in rows.iter().enumerate() {
        let requests: u64 = run
            .outcomes
            .iter()
            .map(|o| o.latencies_ns.len() as u64)
            .sum();
        out.push_str(&format!(
            "    {{\"label\": \"fleet/{tenants}tenants/{threads}threads/request\", \
             \"iterations\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"throughput_per_sec\": {:.3}}}{}\n",
            requests,
            run.latency_p(50.0),
            run.latency_p(99.0),
            run.ingests_per_sec(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    json::validate_bench_report(&out).expect("artifact matches the bench schema");
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    std::fs::write(&artifact, &out).expect("artifact is writable");
    println!("wrote {}", artifact.display());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (threads, _, ratio) in &rows {
        if *threads > cores {
            println!(
                "fairness assertion skipped at {threads} threads: host has {cores} core(s), \
                 oversubscription noise is the OS scheduler's, not the admission layer's"
            );
            continue;
        }
        assert!(
            *ratio <= FAIRNESS_BUDGET,
            "at {threads} serving threads the fastest tenant ran {ratio:.2}x the slowest \
             (budget {FAIRNESS_BUDGET}x): the admission layer is starving tenants"
        );
    }
}
