//! Campaign-step cost: incremental risk-model reuse vs from-scratch rebuilds.
//!
//! This is the benchmark behind the campaign engine's incremental risk-model
//! maintenance: one scenario of a campaign disturbs a handful of switches of
//! the cluster workload, so the localization stage must cost time
//! proportional to the fault — re-derive the failed edges on the cached
//! pristine model and roll them back — instead of rebuilding the controller
//! bipartite graph from the policy universe. The run asserts that both
//! formulations agree exactly and that reuse is at least 3× faster; it also
//! reports the end-to-end per-scenario cost (check + model + localization)
//! for both modes.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use scout_bench::harness::{fmt_duration, Harness};
use scout_core::{
    augment_controller_model, controller_risk_model, scout_localize, ScoutConfig, ScoutEngine,
};
use scout_fabric::Fabric;
use scout_faults::{FaultInjector, ObjectFaultKind};
use scout_workload::ClusterSpec;

fn main() {
    // Half the paper's cluster: big enough that rebuilding the controller
    // model clearly dwarfs a fault-proportional augment/undo cycle, small
    // enough to keep the bench quick.
    let spec = ClusterSpec {
        vrfs: 6,
        epgs: 300,
        contracts: 190,
        filters: 80,
        switches: 16,
        ..ClusterSpec::paper()
    };
    let universe = spec.generate(7);
    let mut base = Fabric::new(universe);
    base.deploy();

    let engine = ScoutEngine::new();
    let mut session = engine.open_session(&base);
    assert!(session.is_consistent());

    // One representative campaign step: a clone of the base fabric with two
    // partial faults on filter objects — the bounded-blast-radius disturbance
    // that makes the "cost proportional to the fault" claim visible (a fault
    // on a hub VRF legitimately touches most of the model either way).
    let mut fabric = base.clone();
    let mut injector = FaultInjector::new(StdRng::seed_from_u64(3));
    let filters: Vec<_> = FaultInjector::<StdRng>::candidate_objects(&fabric)
        .into_iter()
        .filter(|o| matches!(o, scout_policy::ObjectId::Filter(_)))
        .take(2)
        .collect();
    assert_eq!(filters.len(), 2);
    for object in filters {
        injector
            .inject_fault_on(&mut fabric, object, ObjectFaultKind::Partial)
            .expect("filter objects have deployed rules");
    }
    let report = session.analyze_clone(&fabric);
    assert!(!report.is_consistent());
    let check = report.check.clone();

    // The two formulations of the localization stage must agree bit for bit.
    let scratch_hypothesis = {
        let mut model = controller_risk_model(fabric.universe());
        augment_controller_model(&mut model, check.missing_rules());
        scout_localize(&model, fabric.change_log(), ScoutConfig::default())
    };
    let reused_hypothesis = session.with_augmented_model(&fabric, &check, |model| {
        scout_localize(model, fabric.change_log(), ScoutConfig::default())
    });
    assert_eq!(scratch_hypothesis, reused_hypothesis);

    let mut h = Harness::new("campaign-step (half-paper cluster, 2 partial filter faults)");
    let t_scratch = h.bench("risk-model/from-scratch", || {
        let mut model = controller_risk_model(fabric.universe());
        augment_controller_model(&mut model, check.missing_rules());
        let signature = model.failure_signature();
        let suspects = model.suspect_set(&signature);
        let hypothesis = scout_localize(&model, fabric.change_log(), ScoutConfig::default());
        (suspects.len(), hypothesis.len())
    });
    let t_reuse = h.bench("risk-model/incremental", || {
        session.with_augmented_model(&fabric, &check, |model| {
            let signature = model.failure_signature();
            let suspects = model.suspect_set(&signature);
            let hypothesis = scout_localize(model, fabric.change_log(), ScoutConfig::default());
            (suspects.len(), hypothesis.len())
        })
    });
    h.finish();

    // End-to-end scenario analysis, for context (check + model + correlate);
    // timed once — the BDD check dominates and is too slow to sample.
    let t_full = {
        let start = std::time::Instant::now();
        std::hint::black_box(engine.analyze(&fabric).missing_rule_count());
        start.elapsed()
    };
    let t_derived = {
        let start = std::time::Instant::now();
        std::hint::black_box(session.analyze_clone(&fabric).missing_rule_count());
        start.elapsed()
    };

    let speedup = |num: Duration, den: Duration| num.as_secs_f64() / den.as_secs_f64().max(1e-12);
    println!(
        "\nrisk-model reuse speedup over rebuild:  {:.1}x ({} -> {})",
        speedup(t_scratch, t_reuse),
        fmt_duration(t_scratch),
        fmt_duration(t_reuse),
    );
    println!(
        "end-to-end derived speedup:             {:.1}x ({} -> {})",
        speedup(t_full, t_derived),
        fmt_duration(t_full),
        fmt_duration(t_derived),
    );

    assert!(
        speedup(t_scratch, t_reuse) >= 3.0,
        "incremental risk-model reuse must be at least 3x faster than a \
         from-scratch rebuild on the cluster workload"
    );
}
