//! Scale sweep: aggregate ingest throughput of one shared engine as tenants
//! and driver threads grow.
//!
//! The sharded `ScoutEngine` exists so one service instance can absorb many
//! tenant fabrics concurrently. This bench runs a (tenants × threads) sweep
//! of oracle-less multi-tenant soaks — every tenant is an independent
//! timeline monitored by its own session on the shared engine — and
//! measures aggregate ingest throughput (batches/s across all tenants, by
//! wall clock).
//!
//! Two properties are enforced:
//!
//! * **determinism** — per-tenant outcomes are bit-identical at every thread
//!   count (always asserted);
//! * **scaling** — on a 4-tenant workload, 4 driver threads deliver at least
//!   2× the aggregate throughput of 1 thread (asserted when the host has at
//!   least 4 cores; on smaller hosts the sweep still runs and reports, since
//!   wall-clock scaling is physically impossible without cores to scale
//!   onto).

use scout_bench::harness::fmt_duration;
use scout_sim::{MultiTenantRun, MultiTenantSoak, SoakOutcome, WorkloadKind};
use scout_workload::TestbedSpec;

const TENANT_COUNTS: [usize; 2] = [2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const EPOCHS: usize = 40;
const SEED: u64 = 42;

fn sweep_point(tenants: usize, threads: usize) -> MultiTenantSoak {
    let spec = TestbedSpec {
        epgs: 12,
        contracts: 8,
        filters: 4,
        target_pairs: 20,
        switches: 3,
        tcam_capacity: 1024,
    };
    MultiTenantSoak {
        threads,
        ..MultiTenantSoak::new(WorkloadKind::Testbed(spec), tenants, EPOCHS, SEED)
    }
    .without_oracle()
}

/// Runs a sweep point twice and keeps the faster run (best-of-2 damps
/// scheduler noise without hiding real contention).
fn best_of_two(tenants: usize, threads: usize) -> MultiTenantRun {
    let first = sweep_point(tenants, threads).run();
    let second = sweep_point(tenants, threads).run();
    if second.elapsed < first.elapsed {
        second
    } else {
        first
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== scale sweep (tenants x threads, {EPOCHS} epochs/tenant, {cores} core(s)) ==");
    println!(
        "{:>7} {:>7} {:>10} {:>12} {:>9}",
        "tenants", "threads", "wall", "ingests/s", "speedup"
    );

    let mut four_tenant_throughput: Vec<(usize, f64)> = Vec::new();
    for tenants in TENANT_COUNTS {
        let mut reference: Option<(Vec<SoakOutcome>, f64)> = None;
        for &threads in THREAD_COUNTS.iter().filter(|&&t| t <= tenants) {
            let run = best_of_two(tenants, threads);
            assert!(
                run.oracle_disagreements().is_empty(),
                "oracle disagreement in sweep point {tenants}x{threads}"
            );
            let outcomes: Vec<SoakOutcome> = run.runs.iter().map(|r| r.outcome.clone()).collect();
            let throughput = run.ingests_per_sec();
            let speedup = match &reference {
                None => {
                    reference = Some((outcomes.clone(), throughput));
                    1.0
                }
                Some((reference_outcomes, base)) => {
                    // Determinism: thread count must never change results.
                    assert_eq!(
                        &outcomes, reference_outcomes,
                        "{tenants}x{threads}: thread count changed tenant outcomes"
                    );
                    throughput / base.max(1e-12)
                }
            };
            if tenants == 4 {
                four_tenant_throughput.push((threads, throughput));
            }
            println!(
                "{:>7} {:>7} {:>10} {:>12.0} {:>8.2}x",
                tenants,
                threads,
                fmt_duration(run.elapsed),
                throughput,
                speedup,
            );
        }
    }

    let &(_, single) = four_tenant_throughput
        .iter()
        .find(|(threads, _)| *threads == 1)
        .expect("sweep covers 4 tenants x 1 thread");
    let &(_, quad) = four_tenant_throughput
        .iter()
        .find(|(threads, _)| *threads == 4)
        .expect("sweep covers 4 tenants x 4 threads");
    let scaling = quad / single.max(1e-12);
    println!("4-tenant aggregate scaling 1 -> 4 threads: {scaling:.2}x");

    if cores >= 4 {
        assert!(
            scaling >= 2.0,
            "aggregate ingest throughput must scale at least 2x from 1 to 4 driver \
             threads on a 4-tenant workload ({single:.0} -> {quad:.0} ingests/s, \
             {scaling:.2}x)"
        );
    } else {
        println!(
            "scaling assertion skipped: host has {cores} core(s), wall-clock \
             scaling needs at least 4"
        );
    }
}
