//! Micro-benchmarks for the L–T equivalence checker on deployed policies: the
//! consistent case (fast path) and the case with missing rules (missing-rule
//! extraction).

use scout_bench::harness::Harness;
use scout_equiv::EquivalenceChecker;
use scout_fabric::Fabric;
use scout_workload::TestbedSpec;

fn main() {
    let mut h = Harness::new("equivalence");

    for &pairs in &[50usize, 100, 200] {
        let spec = TestbedSpec {
            epgs: 36,
            contracts: 24,
            filters: 9,
            target_pairs: pairs,
            switches: 6,
            tcam_capacity: 64 * 1024,
        };
        let mut fabric = Fabric::new(spec.generate(1));
        fabric.deploy();
        let logical = fabric.logical_rules().to_vec();
        let tcam = fabric.collect_tcam();

        h.bench(&format!("consistent/{pairs}"), || {
            let checker = EquivalenceChecker::new();
            checker.check_network(&logical, &tcam)
        });

        // Break ~10% of the rules on one switch and measure the slow path.
        let mut broken = fabric.clone();
        let victim = broken.universe().switch_ids()[0];
        let total = broken.tcam_rules(victim).len().max(1);
        let mut removed = 0usize;
        broken.remove_tcam_rules_where(victim, |_| {
            removed += 1;
            removed <= total / 10 + 1
        });
        let broken_tcam = broken.collect_tcam();
        h.bench(&format!("with-missing-rules/{pairs}"), || {
            let checker = EquivalenceChecker::new();
            checker.check_network(&logical, &broken_tcam)
        });
    }

    h.finish();
}
