//! Steady-state soak throughput: the cost of one monitoring epoch,
//! incremental vs from-scratch.
//!
//! A soak timeline keeps one fabric alive and re-analyzes it every epoch, so
//! the quantity that decides whether continuous monitoring is affordable is
//! the *steady-state epoch cost* of the incremental path — a recheck of the
//! few dirty switches plus a journaled augment/undo on the cached risk model —
//! against the from-scratch analysis the differential oracle performs. This
//! bench runs a cluster-workload timeline with the oracle on every epoch, so
//! both costs are measured over the identical epoch sequence, asserts the
//! reports agreed at every epoch, and requires the incremental mean to beat
//! the from-scratch mean by a healthy margin.

use scout_bench::harness::fmt_duration;
use scout_sim::{Timeline, WorkloadKind};
use scout_workload::ClusterSpec;
use std::time::Duration;

fn main() {
    // A quarter-paper cluster: big enough that a from-scratch epoch clearly
    // costs more than an incremental one, small enough for a quick bench.
    let spec = ClusterSpec {
        vrfs: 4,
        epgs: 150,
        contracts: 100,
        filters: 48,
        switches: 8,
        ..ClusterSpec::paper()
    };
    let timeline = Timeline::new(WorkloadKind::Cluster(spec), 40, 42);
    let run = timeline.run();

    assert_eq!(run.outcome.epochs.len(), 40);
    assert!(
        run.outcome.oracle_disagreements().is_empty(),
        "incremental and from-scratch reports must agree at every epoch"
    );

    let report = run.outcome.report();
    println!("{}", report.table());
    println!("{}", report.timeline_table(48));

    let inc = run.incremental_cost.summary();
    let scratch = run.scratch_cost.summary();
    let inc_mean = Duration::from_nanos(inc.mean as u64);
    let scratch_mean = Duration::from_nanos(scratch.mean as u64);
    let epoch_throughput = 1.0 / inc_mean.as_secs_f64().max(1e-12);
    println!("\n== soak steady state (cluster workload, 40 epochs) ==");
    println!(
        "incremental epoch analysis   mean {} (max {})",
        fmt_duration(inc_mean),
        fmt_duration(Duration::from_nanos(inc.max as u64)),
    );
    println!(
        "from-scratch epoch analysis  mean {}",
        fmt_duration(scratch_mean),
    );
    println!(
        "steady-state epoch throughput: {epoch_throughput:.0} epochs/s, \
         incremental speedup {:.1}x",
        scratch.mean / inc.mean.max(1.0),
    );

    assert!(
        scratch.mean >= inc.mean * 1.5,
        "incremental epoch analysis must be at least 1.5x faster than \
         from-scratch in steady state (incremental {} vs from-scratch {})",
        fmt_duration(inc_mean),
        fmt_duration(scratch_mean),
    );
}
