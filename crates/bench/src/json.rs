//! Minimal JSON support for benchmark artifacts.
//!
//! The workspace is built without a crates.io registry, so committed bench
//! reports (e.g. `BENCH_ingest_scale.json`) cannot lean on serde. This module
//! provides the two pieces the harness and CI need: a small recursive-descent
//! parser into a [`Json`] tree, and [`validate_bench_report`], which checks a
//! report against the schema emitted by
//! [`Harness::to_json`](crate::harness::Harness::to_json). The `scale-smoke`
//! CI job runs the validator against the committed artifact so schema drift
//! fails loudly instead of silently producing an unreadable report.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Object(BTreeMap<String, Json>),
}

/// A parse or validation failure, with a byte offset where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for bench labels;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates a bench report against the schema written by
/// [`Harness::to_json`](crate::harness::Harness::to_json):
/// a top-level object with a string `group` and a non-empty `benches` array
/// whose entries each carry a string `label`, integer `iterations` and
/// `p50_ns`/`p99_ns`, and a positive `throughput_per_sec`.
pub fn validate_bench_report(text: &str) -> Result<(), JsonError> {
    let fail = |message: &str| JsonError {
        message: message.to_string(),
        offset: 0,
    };
    let doc = Json::parse(text)?;
    doc.get("group")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("report must have a string 'group'"))?;
    let benches = doc
        .get("benches")
        .and_then(Json::as_array)
        .ok_or_else(|| fail("report must have a 'benches' array"))?;
    if benches.is_empty() {
        return Err(fail("'benches' must not be empty"));
    }
    for (i, bench) in benches.iter().enumerate() {
        let ctx = |field: &str| fail(&format!("bench #{i}: bad or missing '{field}'"));
        bench
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("label"))?;
        bench
            .get("iterations")
            .and_then(Json::as_u64)
            .filter(|&n| n > 0)
            .ok_or_else(|| ctx("iterations"))?;
        let p50 = bench
            .get("p50_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("p50_ns"))?;
        let p99 = bench
            .get("p99_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("p99_ns"))?;
        if p99 < p50 {
            return Err(fail(&format!("bench #{i}: p99_ns < p50_ns")));
        }
        bench
            .get("throughput_per_sec")
            .and_then(Json::as_f64)
            .filter(|&t| t > 0.0)
            .ok_or_else(|| ctx("throughput_per_sec"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse(r#""a\nb\"cA""#).unwrap(),
            Json::Str("a\nb\"cA".to_string())
        );
        let doc = Json::parse(r#"{"xs": [1, 2, {"y": false}], "z": "w"}"#).unwrap();
        let xs = doc.get("xs").and_then(Json::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[2].get("y"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("z").and_then(Json::as_str), Some("w"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse(r#"{"a": 1} trailing"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "label \"with\"\nnewline\tand \\slash";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn validator_accepts_the_schema_and_rejects_drift() {
        let good = r#"{
            "group": "g",
            "benches": [
                {"label": "a", "iterations": 10, "p50_ns": 100,
                 "p99_ns": 200, "throughput_per_sec": 1000.0}
            ]
        }"#;
        validate_bench_report(good).expect("valid report");

        let empty = r#"{"group": "g", "benches": []}"#;
        assert!(validate_bench_report(empty).is_err());

        let missing_field = r#"{
            "group": "g",
            "benches": [{"label": "a", "iterations": 10, "p50_ns": 100}]
        }"#;
        assert!(validate_bench_report(missing_field).is_err());

        let inverted = r#"{
            "group": "g",
            "benches": [
                {"label": "a", "iterations": 10, "p50_ns": 300,
                 "p99_ns": 200, "throughput_per_sec": 1000.0}
            ]
        }"#;
        assert!(validate_bench_report(inverted).is_err());

        assert!(validate_bench_report("not json").is_err());
    }
}
