//! # scout-bench
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! The benchmark harness of the SCOUT reproduction: one binary per table and
//! figure of the paper's evaluation (§VI), plus micro-benchmarks for
//! the core data structures.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig3_object_sharing` | Figure 3 — CDF of EPG pairs per object |
//! | `fig7_suspect_reduction` | Figure 7(a)/(b) — suspect-set reduction γ |
//! | `fig8_switch_model` | Figure 8 — precision/recall on the switch risk model |
//! | `fig9_controller_model` | Figure 9 — precision/recall on the controller risk model |
//! | `fig10_testbed` | Figure 10 — end-to-end accuracy on the testbed |
//! | `scalability` | §VI-B scalability — localization time vs. switch count |
//! | `ablation_changelog` | §IV-C — contribution of SCOUT's change-log stage |
//!
//! The reusable experiment logic lives in [`experiments`] so that the binaries,
//! the integration tests and the micro-benches all exercise the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;

pub use experiments::{
    accuracy_sweep, accuracy_table, gamma_table, object_sharing, scalability, scalability_table,
    sharing_table, suspect_reduction, testbed_accuracy, testbed_suspect_reduction, AccuracyRow,
    AlgoResult, ModelKind, ScalabilityPoint, SharingCdfs,
};

/// Parses a `--flag value` pair from CLI arguments, returning the default when
/// the flag is absent or malformed.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns `true` if the flag is present among the CLI arguments.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_parses_present_flag() {
        let args: Vec<String> = ["--runs", "5", "--setting", "testbed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--runs", 30usize), 5);
        assert_eq!(
            arg_value::<String>(&args, "--setting", "sim".into()),
            "testbed"
        );
        assert_eq!(arg_value(&args, "--seed", 42u64), 42);
        assert!(has_flag(&args, "--runs"));
        assert!(!has_flag(&args, "--full"));
    }

    #[test]
    fn arg_value_falls_back_on_malformed_input() {
        let args: Vec<String> = ["--runs", "not-a-number"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--runs", 30usize), 30);
    }
}
