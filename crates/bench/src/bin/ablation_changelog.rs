//! Ablation study of SCOUT's change-log stage (§IV-C).
//!
//! The paper argues that the "recently-modified object" heuristic is what lets
//! SCOUT recover *partial* object faults that the hit-ratio-1 cover stage (and
//! SCORE) cannot explain. This binary quantifies that claim by comparing full
//! SCOUT, SCOUT with the change-log stage disabled, and SCORE-1.0 on the
//! controller risk model of the cluster policy.
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin ablation_changelog -- --runs 30
//! ```

use scout_bench::arg_value;
use scout_bench::experiments::{accuracy_table, changelog_ablation};
use scout_workload::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let runs: usize = arg_value(&args, "--runs", 30);
    let scale: String = arg_value(&args, "--scale", "paper".to_string());
    let spec = if scale == "small" {
        ClusterSpec::small()
    } else {
        ClusterSpec::paper()
    };

    eprintln!("ablation: change-log stage on/off, {runs} runs per point, {scale} cluster");
    let universe = spec.generate(seed);
    let fault_counts: Vec<usize> = (1..=10).collect();
    let rows = changelog_ablation(&universe, &fault_counts, runs, seed);
    println!(
        "{}",
        accuracy_table(
            "Ablation — SCOUT with and without the change-log stage",
            &rows
        )
    );
}
