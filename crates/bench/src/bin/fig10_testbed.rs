//! Reproduces Figure 10: end-to-end accuracy on the testbed policy.
//!
//! Unlike Figures 8 and 9 (risk-model-level simulation), this experiment runs
//! the full pipeline: the testbed policy is deployed through the fabric
//! simulator, object faults silently remove TCAM rules, the BDD equivalence
//! checker recovers the missing rules, and SCOUT competes against SCORE with
//! threshold 1 on the augmented controller risk model (10 runs per point in
//! the paper).
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin fig10_testbed -- --runs 10
//! ```

use scout_bench::experiments::accuracy_table;
use scout_bench::{arg_value, testbed_accuracy};
use scout_workload::TestbedSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let runs: usize = arg_value(&args, "--runs", 10);

    eprintln!("figure 10: testbed end-to-end accuracy, {runs} runs per point, seed {seed}");
    let fault_counts: Vec<usize> = (1..=10).collect();
    let rows = testbed_accuracy(TestbedSpec::paper(), &fault_counts, runs, seed);
    println!(
        "{}",
        accuracy_table("Figure 10 — end-to-end accuracy on the testbed", &rows)
    );
}
