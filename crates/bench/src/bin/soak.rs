//! The long-horizon soak run: a multi-epoch fault timeline with online
//! repair, analyzed incrementally and differentially checked against
//! from-scratch analysis.
//!
//! Drives `--epochs` epochs of overlapping fault injections, repairs and
//! concurrent policy edits over one continuously-monitored fabric, prints the
//! lifecycle report and the per-epoch timeline, and — unless `--no-golden` is
//! given — asserts:
//!
//! * **oracle agreement** — the incremental report is bit-identical to a
//!   from-scratch analysis at every checked epoch;
//! * **determinism** — a second run with the same seed produces an identical
//!   timeline;
//! * **observable repairs** — at least one repaired fault demonstrably left
//!   the report (`repair_clearances > 0`).
//!
//! ```text
//! cargo run --release -p scout-bench --bin soak -- --epochs 200 --seed 42
//! ```

use scout_bench::{arg_value, has_flag};
use scout_core::EngineConfig;
use scout_sim::{OracleCadence, Timeline, WorkloadKind};
use scout_workload::{ClusterSpec, ScaleSpec, TestbedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let epochs = arg_value(&args, "--epochs", 200usize);
    let seed = arg_value(&args, "--seed", 42u64);
    let stride = arg_value(&args, "--oracle-stride", 1usize);
    let workload_name: String = arg_value(&args, "--workload", "testbed".to_string());
    let golden = !has_flag(&args, "--no-golden");

    let workload = match workload_name.as_str() {
        "cluster" => WorkloadKind::Cluster(ClusterSpec::small()),
        "cluster-paper" => WorkloadKind::Cluster(ClusterSpec::paper()),
        "testbed" => WorkloadKind::Testbed(TestbedSpec::paper()),
        "scale" => WorkloadKind::Scale(ScaleSpec::with_switches(32)),
        other => {
            eprintln!("unknown workload {other:?}; use cluster, cluster-paper, testbed or scale");
            std::process::exit(2);
        }
    };
    let oracle = if stride <= 1 {
        OracleCadence::EveryEpoch
    } else {
        OracleCadence::Stride(stride)
    };
    let timeline = Timeline {
        engine: EngineConfig {
            oracle,
            ..EngineConfig::default()
        },
        ..Timeline::new(workload, epochs, seed)
    };

    println!(
        "soak: {epochs} epochs on {workload_name}, seed {seed}, oracle {:?}",
        timeline.engine.oracle
    );
    let run = timeline.run();
    let report = run.outcome.report();
    println!("\n{}", report.table());
    println!("{}", report.timeline_table(64));
    let inc = run.incremental_cost.summary();
    let scratch = run.scratch_cost.summary();
    println!("wall time: {:?}", run.elapsed);
    println!(
        "epoch analysis cost: incremental mean {:.1} µs, from-scratch mean {:.1} µs ({:.1}x)",
        inc.mean / 1e3,
        scratch.mean / 1e3,
        scratch.mean / inc.mean.max(1.0),
    );

    if !golden {
        return;
    }

    let disagreements = run.outcome.oracle_disagreements();
    assert!(
        disagreements.is_empty(),
        "differential oracle disagreed at epochs {disagreements:?}"
    );
    assert!(
        report.oracle_epochs > 0,
        "the golden soak must actually run the oracle"
    );
    println!(
        "oracle: {} epochs checked, all bit-identical ✓",
        report.oracle_epochs
    );

    let rerun = timeline.run();
    assert_eq!(
        rerun.outcome, run.outcome,
        "same seed must reproduce the same timeline"
    );
    println!("determinism: second run identical ✓");

    assert!(
        report.repair_clearances > 0,
        "no repair visibly cleared a localized object — the lifecycle is not \
         being exercised"
    );
    println!(
        "repairs: {} clearances observed across {} healed faults ✓",
        report.repair_clearances, report.healed_faults
    );
}
