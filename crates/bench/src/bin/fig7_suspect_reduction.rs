//! Reproduces Figure 7: the suspect-set reduction ratio γ (hypothesis size
//! over the number of objects the failed EPG pairs depend on), binned by the
//! suspect-set size.
//!
//! * `--setting simulation` (default) — Figure 7(b): single object faults
//!   injected at the risk-model level over the cluster policy (paper: 1,500
//!   faults; default here 300, use `--faults 1500` for the full count).
//! * `--setting testbed` — Figure 7(a): faults injected into the deployed
//!   testbed fabric and detected through the full pipeline (paper: 200 faults).
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin fig7_suspect_reduction -- --setting simulation --faults 300
//! ```

use scout_bench::experiments::gamma_table;
use scout_bench::{arg_value, suspect_reduction, testbed_suspect_reduction};
use scout_workload::{ClusterSpec, TestbedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let setting: String = arg_value(&args, "--setting", "simulation".to_string());
    let scale: String = arg_value(&args, "--scale", "paper".to_string());

    if setting == "testbed" {
        let faults: usize = arg_value(&args, "--faults", 200);
        eprintln!("figure 7(a): {faults} single faults on the testbed policy, seed {seed}");
        let bins = testbed_suspect_reduction(
            TestbedSpec::paper(),
            faults,
            &[(1.0, 10.0), (10.0, 20.0), (20.0, 40.0), (40.0, 60.0)],
            seed,
        );
        println!(
            "{}",
            gamma_table("Figure 7(a) — suspect set reduction (testbed)", &bins)
        );
    } else {
        let faults: usize = arg_value(&args, "--faults", 300);
        let spec = if scale == "small" {
            ClusterSpec::small()
        } else {
            ClusterSpec::paper()
        };
        eprintln!("figure 7(b): {faults} single faults on the {scale} cluster policy, seed {seed}");
        let universe = spec.generate(seed);
        let bins = suspect_reduction(
            &universe,
            faults,
            &[
                (1.0, 10.0),
                (10.0, 50.0),
                (50.0, 100.0),
                (100.0, 500.0),
                (500.0, 1000.0),
            ],
            seed,
        );
        println!(
            "{}",
            gamma_table("Figure 7(b) — suspect set reduction (simulation)", &bins)
        );
    }
}
