//! Reproduces Figure 8: precision and recall of fault localization on the
//! **switch risk model**, with 1..10 simultaneous faulty objects, comparing
//! SCOUT against SCORE with error thresholds 0.6 and 1.0 (averaged over 30
//! runs in the paper).
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin fig8_switch_model -- --runs 30 --scale paper
//! ```

use scout_bench::experiments::accuracy_table;
use scout_bench::{accuracy_sweep, arg_value, ModelKind};
use scout_workload::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let runs: usize = arg_value(&args, "--runs", 30);
    let scale: String = arg_value(&args, "--scale", "paper".to_string());
    let spec = if scale == "small" {
        ClusterSpec::small()
    } else {
        ClusterSpec::paper()
    };

    eprintln!("figure 8: switch risk model, {runs} runs per point, {scale} cluster, seed {seed}");
    let universe = spec.generate(seed);
    let fault_counts: Vec<usize> = (1..=10).collect();
    let rows = accuracy_sweep(
        &universe,
        ModelKind::Switch,
        &fault_counts,
        runs,
        seed,
        &[0.6, 1.0],
    );
    println!(
        "{}",
        accuracy_table(
            "Figure 8 — fault localization on the switch risk model",
            &rows
        )
    );
}
