//! The hostile-telemetry sweep: SCOUT under lying, lossy, and torn inputs,
//! as one seeded, parallel, self-checking run.
//!
//! Drives `--per-class` scenarios of each of the five hostile classes
//! (lossy probe, torn sync, flapping, gray failure, missing logs) through
//! the full pipeline on the chosen workload, prints the per-class accuracy
//! and rank-quality table, and — unless `--no-golden` is given — asserts:
//!
//! * **determinism** — a second run with the same seed produces an identical
//!   aggregate report;
//! * **recovery** — the lossy-probe class needed (and survived) at least one
//!   full resync;
//! * **golden accuracy** — with ≥100 scenarios per class, SCOUT's recall
//!   meets or beats SCORE-1.0 in every class, and the missing-logs class
//!   places the true root cause in the top-3 of the ranked partial
//!   diagnosis in at least 70% of the faulty scenarios.
//!
//! ```text
//! cargo run --release -p scout-bench --bin hostile -- --per-class 100
//! ```

use std::time::Instant;

use scout_bench::{arg_value, has_flag};
use scout_sim::{Concurrency, HostileCampaign, HostileKind, WorkloadKind};
use scout_workload::{ClusterSpec, TestbedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_class = arg_value(&args, "--per-class", 100usize);
    let seed = arg_value(&args, "--seed", 42u64);
    let max_faults = arg_value(&args, "--max-faults", 3usize);
    let threads = arg_value(&args, "--threads", 0usize);
    let workload_name: String = arg_value(&args, "--workload", "testbed".to_string());
    let golden = !has_flag(&args, "--no-golden");

    let workload = match workload_name.as_str() {
        "cluster" => WorkloadKind::Cluster(ClusterSpec::small()),
        "testbed" => WorkloadKind::Testbed(TestbedSpec::paper()),
        other => {
            eprintln!("unknown workload {other:?}; use cluster or testbed");
            std::process::exit(2);
        }
    };
    let concurrency = match threads {
        0 => Concurrency::Auto,
        1 => Concurrency::Sequential,
        n => Concurrency::Threads(n),
    };
    let campaign = HostileCampaign {
        max_faults,
        concurrency,
        ..HostileCampaign::new(workload, per_class, seed)
    };

    println!(
        "hostile: {per_class} scenarios/class on {workload_name}, seed {seed}, \
         max {max_faults} faults, {concurrency:?}"
    );
    let start = Instant::now();
    let run = campaign.run();
    let wall = start.elapsed();
    let report = run.report();
    println!("\n{}", report.table());
    println!("wall time: {wall:?}");

    if !golden {
        return;
    }

    // Determinism: the same seed reproduces the aggregate bit for bit.
    let rerun = campaign.run().report();
    assert_eq!(rerun, report, "same seed must reproduce the same report");
    println!("determinism: second run identical ✓");

    // Recovery: losses occurred and every one was survived via resync.
    let lossy = report
        .class(HostileKind::LossyProbe)
        .expect("the lossy class ran");
    assert!(lossy.disturbed > 0, "the transport must disturb batches");
    assert!(lossy.resyncs > 0, "lost batches must force full resyncs");
    println!(
        "recovery: {} disturbed batches, {} resyncs survived ✓",
        lossy.disturbed, lossy.resyncs
    );

    // Golden accuracy thresholds (≥100 scenarios/class keeps the means
    // statistical; calibrated with margin on the testbed workload).
    if per_class >= 100 && workload_name == "testbed" {
        for kind in HostileKind::ALL {
            let stats = report.class(kind).expect("every class ran");
            let scout = stats.recall.mean;
            let score = stats.score_recall.mean;
            assert!(
                scout >= score,
                "{kind}: SCOUT recall {scout:.3} below SCORE's {score:.3}"
            );
        }
        let missing = report
            .class(HostileKind::MissingLogs)
            .expect("the missing-logs class ran");
        assert_eq!(
            missing.ranked_nonempty, missing.faulty,
            "wiped logs must still yield a ranked diagnosis"
        );
        let top3 = missing.rank.top3_rate();
        assert!(top3 >= 0.70, "missing-logs top-3 rate {top3:.3} below 0.70");
        println!(
            "golden thresholds: SCOUT ≥ SCORE in all classes, \
             missing-logs top-3 {top3:.3} ✓"
        );
    } else {
        println!("golden thresholds skipped ({per_class} scenarios/class < 100 or uncalibrated workload)");
    }
}
