//! The fault-campaign sweep: the paper's accuracy evaluation (§VI) as one
//! seeded, parallel, self-checking run.
//!
//! Drives `--scenarios` randomized disturbances (object faults, physical
//! faults, churn, concurrent updates) through the full SCOUT pipeline on the
//! chosen workload, prints the per-kind and headline accuracy tables, and —
//! unless `--no-golden` is given — asserts:
//!
//! * **determinism** — a second run with the same seed produces an identical
//!   aggregate report;
//! * **mode equivalence** — the incremental (baseline-reusing) analysis is
//!   bit-identical to from-scratch rebuilds, scenario by scenario;
//! * **golden accuracy** — SCOUT's precision/recall on object faults and its
//!   recall lead over SCORE-1.0 on partial faults stay above the committed
//!   thresholds (the claims of the paper's Figures 7–9).
//!
//! ```text
//! cargo run --release -p scout-bench --bin campaign -- --scenarios 200
//! ```

use std::time::Instant;

use scout_bench::{arg_value, has_flag};
use scout_sim::{AnalysisMode, Campaign, Concurrency, WorkloadKind};
use scout_workload::{ClusterSpec, ScaleSpec, TestbedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenarios = arg_value(&args, "--scenarios", 200usize);
    let seed = arg_value(&args, "--seed", 42u64);
    let max_faults = arg_value(&args, "--max-faults", 3usize);
    let threads = arg_value(&args, "--threads", 0usize);
    let workload_name: String = arg_value(&args, "--workload", "cluster".to_string());
    let golden = !has_flag(&args, "--no-golden");

    let workload = match workload_name.as_str() {
        "cluster" => WorkloadKind::Cluster(ClusterSpec::small()),
        "cluster-paper" => WorkloadKind::Cluster(ClusterSpec::paper()),
        "testbed" => WorkloadKind::Testbed(TestbedSpec::paper()),
        "scale" => WorkloadKind::Scale(ScaleSpec::with_switches(32)),
        other => {
            eprintln!("unknown workload {other:?}; use cluster, cluster-paper, testbed or scale");
            std::process::exit(2);
        }
    };
    let concurrency = match threads {
        0 => Concurrency::Auto,
        1 => Concurrency::Sequential,
        n => Concurrency::Threads(n),
    };
    let campaign = Campaign {
        max_faults,
        concurrency,
        ..Campaign::new(workload, scenarios, seed)
    };

    println!(
        "campaign: {scenarios} scenarios on {workload_name}, seed {seed}, \
         max {max_faults} faults, {concurrency:?}"
    );
    let start = Instant::now();
    let run = campaign.run();
    let incremental_wall = start.elapsed();
    let report = run.report();
    println!("\n{}", report.table());
    println!("{}", report.headline_table());
    println!("incremental analysis wall time: {incremental_wall:?}");

    if !golden {
        return;
    }

    // Determinism: the same seed reproduces the aggregate bit for bit.
    let rerun = campaign.run().report();
    assert_eq!(rerun, report, "same seed must reproduce the same report");
    println!("determinism: second run identical ✓");

    // Mode equivalence: from-scratch rebuilds agree scenario by scenario.
    let start = Instant::now();
    let scratch = Campaign {
        analysis: AnalysisMode::FromScratch,
        ..campaign
    }
    .run();
    let scratch_wall = start.elapsed();
    assert_eq!(
        scratch.outcomes, run.outcomes,
        "incremental and from-scratch analyses must agree bit for bit"
    );
    println!(
        "mode equivalence: from-scratch identical ✓ (wall {scratch_wall:?}, \
         incremental {incremental_wall:?})"
    );

    // Golden accuracy thresholds: calibrated (with margin) on the cluster and
    // testbed workloads only — the scale workload replicates its policy per
    // switch, so SCORE is not structurally blind to partial faults there and
    // the recall-gap claim does not apply. ≥100 scenarios keeps the means
    // statistical.
    let calibrated = matches!(
        workload_name.as_str(),
        "cluster" | "cluster-paper" | "testbed"
    );
    if !calibrated {
        println!("golden thresholds skipped (not calibrated for {workload_name:?})");
    } else if scenarios >= 100 {
        let p = report.object_precision.mean;
        let r = report.object_recall.mean;
        let pr = report.partial_recall.mean;
        let sr = report.score_partial_recall.mean;
        assert!(p >= 0.75, "SCOUT object-fault precision {p:.3} below 0.75");
        assert!(r >= 0.85, "SCOUT object-fault recall {r:.3} below 0.85");
        assert!(pr >= 0.85, "SCOUT partial-fault recall {pr:.3} below 0.85");
        assert!(
            pr >= sr + 0.1,
            "SCOUT partial-fault recall {pr:.3} must clearly beat SCORE's {sr:.3}"
        );
        if !report.gamma.is_empty() {
            let g = report.gamma.summary().mean;
            assert!(
                g > 0.0 && g <= 0.5,
                "mean γ {g:.3} out of the expected band"
            );
        }
        println!("golden thresholds: P={p:.3} R={r:.3} partial R={pr:.3} (SCORE {sr:.3}) ✓");
    } else {
        println!("golden thresholds skipped ({scenarios} scenarios < 100)");
    }
}
