//! Reproduces the §VI-B scalability measurement: SCOUT running time on the
//! controller risk model as the fabric grows from 10 to 500 leaf switches
//! (the paper reports ≈45 s at 200 switches and ≈130 s at 500 switches for its
//! Python prototype on a 4-core 2.6 GHz machine; only the growth shape is
//! expected to match).
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin scalability -- --faults 10
//! ```

use scout_bench::experiments::scalability_table;
use scout_bench::{arg_value, has_flag, scalability};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let faults: usize = arg_value(&args, "--faults", 10);
    let quick = has_flag(&args, "--quick");

    let switch_counts: Vec<usize> = if quick {
        vec![10, 50, 100]
    } else {
        vec![10, 50, 100, 200, 300, 400, 500]
    };
    eprintln!(
        "scalability: switch counts {:?}, {faults} injected faults, seed {seed}",
        switch_counts
    );
    let points = scalability(&switch_counts, faults, seed);
    println!("{}", scalability_table(&points));
}
