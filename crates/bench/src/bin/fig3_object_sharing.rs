//! Reproduces Figure 3: the CDF of the number of EPG pairs per policy object
//! (switches, VRFs, EPGs, filters, contracts) on the production-cluster-like
//! policy.
//!
//! Usage:
//! ```text
//! cargo run --release -p scout-bench --bin fig3_object_sharing [-- --scale small --seed 1]
//! ```

use scout_bench::{arg_value, object_sharing, sharing_table};
use scout_workload::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed", 1);
    let scale: String = arg_value(&args, "--scale", "paper".to_string());
    let spec = if scale == "small" {
        ClusterSpec::small()
    } else {
        ClusterSpec::paper()
    };

    eprintln!(
        "generating {scale} cluster policy (vrfs={}, epgs={}, contracts={}, filters={}, switches={}) with seed {seed} ...",
        spec.vrfs, spec.epgs, spec.contracts, spec.filters, spec.switches
    );
    let universe = spec.generate(seed);
    let stats = universe.stats();
    eprintln!(
        "generated: {} EPG pairs, {} endpoints, {} bindings",
        stats.epg_pairs, stats.endpoints, stats.bindings
    );

    let cdfs = object_sharing(&universe);
    println!("{}", sharing_table(&cdfs));

    println!("# Full CDF points (value = #EPG pairs per object, fraction of objects <= value)");
    for (class, cdf) in &cdfs.per_class {
        let points = cdf.points();
        let sampled: Vec<String> = points
            .iter()
            .step_by((points.len() / 12).max(1))
            .map(|(v, f)| format!("({v:.0}, {f:.2})"))
            .collect();
        println!("{class}: {}", sampled.join(" "));
    }
}
