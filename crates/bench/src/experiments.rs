//! Reusable experiment implementations for every table and figure of §VI.
//!
//! Each experiment follows the paper's methodology:
//!
//! * **Figure 3** — [`object_sharing`] computes the CDF of the number of EPG
//!   pairs per object, per object class, over a cluster-like policy.
//! * **Figure 7** — [`suspect_reduction`] / [`testbed_suspect_reduction`]
//!   inject one object fault at a time and report γ (hypothesis size over the
//!   suspect-set size), binned by the suspect-set size.
//! * **Figures 8 & 9** — [`accuracy_sweep`] injects 1..10 simultaneous object
//!   faults and measures precision/recall of SCOUT against SCORE with two
//!   thresholds, on the switch or controller risk model. The faults are
//!   synthesized directly at the risk-model level (see
//!   `scout_faults::model_faults` for why this is equivalent to deploying and
//!   checking the policy end to end).
//! * **Figure 10** — [`testbed_accuracy`] runs the *full* pipeline (deploy,
//!   silently break TCAM state, BDD equivalence check, localization) on the
//!   testbed policy.
//! * **Scalability** — [`scalability`] measures controller-risk-model
//!   construction and SCOUT localization time as the fabric grows from 10 to
//!   500 leaf switches.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use scout_core::{
    augment_controller_model, controller_risk_model, score_localize, scout_localize,
    switch_risk_model, RiskModel, ScoutConfig, ScoutEngine,
};
use scout_fabric::Fabric;
use scout_faults::{
    synthesize_object_faults, synthetic_change_log, FaultInjector, SyntheticFaults,
};
use scout_metrics::{fmt3, gamma, Accuracy, Bins, Cdf, Summary, Table};
use scout_policy::{EpgPair, ObjectClass, ObjectId, PolicyUniverse, SwitchId};
use scout_workload::{ScaleSpec, TestbedSpec};

// ---------------------------------------------------------------------------
// Figure 3: object sharing
// ---------------------------------------------------------------------------

/// Per-object-class CDFs of the number of EPG pairs sharing an object.
#[derive(Debug, Clone)]
pub struct SharingCdfs {
    /// CDF of pairs-per-object, keyed by object class.
    pub per_class: BTreeMap<ObjectClass, Cdf>,
}

/// Computes the Figure 3 data for a policy: for every object (switches, VRFs,
/// EPGs, filters, contracts) the number of EPG pairs that depend on it, grouped
/// by object class.
pub fn object_sharing(universe: &PolicyUniverse) -> SharingCdfs {
    let mut samples: BTreeMap<ObjectClass, Vec<f64>> = BTreeMap::new();
    for (object, pairs) in universe.pairs_per_object() {
        samples
            .entry(object.class())
            .or_default()
            .push(pairs.len() as f64);
    }
    SharingCdfs {
        per_class: samples
            .into_iter()
            .map(|(class, values)| (class, Cdf::of(values)))
            .collect(),
    }
}

/// Renders the Figure 3 CDFs as a table: for each class, the fraction of
/// objects shared by at most 1, 10, 100, 1,000 and 10,000 EPG pairs.
pub fn sharing_table(cdfs: &SharingCdfs) -> Table {
    let thresholds = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];
    let mut table = Table::new(
        "Figure 3 — CDF of #EPG pairs per object (fraction of objects <= threshold)",
        &[
            "class", "objects", "<=1", "<=10", "<=100", "<=1k", "<=10k", "p50", "max",
        ],
    );
    for (class, cdf) in &cdfs.per_class {
        let mut cells = vec![class.to_string(), cdf.len().to_string()];
        for t in thresholds {
            cells.push(fmt3(cdf.fraction_le(t)));
        }
        cells.push(format!("{:.0}", cdf.quantile(0.5)));
        cells.push(format!("{:.0}", cdf.quantile(1.0)));
        table.row(cells);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 8, 9, 10: accuracy sweeps
// ---------------------------------------------------------------------------

/// Which risk model the accuracy experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A single switch's risk model (Figure 8): the injected objects fail to be
    /// deployed on one randomly chosen switch and localization runs on that
    /// switch's model, mirroring the paper's switch-level setting.
    Switch,
    /// The global controller risk model with faults spread across switches
    /// (Figure 9).
    Controller,
}

/// Aggregated accuracy of one algorithm at one fault count.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Algorithm label, e.g. `"SCOUT"` or `"SCORE-0.6"`.
    pub name: String,
    /// Precision over the repetitions.
    pub precision: Summary,
    /// Recall over the repetitions.
    pub recall: Summary,
}

/// One row of an accuracy figure: a fault count and the per-algorithm results.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Number of simultaneously injected faults.
    pub faults: usize,
    /// Per-algorithm aggregated accuracy.
    pub algos: Vec<AlgoResult>,
}

/// Renders accuracy rows as a table (one line per fault count).
pub fn accuracy_table(title: &str, rows: &[AccuracyRow]) -> Table {
    let mut headers: Vec<String> = vec!["faults".to_string()];
    if let Some(first) = rows.first() {
        for algo in &first.algos {
            headers.push(format!("{} precision", algo.name));
            headers.push(format!("{} recall", algo.name));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    for row in rows {
        let mut cells = vec![row.faults.to_string()];
        for algo in &row.algos {
            cells.push(fmt3(algo.precision.mean));
            cells.push(fmt3(algo.recall.mean));
        }
        table.row(cells);
    }
    table
}

fn mix_seed(base: u64, faults: usize, run: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((faults as u64) << 32)
        .wrapping_add(run as u64)
}

/// Runs the model-level accuracy experiment of Figures 8 and 9.
///
/// For every fault count in `fault_counts`, `runs` independent repetitions are
/// executed: distinct faulty objects are drawn, full/partial faults are
/// synthesized onto the chosen risk model, and SCOUT plus one SCORE instance
/// per threshold in `score_thresholds` are evaluated against the ground truth.
pub fn accuracy_sweep(
    universe: &PolicyUniverse,
    kind: ModelKind,
    fault_counts: &[usize],
    runs: usize,
    base_seed: u64,
    score_thresholds: &[f64],
) -> Vec<AccuracyRow> {
    // Base (un-augmented) models are built once and cloned per repetition.
    let base_controller = controller_risk_model(universe);
    let base_switch: BTreeMap<SwitchId, RiskModel<EpgPair>> = match kind {
        ModelKind::Switch => universe
            .switch_ids()
            .into_iter()
            .map(|s| (s, switch_risk_model(universe, s)))
            .collect(),
        ModelKind::Controller => BTreeMap::new(),
    };

    let mut rows = Vec::new();
    for &faults in fault_counts {
        let mut per_algo: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, faults, run));
            let (injected, model_switch) = match kind {
                ModelKind::Controller => {
                    (synthesize_object_faults(universe, faults, &mut rng), None)
                }
                ModelKind::Switch => {
                    let switch = pick_switch_with_candidates(universe, faults, &mut rng);
                    (
                        scout_faults::synthesize_switch_scoped_faults(
                            universe, switch, faults, &mut rng,
                        ),
                        Some(switch),
                    )
                }
            };
            let change_log = synthetic_change_log(universe, &injected);
            let truth = injected.objects.clone();

            let outcomes: Vec<(String, BTreeSet<ObjectId>)> = match kind {
                ModelKind::Controller => {
                    controller_outcomes(&base_controller, &injected, &change_log, score_thresholds)
                }
                ModelKind::Switch => switch_outcomes(
                    &base_switch,
                    model_switch.expect("switch chosen for the switch-model experiment"),
                    &injected,
                    &change_log,
                    score_thresholds,
                ),
            };
            for (name, hypothesis) in outcomes {
                let acc = Accuracy::of(&truth, &hypothesis);
                let entry = per_algo.entry(name).or_default();
                entry.0.push(acc.precision);
                entry.1.push(acc.recall);
            }
        }
        let algos = algo_order(score_thresholds)
            .into_iter()
            .filter_map(|name| {
                per_algo.get(&name).map(|(p, r)| AlgoResult {
                    name: name.clone(),
                    precision: Summary::of(p.iter().copied()),
                    recall: Summary::of(r.iter().copied()),
                })
            })
            .collect();
        rows.push(AccuracyRow { faults, algos });
    }
    rows
}

fn algo_order(score_thresholds: &[f64]) -> Vec<String> {
    let mut names = vec!["SCOUT".to_string()];
    for &t in score_thresholds {
        names.push(format!("SCORE-{t}"));
    }
    names
}

fn controller_outcomes(
    base: &RiskModel<scout_policy::SwitchEpgPair>,
    injected: &SyntheticFaults,
    change_log: &scout_fabric::ChangeLog,
    score_thresholds: &[f64],
) -> Vec<(String, BTreeSet<ObjectId>)> {
    let mut model = base.clone();
    injected.apply_to_controller_model(&mut model);
    let mut outcomes = Vec::new();
    let scout = scout_localize(&model, change_log, ScoutConfig::default());
    outcomes.push(("SCOUT".to_string(), scout.objects()));
    for &t in score_thresholds {
        let score = score_localize(&model, t);
        outcomes.push((format!("SCORE-{t}"), score.objects()));
    }
    outcomes
}

/// Picks a switch with at least `faults` candidate objects (falling back to
/// the switch with the most candidates if none has enough).
fn pick_switch_with_candidates<R: rand::Rng>(
    universe: &PolicyUniverse,
    faults: usize,
    rng: &mut R,
) -> SwitchId {
    use rand::seq::SliceRandom;
    let mut switches = universe.switch_ids();
    switches.shuffle(rng);
    let mut best = switches[0];
    let mut best_count = 0;
    for switch in switches {
        let count = scout_faults::candidate_objects_on_switch(universe, switch).len();
        if count >= faults.max(1) * 2 {
            return switch;
        }
        if count > best_count {
            best_count = count;
            best = switch;
        }
    }
    best
}

fn switch_outcomes(
    base: &BTreeMap<SwitchId, RiskModel<EpgPair>>,
    switch: SwitchId,
    injected: &SyntheticFaults,
    change_log: &scout_fabric::ChangeLog,
    score_thresholds: &[f64],
) -> Vec<(String, BTreeSet<ObjectId>)> {
    let mut model = base.get(&switch).cloned().unwrap_or_else(RiskModel::new);
    injected.apply_to_switch_model(&mut model, switch);
    let mut outcomes = Vec::new();
    let scout = scout_localize(&model, change_log, ScoutConfig::default());
    outcomes.push(("SCOUT".to_string(), scout.objects()));
    for &t in score_thresholds {
        let score = score_localize(&model, t);
        outcomes.push((format!("SCORE-{t}"), score.objects()));
    }
    outcomes
}

/// Runs the end-to-end testbed accuracy experiment of Figure 10: the testbed
/// policy is deployed through the fabric simulator, object faults are injected
/// by silently removing TCAM rules, and the full SCOUT pipeline (BDD
/// equivalence check, controller risk model, localization) competes against
/// SCORE with threshold 1.
pub fn testbed_accuracy(
    spec: TestbedSpec,
    fault_counts: &[usize],
    runs: usize,
    base_seed: u64,
) -> Vec<AccuracyRow> {
    let universe = spec.generate(base_seed);
    let mut base_fabric = Fabric::new(universe);
    base_fabric.deploy();
    let engine = ScoutEngine::new();

    let mut rows = Vec::new();
    for &faults in fault_counts {
        let mut scout_p = Vec::new();
        let mut scout_r = Vec::new();
        let mut score_p = Vec::new();
        let mut score_r = Vec::new();
        for run in 0..runs {
            let mut fabric = base_fabric.clone();
            let mut injector =
                FaultInjector::new(StdRng::seed_from_u64(mix_seed(base_seed, faults, run)));
            let truth = injector.inject_object_faults(&mut fabric, faults).objects();

            let report = engine.analyze(&fabric);
            let scout_acc = Accuracy::of(&truth, &report.hypothesis.objects());
            scout_p.push(scout_acc.precision);
            scout_r.push(scout_acc.recall);

            // SCORE baseline on the same augmented controller risk model.
            let mut model = controller_risk_model(fabric.universe());
            augment_controller_model(&mut model, report.check.missing_rules());
            let score = score_localize(&model, 1.0);
            let score_acc = Accuracy::of(&truth, &score.objects());
            score_p.push(score_acc.precision);
            score_r.push(score_acc.recall);
        }
        rows.push(AccuracyRow {
            faults,
            algos: vec![
                AlgoResult {
                    name: "SCOUT".to_string(),
                    precision: Summary::of(scout_p),
                    recall: Summary::of(scout_r),
                },
                AlgoResult {
                    name: "SCORE-1".to_string(),
                    precision: Summary::of(score_p),
                    recall: Summary::of(score_r),
                },
            ],
        });
    }
    rows
}

/// Ablation of the SCOUT change-log stage (§IV-C claims the heuristic "makes a
/// huge improvement in accuracy"): compares full SCOUT, SCOUT with the
/// change-log stage disabled (an empty change log, so stage 2 never fires) and
/// SCORE-1.0 on the controller risk model.
pub fn changelog_ablation(
    universe: &PolicyUniverse,
    fault_counts: &[usize],
    runs: usize,
    base_seed: u64,
) -> Vec<AccuracyRow> {
    let base = controller_risk_model(universe);
    let empty_log = scout_fabric::ChangeLog::new();
    let mut rows = Vec::new();
    for &faults in fault_counts {
        let mut collect: BTreeMap<&'static str, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, faults, run));
            let injected = synthesize_object_faults(universe, faults, &mut rng);
            let change_log = synthetic_change_log(universe, &injected);
            let truth = injected.objects.clone();
            let mut model = base.clone();
            injected.apply_to_controller_model(&mut model);

            let variants: [(&'static str, BTreeSet<ObjectId>); 3] = [
                (
                    "SCOUT",
                    scout_localize(&model, &change_log, ScoutConfig::default()).objects(),
                ),
                (
                    "SCOUT-no-changelog",
                    scout_localize(&model, &empty_log, ScoutConfig::default()).objects(),
                ),
                ("SCORE-1.0", score_localize(&model, 1.0).objects()),
            ];
            for (name, hypothesis) in variants {
                let acc = Accuracy::of(&truth, &hypothesis);
                let entry = collect.entry(name).or_default();
                entry.0.push(acc.precision);
                entry.1.push(acc.recall);
            }
        }
        let algos = ["SCOUT", "SCOUT-no-changelog", "SCORE-1.0"]
            .into_iter()
            .map(|name| {
                let (p, r) = &collect[name];
                AlgoResult {
                    name: name.to_string(),
                    precision: Summary::of(p.iter().copied()),
                    recall: Summary::of(r.iter().copied()),
                }
            })
            .collect();
        rows.push(AccuracyRow { faults, algos });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7: suspect-set reduction
// ---------------------------------------------------------------------------

/// Renders a γ-by-bin table (Figure 7).
pub fn gamma_table(title: &str, bins: &Bins) -> Table {
    let mut table = Table::new(title, &["#suspect objects", "faults", "mean γ", "max γ"]);
    for (edge, summary) in bins.edges().iter().zip(bins.summaries()) {
        table.row([
            format!("{:.0}-{:.0}", edge.0, edge.1),
            summary.count.to_string(),
            fmt3(summary.mean),
            fmt3(summary.max),
        ]);
    }
    table
}

/// The Figure 7(b) simulation experiment: injects `num_faults` single object
/// faults (one at a time) at the risk-model level, runs SCOUT and records
/// γ = |hypothesis| / |suspect set|, binned by the suspect-set size.
pub fn suspect_reduction(
    universe: &PolicyUniverse,
    num_faults: usize,
    bin_edges: &[(f64, f64)],
    base_seed: u64,
) -> Bins {
    let base = controller_risk_model(universe);
    let mut bins = Bins::new(bin_edges);
    for i in 0..num_faults {
        let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, 1, i));
        let injected = synthesize_object_faults(universe, 1, &mut rng);
        if injected.is_empty() {
            continue;
        }
        let change_log = synthetic_change_log(universe, &injected);
        let mut model = base.clone();
        injected.apply_to_controller_model(&mut model);
        let signature = model.failure_signature();
        let suspects = model.suspect_set(&signature);
        let hypothesis = scout_localize(&model, &change_log, ScoutConfig::default());
        bins.add(
            suspects.len() as f64,
            gamma(hypothesis.len(), suspects.len()),
        );
    }
    bins
}

/// The Figure 7(a) testbed experiment: same measurement, but each fault is
/// injected into a deployed fabric and detected through the full pipeline.
pub fn testbed_suspect_reduction(
    spec: TestbedSpec,
    num_faults: usize,
    bin_edges: &[(f64, f64)],
    base_seed: u64,
) -> Bins {
    let universe = spec.generate(base_seed);
    let mut base_fabric = Fabric::new(universe);
    base_fabric.deploy();
    let engine = ScoutEngine::new();

    let mut bins = Bins::new(bin_edges);
    for i in 0..num_faults {
        let mut fabric = base_fabric.clone();
        let mut injector = FaultInjector::new(StdRng::seed_from_u64(mix_seed(base_seed, 1, i)));
        let truth = injector.inject_object_faults(&mut fabric, 1);
        if truth.is_empty() {
            continue;
        }
        let report = engine.analyze(&fabric);
        bins.add(report.suspect_objects.len() as f64, report.gamma());
    }
    bins
}

// ---------------------------------------------------------------------------
// Scalability
// ---------------------------------------------------------------------------

/// One measurement of the scalability experiment.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityPoint {
    /// Number of leaf switches in the generated fabric.
    pub switches: usize,
    /// Number of `(switch, EPG pair)` elements in the controller risk model.
    pub elements: usize,
    /// Number of shared risks in the model.
    pub risks: usize,
    /// Time to build the controller risk model.
    pub build_time: Duration,
    /// Time to run SCOUT on the augmented model.
    pub localize_time: Duration,
}

/// Renders the scalability points as a table.
pub fn scalability_table(points: &[ScalabilityPoint]) -> Table {
    let mut table = Table::new(
        "Scalability — controller risk model localization time vs. fabric size",
        &[
            "switches",
            "elements",
            "risks",
            "build (ms)",
            "localize (ms)",
        ],
    );
    for p in points {
        table.row([
            p.switches.to_string(),
            p.elements.to_string(),
            p.risks.to_string(),
            format!("{:.1}", p.build_time.as_secs_f64() * 1e3),
            format!("{:.1}", p.localize_time.as_secs_f64() * 1e3),
        ]);
    }
    table
}

/// The §VI-B scalability experiment: for each switch count, generate the
/// scaled policy, build the controller risk model, inject `faults` object
/// faults and measure the SCOUT localization time.
pub fn scalability(
    switch_counts: &[usize],
    faults: usize,
    base_seed: u64,
) -> Vec<ScalabilityPoint> {
    let mut points = Vec::new();
    for &switches in switch_counts {
        let universe = ScaleSpec::with_switches(switches).generate(base_seed);

        let build_start = Instant::now();
        let base = controller_risk_model(&universe);
        let build_time = build_start.elapsed();

        let mut rng = StdRng::seed_from_u64(mix_seed(base_seed, faults, switches));
        let injected = synthesize_object_faults(&universe, faults, &mut rng);
        let change_log = synthetic_change_log(&universe, &injected);
        let mut model = base.clone();
        injected.apply_to_controller_model(&mut model);

        let localize_start = Instant::now();
        let hypothesis = scout_localize(&model, &change_log, ScoutConfig::default());
        let localize_time = localize_start.elapsed();
        // The hypothesis is intentionally unused beyond making sure the work is
        // not optimized away.
        std::hint::black_box(hypothesis.len());

        points.push(ScalabilityPoint {
            switches,
            elements: base.element_count(),
            risks: base.risk_count(),
            build_time,
            localize_time,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_workload::ClusterSpec;

    fn small_universe() -> PolicyUniverse {
        ClusterSpec::small().generate(1)
    }

    #[test]
    fn object_sharing_covers_every_class() {
        let cdfs = object_sharing(&small_universe());
        for class in [
            ObjectClass::Vrf,
            ObjectClass::Epg,
            ObjectClass::Contract,
            ObjectClass::Filter,
            ObjectClass::Switch,
        ] {
            assert!(cdfs.per_class.contains_key(&class), "missing {class}");
        }
        let table = sharing_table(&cdfs);
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn accuracy_sweep_controller_produces_rows() {
        let u = small_universe();
        let rows = accuracy_sweep(&u, ModelKind::Controller, &[1, 3], 3, 7, &[0.6, 1.0]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.algos.len(), 3);
            for algo in &row.algos {
                assert!(algo.precision.mean >= 0.0 && algo.precision.mean <= 1.0);
                assert!(algo.recall.mean >= 0.0 && algo.recall.mean <= 1.0);
                assert_eq!(algo.precision.count, 3);
            }
        }
        let table = accuracy_table("fig9", &rows);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn scout_recall_beats_score_1_with_partial_faults() {
        // With several faults (half of them partial on average) SCOUT's recall
        // must be at least as good as SCORE-1.0's, which ignores partially
        // failed objects entirely.
        let u = small_universe();
        let rows = accuracy_sweep(&u, ModelKind::Controller, &[4], 10, 21, &[1.0]);
        let row = &rows[0];
        let scout = row.algos.iter().find(|a| a.name == "SCOUT").unwrap();
        let score = row.algos.iter().find(|a| a.name == "SCORE-1").unwrap();
        assert!(
            scout.recall.mean >= score.recall.mean,
            "SCOUT recall {} must be >= SCORE recall {}",
            scout.recall.mean,
            score.recall.mean
        );
        assert!(scout.recall.mean > 0.6);
    }

    #[test]
    fn accuracy_sweep_switch_model_produces_rows() {
        let u = small_universe();
        let rows = accuracy_sweep(&u, ModelKind::Switch, &[2], 3, 5, &[1.0]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].algos.len(), 2);
        assert!(rows[0].algos[0].recall.mean > 0.0);
    }

    #[test]
    fn suspect_reduction_gamma_is_small() {
        let u = small_universe();
        let bins = suspect_reduction(
            &u,
            20,
            &[(1.0, 10.0), (10.0, 50.0), (50.0, 100.0), (100.0, 1000.0)],
            3,
        );
        let summaries = bins.summaries();
        let total: usize = summaries.iter().map(|s| s.count).sum();
        assert!(total > 0, "at least some faults must fall into the bins");
        for s in summaries.iter().filter(|s| s.count > 0) {
            assert!(s.mean <= 1.0);
        }
        let table = gamma_table("fig7b", &bins);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn testbed_experiments_run_end_to_end() {
        let spec = TestbedSpec {
            epgs: 12,
            contracts: 8,
            filters: 4,
            target_pairs: 20,
            switches: 3,
            tcam_capacity: 1024,
        };
        let rows = testbed_accuracy(spec, &[1, 2], 2, 11);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let scout = &row.algos[0];
            assert_eq!(scout.name, "SCOUT");
            assert!(scout.recall.mean > 0.0);
        }
        let bins = testbed_suspect_reduction(spec, 5, &[(1.0, 20.0), (20.0, 60.0)], 13);
        let total: usize = bins.summaries().iter().map(|s| s.count).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn changelog_stage_is_what_recovers_partial_faults() {
        let u = small_universe();
        let rows = changelog_ablation(&u, &[5], 8, 31);
        let row = &rows[0];
        let full = row.algos.iter().find(|a| a.name == "SCOUT").unwrap();
        let ablated = row
            .algos
            .iter()
            .find(|a| a.name == "SCOUT-no-changelog")
            .unwrap();
        let score = row.algos.iter().find(|a| a.name == "SCORE-1.0").unwrap();
        // Without the change-log stage, SCOUT degenerates towards SCORE-1.0's
        // recall; with it, recall is clearly higher.
        assert!(full.recall.mean > ablated.recall.mean + 0.05);
        assert!((ablated.recall.mean - score.recall.mean).abs() < 0.2);
    }

    #[test]
    fn scalability_points_grow_with_switches() {
        let points = scalability(&[2, 6], 3, 5);
        assert_eq!(points.len(), 2);
        assert!(points[1].elements > points[0].elements);
        assert!(points[1].switches == 6);
        let table = scalability_table(&points);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn mix_seed_is_stable_and_distinct() {
        assert_eq!(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(1, 2, 4));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(2, 2, 3));
    }
}
