//! A tiny, dependency-free micro-benchmark harness.
//!
//! The build environment has no crates.io registry, so the workspace cannot
//! use Criterion; this module provides the small subset the benches need:
//! adaptive iteration counts, best-of-N sampling and an aligned report table.
//! Benches are plain `harness = false` binaries calling [`Harness::bench`].

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(120);
/// Number of samples per benchmark; the fastest is reported.
const SAMPLES: usize = 3;
/// Upper bound on iterations per sample, to bound total runtime.
const MAX_ITERS: u32 = 10_000;

/// Collects named timings and prints them as an aligned table.
#[derive(Debug, Default)]
pub struct Harness {
    group: String,
    rows: Vec<(String, Duration)>,
}

impl Harness {
    /// Creates a harness for a named benchmark group.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            rows: Vec::new(),
        }
    }

    /// Measures `f`, records the result under `label`, and returns the
    /// best-sample mean time per iteration.
    pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) -> Duration {
        // Warm-up run, also used to pick the iteration count.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(50));
        let iters = u32::try_from(SAMPLE_TARGET.as_nanos() / estimate.as_nanos().max(1))
            .unwrap_or(MAX_ITERS)
            .clamp(1, MAX_ITERS);

        let mut best = Duration::MAX;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            best = best.min(start.elapsed() / iters);
        }
        self.rows.push((label.to_string(), best));
        best
    }

    /// Prints the recorded rows as an aligned table.
    pub fn finish(self) {
        let width = self
            .rows
            .iter()
            .map(|(label, _)| label.len())
            .max()
            .unwrap_or(0)
            .max(24);
        println!("\n== {} ==", self.group);
        for (label, time) in &self.rows {
            println!("{label:<width$}  {}", fmt_duration(*time));
        }
    }
}

/// Formats a duration with an appropriate unit.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_time() {
        let mut h = Harness::new("test");
        let t = h.bench("spin", || (0..100u64).sum::<u64>());
        assert!(t > Duration::ZERO);
        h.finish();
    }

    #[test]
    fn durations_format_with_units() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with("s"));
    }
}
