//! A tiny, dependency-free micro-benchmark harness.
//!
//! The build environment has no crates.io registry, so the workspace cannot
//! use Criterion; this module provides the small subset the benches need:
//! an explicit warm-up phase, fixed-iteration sampling into a real latency
//! distribution (p50/p99 instead of a single best-of-N point), an aligned
//! report table, and a JSON serializer for committed benchmark artifacts
//! (see [`crate::json`] for the matching parser/validator).
//! Benches are plain `harness = false` binaries calling [`Harness::bench`].

use std::hint::black_box;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// Wall-clock budget for the warm-up phase of one benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(40);
/// Upper bound on warm-up iterations (slow benchmarks warm up in one call).
const MAX_WARMUP_ITERS: u32 = 50;
/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 20;
/// Target wall-clock time for one measurement sample; fast closures are
/// batched so a sample is long enough to time reliably.
const SAMPLE_FLOOR: Duration = Duration::from_millis(4);
/// Upper bound on iterations per sample, to bound total runtime.
const MAX_ITERS_PER_SAMPLE: u32 = 10_000;

/// The measured distribution of one benchmark: the unit of the report table
/// and of the JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Benchmark label within the group.
    pub label: String,
    /// Total timed iterations across all samples (excludes warm-up).
    pub iterations: u64,
    /// Median per-iteration time (nearest-rank over the sample means).
    pub p50: Duration,
    /// 99th-percentile per-iteration time (nearest-rank; with fewer than 100
    /// samples this is the worst observed sample).
    pub p99: Duration,
    /// Iterations per second at the median (`1 / p50`).
    pub throughput: f64,
}

/// Collects named timings and prints them as an aligned table.
#[derive(Debug, Default)]
pub struct Harness {
    group: String,
    samples: usize,
    rows: Vec<BenchStats>,
}

impl Harness {
    /// Creates a harness for a named benchmark group.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            samples: DEFAULT_SAMPLES,
            rows: Vec::new(),
        }
    }

    /// Overrides the number of timed samples per benchmark (default
    /// [`DEFAULT_SAMPLES`]). More samples sharpen the tail quantiles at the
    /// price of runtime; at least 2 are always taken.
    pub fn set_samples(&mut self, samples: usize) {
        self.samples = samples.max(2);
    }

    /// Measures `f` and records its latency distribution under `label`,
    /// returning the median per-iteration time.
    ///
    /// The measurement has two phases:
    ///
    /// 1. **Warm-up** — `f` runs untimed for a fixed wall-clock budget
    ///    (capped in iterations, so slow benchmarks warm up in one call);
    ///    caches, allocators and branch predictors settle before anything is
    ///    recorded, and the warm-up also estimates the per-call cost.
    /// 2. **Fixed-iteration sampling** — a fixed number of samples is timed
    ///    (see [`Harness::set_samples`]); each sample runs the same
    ///    pre-computed iteration count, chosen so one sample is long enough
    ///    to time reliably. Slow closures run once per sample, so their
    ///    sample distribution is the real per-call latency distribution —
    ///    which is what makes the reported p99 meaningful for workloads
    ///    (like per-epoch ingest) whose cost varies call to call.
    pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) -> Duration {
        // Phase 1: warm-up and cost estimation.
        let mut warmup_iters = 0u32;
        let warmup_start = Instant::now();
        while warmup_iters < MAX_WARMUP_ITERS {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= WARMUP_TARGET {
                break;
            }
        }
        let estimate = (warmup_start.elapsed() / warmup_iters).max(Duration::from_nanos(50));

        // Phase 2: fixed-iteration samples.
        let iters = u32::try_from(SAMPLE_FLOOR.as_nanos() / estimate.as_nanos().max(1))
            .unwrap_or(MAX_ITERS_PER_SAMPLE)
            .clamp(1, MAX_ITERS_PER_SAMPLE);
        let mut sample_means: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_means.push(start.elapsed() / iters);
        }
        sample_means.sort();

        let p50 = nearest_rank(&sample_means, 0.50);
        let p99 = nearest_rank(&sample_means, 0.99);
        let stats = BenchStats {
            label: label.to_string(),
            iterations: u64::from(iters) * self.samples as u64,
            p50,
            p99,
            throughput: 1.0 / p50.as_secs_f64().max(1e-12),
        };
        self.rows.push(stats);
        p50
    }

    /// The distributions recorded so far, in bench order.
    pub fn stats(&self) -> &[BenchStats] {
        &self.rows
    }

    /// The recorded distribution for `label`, if that bench ran.
    pub fn stats_for(&self, label: &str) -> Option<&BenchStats> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Serializes the recorded rows as a JSON report:
    ///
    /// ```json
    /// {
    ///   "group": "...",
    ///   "benches": [
    ///     {"label": "...", "iterations": N,
    ///      "p50_ns": N, "p99_ns": N, "throughput_per_sec": X}
    ///   ]
    /// }
    /// ```
    ///
    /// The schema is stable — committed artifacts (e.g.
    /// `BENCH_ingest_scale.json`) are validated against it by
    /// [`crate::json::validate_bench_report`] in CI.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"group\": \"{}\",\n",
            crate::json::escape(&self.group)
        ));
        out.push_str("  \"benches\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"iterations\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"throughput_per_sec\": {:.3}}}{}\n",
                crate::json::escape(&row.label),
                row.iterations,
                row.p50.as_nanos(),
                row.p99.as_nanos(),
                row.throughput,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report (see [`Harness::to_json`]) to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Prints the recorded rows as an aligned table.
    pub fn finish(self) {
        let width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(24);
        println!("\n== {} ==", self.group);
        for row in &self.rows {
            println!(
                "{:<width$}  p50 {:>10}  p99 {:>10}  ({} iters)",
                row.label,
                fmt_duration(row.p50),
                fmt_duration(row.p99),
                row.iterations,
            );
        }
    }
}

/// Nearest-rank quantile over pre-sorted samples.
fn nearest_rank(sorted: &[Duration], q: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Formats a duration with an appropriate unit.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_time() {
        let mut h = Harness::new("test");
        let t = h.bench("spin", || (0..100u64).sum::<u64>());
        assert!(t > Duration::ZERO);
        h.finish();
    }

    #[test]
    fn bench_records_a_distribution() {
        let mut h = Harness::new("test");
        h.set_samples(10);
        h.bench("spin", || (0..1000u64).sum::<u64>());
        let stats = h.stats_for("spin").expect("row recorded");
        assert!(stats.iterations >= 10, "10 samples of >=1 iteration");
        assert!(stats.p50 <= stats.p99, "quantiles are ordered");
        assert!(stats.throughput > 0.0);
        assert!(h.stats_for("absent").is_none());
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let mut h = Harness::new("test-group");
        h.set_samples(3);
        h.bench("a \"quoted\" label", || 1u64 + 1);
        h.bench("plain", || 2u64 * 2);
        let text = h.to_json();
        crate::json::validate_bench_report(&text).expect("schema-valid report");
        let parsed = crate::json::Json::parse(&text).expect("parseable");
        assert_eq!(
            parsed.get("group").and_then(crate::json::Json::as_str),
            Some("test-group")
        );
        let benches = parsed
            .get("benches")
            .and_then(crate::json::Json::as_array)
            .expect("benches array");
        assert_eq!(benches.len(), 2);
        assert_eq!(
            benches[0].get("label").and_then(crate::json::Json::as_str),
            Some("a \"quoted\" label")
        );
    }

    #[test]
    fn durations_format_with_units() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with("s"));
    }
}
