//! The policy universe: every object known to the controller plus the
//! dependency queries the rest of the system is built on.
//!
//! A [`PolicyUniverse`] is an immutable, validated snapshot of a tenant policy
//! together with the physical inventory (switches, endpoint attachment). It is
//! constructed through [`PolicyBuilder`], which checks referential integrity,
//! and exposes the dependency queries needed by policy compilation
//! (`scout-fabric`), risk-model construction (`scout-core`) and the Figure 3
//! object-sharing analysis (`scout-bench`).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::PolicyError;
use crate::ids::{ContractId, EndpointId, EpgId, FilterId, ObjectId, SwitchId, TenantId, VrfId};
use crate::object::{Contract, ContractBinding, Endpoint, Epg, Filter, Switch, Tenant, Vrf};
use crate::pair::EpgPair;

/// Aggregate object counts of a universe, handy for experiment reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniverseStats {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of VRFs.
    pub vrfs: usize,
    /// Number of EPGs.
    pub epgs: usize,
    /// Number of endpoints.
    pub endpoints: usize,
    /// Number of switches.
    pub switches: usize,
    /// Number of contracts.
    pub contracts: usize,
    /// Number of filters.
    pub filters: usize,
    /// Number of contract bindings (EPG-pair/contract relations).
    pub bindings: usize,
    /// Number of distinct EPG pairs allowed to communicate.
    pub epg_pairs: usize,
}

/// An immutable, validated snapshot of the network policy and inventory.
///
/// Besides the raw objects, the universe carries dependency indexes computed
/// once at [`PolicyBuilder::build`] time (pair → bindings, EPG → hosting
/// switches, switch → local pairs, object → dependent pairs, …). Every
/// dependency query below is therefore a lookup, not a scan — this is what
/// keeps risk-model construction and fault correlation proportional to the
/// answer size instead of the universe size on 1000-switch fabrics. The
/// indexes are pure functions of the base objects, so derived equality and
/// cloning remain consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyUniverse {
    tenants: BTreeMap<TenantId, Tenant>,
    vrfs: BTreeMap<VrfId, Vrf>,
    epgs: BTreeMap<EpgId, Epg>,
    endpoints: BTreeMap<EndpointId, Endpoint>,
    switches: BTreeMap<SwitchId, Switch>,
    contracts: BTreeMap<ContractId, Contract>,
    filters: BTreeMap<FilterId, Filter>,
    bindings: Vec<ContractBinding>,
    /// Binding indices (into `bindings`) per EPG pair; keys are exactly the
    /// distinct bound pairs.
    pair_bindings: BTreeMap<EpgPair, Vec<usize>>,
    /// Switches hosting at least one endpoint of each EPG.
    epg_hosts: BTreeMap<EpgId, BTreeSet<SwitchId>>,
    /// EPGs with at least one endpoint on each switch.
    switch_epgs: BTreeMap<SwitchId, BTreeSet<EpgId>>,
    /// Bound pairs whose rules must be deployed on each switch.
    switch_pairs: BTreeMap<SwitchId, BTreeSet<EpgPair>>,
    /// Dependency closure (VRF, EPGs, contracts, filters — no switch) per pair.
    pair_objects: BTreeMap<EpgPair, BTreeSet<ObjectId>>,
    /// Dependent pairs per object, including switch objects.
    object_pairs: BTreeMap<ObjectId, BTreeSet<EpgPair>>,
    /// Switches each object's rules can be deployed on.
    object_switches: BTreeMap<ObjectId, BTreeSet<SwitchId>>,
}

impl PolicyUniverse {
    /// Starts building a new universe.
    pub fn builder() -> PolicyBuilder {
        PolicyBuilder::new()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Looks up a tenant.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    /// Looks up a VRF.
    pub fn vrf(&self, id: VrfId) -> Option<&Vrf> {
        self.vrfs.get(&id)
    }

    /// Looks up an EPG.
    pub fn epg(&self, id: EpgId) -> Option<&Epg> {
        self.epgs.get(&id)
    }

    /// Looks up an endpoint.
    pub fn endpoint(&self, id: EndpointId) -> Option<&Endpoint> {
        self.endpoints.get(&id)
    }

    /// Looks up a switch.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switches.get(&id)
    }

    /// Looks up a contract.
    pub fn contract(&self, id: ContractId) -> Option<&Contract> {
        self.contracts.get(&id)
    }

    /// Looks up a filter.
    pub fn filter(&self, id: FilterId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    /// Iterates over all tenants in id order.
    pub fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.values()
    }

    /// Iterates over all VRFs in id order.
    pub fn vrfs(&self) -> impl Iterator<Item = &Vrf> {
        self.vrfs.values()
    }

    /// Iterates over all EPGs in id order.
    pub fn epgs(&self) -> impl Iterator<Item = &Epg> {
        self.epgs.values()
    }

    /// Iterates over all endpoints in id order.
    pub fn endpoints(&self) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.values()
    }

    /// Iterates over all switches in id order.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        self.switches.values()
    }

    /// Iterates over all contracts in id order.
    pub fn contracts(&self) -> impl Iterator<Item = &Contract> {
        self.contracts.values()
    }

    /// Iterates over all filters in id order.
    pub fn filters(&self) -> impl Iterator<Item = &Filter> {
        self.filters.values()
    }

    /// All contract bindings.
    pub fn bindings(&self) -> &[ContractBinding] {
        &self.bindings
    }

    /// All switch ids in id order.
    pub fn switch_ids(&self) -> Vec<SwitchId> {
        self.switches.keys().copied().collect()
    }

    /// Aggregate counts for reporting.
    pub fn stats(&self) -> UniverseStats {
        UniverseStats {
            tenants: self.tenants.len(),
            vrfs: self.vrfs.len(),
            epgs: self.epgs.len(),
            endpoints: self.endpoints.len(),
            switches: self.switches.len(),
            contracts: self.contracts.len(),
            filters: self.filters.len(),
            bindings: self.bindings.len(),
            epg_pairs: self.epg_pairs().len(),
        }
    }

    /// Every policy object (VRFs, EPGs, contracts, filters) plus switches as
    /// [`ObjectId`]s, in a stable order.
    pub fn all_objects(&self) -> Vec<ObjectId> {
        let mut objs = Vec::new();
        objs.extend(self.vrfs.keys().map(|&v| ObjectId::Vrf(v)));
        objs.extend(self.epgs.keys().map(|&e| ObjectId::Epg(e)));
        objs.extend(self.contracts.keys().map(|&c| ObjectId::Contract(c)));
        objs.extend(self.filters.keys().map(|&f| ObjectId::Filter(f)));
        objs.extend(self.switches.keys().map(|&s| ObjectId::Switch(s)));
        objs
    }

    /// Returns `true` if `object` exists in the universe.
    pub fn contains_object(&self, object: ObjectId) -> bool {
        match object {
            ObjectId::Vrf(id) => self.vrfs.contains_key(&id),
            ObjectId::Epg(id) => self.epgs.contains_key(&id),
            ObjectId::Contract(id) => self.contracts.contains_key(&id),
            ObjectId::Filter(id) => self.filters.contains_key(&id),
            ObjectId::Switch(id) => self.switches.contains_key(&id),
        }
    }

    /// Human-readable name of an object, if it exists.
    pub fn object_name(&self, object: ObjectId) -> Option<&str> {
        match object {
            ObjectId::Vrf(id) => self.vrfs.get(&id).map(|o| o.name.as_str()),
            ObjectId::Epg(id) => self.epgs.get(&id).map(|o| o.name.as_str()),
            ObjectId::Contract(id) => self.contracts.get(&id).map(|o| o.name.as_str()),
            ObjectId::Filter(id) => self.filters.get(&id).map(|o| o.name.as_str()),
            ObjectId::Switch(id) => self.switches.get(&id).map(|o| o.name.as_str()),
        }
    }

    // ------------------------------------------------------------------
    // Dependency queries
    // ------------------------------------------------------------------

    /// Endpoints that belong to `epg`.
    pub fn endpoints_in_epg(&self, epg: EpgId) -> Vec<&Endpoint> {
        self.endpoints.values().filter(|ep| ep.epg == epg).collect()
    }

    /// Switches that host at least one endpoint of `epg`.
    pub fn switches_hosting_epg(&self, epg: EpgId) -> BTreeSet<SwitchId> {
        self.epg_hosts.get(&epg).cloned().unwrap_or_default()
    }

    /// EPGs that have at least one endpoint attached to `switch`.
    pub fn epgs_on_switch(&self, switch: SwitchId) -> BTreeSet<EpgId> {
        self.switch_epgs.get(&switch).cloned().unwrap_or_default()
    }

    /// All distinct EPG pairs allowed to communicate by at least one binding.
    pub fn epg_pairs(&self) -> BTreeSet<EpgPair> {
        self.pair_bindings.keys().copied().collect()
    }

    /// The contract bindings that govern `pair`.
    pub fn bindings_for_pair(&self, pair: EpgPair) -> Vec<&ContractBinding> {
        self.pair_bindings
            .get(&pair)
            .map(|idxs| idxs.iter().map(|&i| &self.bindings[i]).collect())
            .unwrap_or_default()
    }

    /// Switches on which rules for `pair` must be deployed: every switch that
    /// hosts an endpoint of either member EPG.
    pub fn switches_for_pair(&self, pair: EpgPair) -> BTreeSet<SwitchId> {
        let mut switches = self.switches_hosting_epg(pair.a);
        if let Some(hosts) = self.epg_hosts.get(&pair.b) {
            switches.extend(hosts.iter().copied());
        }
        switches
    }

    /// EPG pairs whose rules must be deployed on `switch`: every bound pair
    /// with at least one member EPG hosted on the switch.
    pub fn pairs_on_switch(&self, switch: SwitchId) -> BTreeSet<EpgPair> {
        self.switch_pairs.get(&switch).cloned().unwrap_or_default()
    }

    /// The policy objects `pair` relies on: the VRF, both EPGs, every contract
    /// binding the pair and every filter of those contracts.
    ///
    /// This is the dependency closure used to build risk-model edges and to
    /// compute the suspect set for the γ metric.
    pub fn objects_for_pair(&self, pair: EpgPair) -> BTreeSet<ObjectId> {
        if let Some(objs) = self.pair_objects.get(&pair) {
            return objs.clone();
        }
        // Unbound pairs are not indexed; derive their (binding-free) closure.
        Self::pair_closure(&self.epgs, &self.contracts, &[], pair)
    }

    /// The dependency closure of `pair` given the bindings that govern it
    /// (an empty slice for unbound pairs — the closure then holds only the
    /// member EPGs and their VRFs).
    fn pair_closure(
        epgs: &BTreeMap<EpgId, Epg>,
        contracts: &BTreeMap<ContractId, Contract>,
        bindings: &[&ContractBinding],
        pair: EpgPair,
    ) -> BTreeSet<ObjectId> {
        let mut objs = BTreeSet::new();
        if let Some(epg) = epgs.get(&pair.a) {
            objs.insert(ObjectId::Epg(pair.a));
            objs.insert(ObjectId::Vrf(epg.vrf));
        }
        if let Some(epg) = epgs.get(&pair.b) {
            objs.insert(ObjectId::Epg(pair.b));
            objs.insert(ObjectId::Vrf(epg.vrf));
        }
        for binding in bindings {
            objs.insert(ObjectId::Contract(binding.contract));
            if let Some(contract) = contracts.get(&binding.contract) {
                for &filter in &contract.filters {
                    objs.insert(ObjectId::Filter(filter));
                }
            }
        }
        objs
    }

    /// Like [`objects_for_pair`](Self::objects_for_pair) but also includes the
    /// switch the pair is deployed on — the closure used by the controller risk
    /// model.
    pub fn objects_for_pair_on_switch(
        &self,
        pair: EpgPair,
        switch: SwitchId,
    ) -> BTreeSet<ObjectId> {
        let mut objs = self.objects_for_pair(pair);
        objs.insert(ObjectId::Switch(switch));
        objs
    }

    /// For every object (including switches), the set of EPG pairs that depend
    /// on it. This is the data behind Figure 3 of the paper.
    pub fn pairs_per_object(&self) -> BTreeMap<ObjectId, BTreeSet<EpgPair>> {
        self.object_pairs.clone()
    }

    /// The EPG pairs depending on a single object — the per-object slice of
    /// [`pairs_per_object`](Self::pairs_per_object) without materializing the
    /// whole map. Returns `None` for objects no pair depends on.
    pub fn pairs_for_object(&self, object: ObjectId) -> Option<&BTreeSet<EpgPair>> {
        self.object_pairs.get(&object)
    }

    /// The switches an object's rules can be deployed on: the union of
    /// [`switches_for_pair`](Self::switches_for_pair) over the object's
    /// dependent pairs (a switch object maps to itself). Precomputed at build
    /// time so fault correlation stays proportional to the answer, not the
    /// universe.
    pub fn switches_for_object(&self, object: ObjectId) -> BTreeSet<SwitchId> {
        if let ObjectId::Switch(switch) = object {
            return BTreeSet::from([switch]);
        }
        self.object_switches
            .get(&object)
            .cloned()
            .unwrap_or_default()
    }

    /// Union of the dependency closures of a set of pairs — the "suspect set"
    /// a network admin would have to examine without fault localization.
    pub fn suspect_objects(&self, pairs: &BTreeSet<EpgPair>) -> BTreeSet<ObjectId> {
        let mut objs = BTreeSet::new();
        for &pair in pairs {
            objs.extend(self.objects_for_pair(pair));
            for switch in self.switches_for_pair(pair) {
                objs.insert(ObjectId::Switch(switch));
            }
        }
        objs
    }
}

/// Incremental builder for [`PolicyUniverse`].
///
/// All `add_*` methods accept fully-formed objects; [`PolicyBuilder::build`]
/// validates referential integrity and returns the immutable universe.
#[derive(Debug, Clone, Default)]
pub struct PolicyBuilder {
    tenants: Vec<Tenant>,
    vrfs: Vec<Vrf>,
    epgs: Vec<Epg>,
    endpoints: Vec<Endpoint>,
    switches: Vec<Switch>,
    contracts: Vec<Contract>,
    filters: Vec<Filter>,
    bindings: Vec<ContractBinding>,
}

impl PolicyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tenant.
    pub fn tenant(&mut self, tenant: Tenant) -> &mut Self {
        self.tenants.push(tenant);
        self
    }

    /// Adds a VRF.
    pub fn vrf(&mut self, vrf: Vrf) -> &mut Self {
        self.vrfs.push(vrf);
        self
    }

    /// Adds an EPG.
    pub fn epg(&mut self, epg: Epg) -> &mut Self {
        self.epgs.push(epg);
        self
    }

    /// Adds an endpoint.
    pub fn endpoint(&mut self, endpoint: Endpoint) -> &mut Self {
        self.endpoints.push(endpoint);
        self
    }

    /// Adds a switch.
    pub fn switch(&mut self, switch: Switch) -> &mut Self {
        self.switches.push(switch);
        self
    }

    /// Adds a contract.
    pub fn contract(&mut self, contract: Contract) -> &mut Self {
        self.contracts.push(contract);
        self
    }

    /// Adds a filter.
    pub fn filter(&mut self, filter: Filter) -> &mut Self {
        self.filters.push(filter);
        self
    }

    /// Adds a contract binding between a consumer and a provider EPG.
    pub fn bind(&mut self, binding: ContractBinding) -> &mut Self {
        self.bindings.push(binding);
        self
    }

    /// Number of objects added so far (for progress reporting in generators).
    pub fn len(&self) -> usize {
        self.tenants.len()
            + self.vrfs.len()
            + self.epgs.len()
            + self.endpoints.len()
            + self.switches.len()
            + self.contracts.len()
            + self.filters.len()
            + self.bindings.len()
    }

    /// Returns `true` if nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-sizes the builder's object vectors for a fabric of roughly
    /// `switches` switches at the given per-switch densities — the fast path
    /// of the large-fabric generators, which otherwise regrow (and memcpy)
    /// multi-thousand-element vectors a dozen times. Purely an allocation
    /// hint: the built universe is identical with or without it.
    pub fn reserve_fabric(
        &mut self,
        switches: usize,
        epgs_per_switch: usize,
        pairs_per_switch: usize,
    ) -> &mut Self {
        self.switches.reserve(switches);
        self.epgs.reserve(switches * epgs_per_switch);
        self.endpoints.reserve(switches * epgs_per_switch);
        self.contracts.reserve(switches * pairs_per_switch);
        self.bindings.reserve(switches * pairs_per_switch);
        self
    }

    /// Validates the accumulated objects and produces the immutable universe.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] when referential integrity is violated:
    /// duplicate ids, dangling references (EPG → VRF, endpoint → EPG/switch,
    /// contract → filter, binding → EPG/contract), bindings across VRFs, or
    /// empty contracts/filters.
    pub fn build(&self) -> Result<PolicyUniverse, PolicyError> {
        let mut tenants = BTreeMap::new();
        for t in &self.tenants {
            if tenants.insert(t.id, t.clone()).is_some() {
                // Tenants are not risk objects; reuse the endpoint error shape.
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Vrf(VrfId::new(t.id.raw())),
                });
            }
        }
        let mut vrfs = BTreeMap::new();
        for v in &self.vrfs {
            if vrfs.insert(v.id, v.clone()).is_some() {
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Vrf(v.id),
                });
            }
        }
        let mut switches = BTreeMap::new();
        for s in &self.switches {
            if switches.insert(s.id, s.clone()).is_some() {
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Switch(s.id),
                });
            }
        }
        let mut filters = BTreeMap::new();
        for f in &self.filters {
            if f.entries.is_empty() {
                return Err(PolicyError::EmptyFilter { filter: f.id });
            }
            if filters.insert(f.id, f.clone()).is_some() {
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Filter(f.id),
                });
            }
        }
        let mut contracts = BTreeMap::new();
        for c in &self.contracts {
            if c.filters.is_empty() {
                return Err(PolicyError::EmptyContract { contract: c.id });
            }
            for &filter in &c.filters {
                if !filters.contains_key(&filter) {
                    return Err(PolicyError::UnknownFilter {
                        contract: c.id,
                        filter,
                    });
                }
            }
            if contracts.insert(c.id, c.clone()).is_some() {
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Contract(c.id),
                });
            }
        }
        let mut epgs = BTreeMap::new();
        for e in &self.epgs {
            if !vrfs.contains_key(&e.vrf) {
                return Err(PolicyError::UnknownVrf {
                    epg: e.id,
                    vrf: e.vrf,
                });
            }
            if epgs.insert(e.id, e.clone()).is_some() {
                return Err(PolicyError::DuplicateObject {
                    object: ObjectId::Epg(e.id),
                });
            }
        }
        let mut endpoints = BTreeMap::new();
        for ep in &self.endpoints {
            if !epgs.contains_key(&ep.epg) {
                return Err(PolicyError::UnknownEpg {
                    endpoint: ep.id,
                    epg: ep.epg,
                });
            }
            if !switches.contains_key(&ep.switch) {
                return Err(PolicyError::UnknownSwitch {
                    endpoint: ep.id,
                    switch: ep.switch,
                });
            }
            if endpoints.insert(ep.id, ep.clone()).is_some() {
                return Err(PolicyError::DuplicateEndpoint { endpoint: ep.id });
            }
        }
        let mut seen: BTreeSet<ContractBinding> = BTreeSet::new();
        let mut bindings: Vec<ContractBinding> = Vec::new();
        for b in &self.bindings {
            if !contracts.contains_key(&b.contract) {
                return Err(PolicyError::UnknownContract {
                    contract: b.contract,
                });
            }
            let consumer = epgs
                .get(&b.consumer)
                .ok_or(PolicyError::UnknownBindingEpg {
                    contract: b.contract,
                    epg: b.consumer,
                })?;
            let provider = epgs
                .get(&b.provider)
                .ok_or(PolicyError::UnknownBindingEpg {
                    contract: b.contract,
                    epg: b.provider,
                })?;
            if consumer.vrf != provider.vrf {
                return Err(PolicyError::CrossVrfBinding {
                    contract: b.contract,
                    consumer: b.consumer,
                    provider: b.provider,
                });
            }
            if seen.insert(*b) {
                bindings.push(*b);
            }
        }
        bindings.sort();

        // Dependency indexes: one pass over endpoints and bindings, then a
        // pair-major pass for the object-centric views. All queries on the
        // finished universe are lookups into these.
        let mut epg_hosts: BTreeMap<EpgId, BTreeSet<SwitchId>> = BTreeMap::new();
        let mut switch_epgs: BTreeMap<SwitchId, BTreeSet<EpgId>> = BTreeMap::new();
        for ep in endpoints.values() {
            epg_hosts.entry(ep.epg).or_default().insert(ep.switch);
            switch_epgs.entry(ep.switch).or_default().insert(ep.epg);
        }
        let mut pair_bindings: BTreeMap<EpgPair, Vec<usize>> = BTreeMap::new();
        for (i, b) in bindings.iter().enumerate() {
            pair_bindings
                .entry(EpgPair::new(b.consumer, b.provider))
                .or_default()
                .push(i);
        }
        let mut switch_pairs: BTreeMap<SwitchId, BTreeSet<EpgPair>> = BTreeMap::new();
        let mut pair_objects: BTreeMap<EpgPair, BTreeSet<ObjectId>> = BTreeMap::new();
        let mut object_pairs: BTreeMap<ObjectId, BTreeSet<EpgPair>> = BTreeMap::new();
        let mut object_switches: BTreeMap<ObjectId, BTreeSet<SwitchId>> = BTreeMap::new();
        for (&pair, idxs) in &pair_bindings {
            let pair_binding_refs: Vec<&ContractBinding> =
                idxs.iter().map(|&i| &bindings[i]).collect();
            let objs = PolicyUniverse::pair_closure(&epgs, &contracts, &pair_binding_refs, pair);
            let mut hosts: BTreeSet<SwitchId> = epg_hosts.get(&pair.a).cloned().unwrap_or_default();
            if let Some(b_hosts) = epg_hosts.get(&pair.b) {
                hosts.extend(b_hosts.iter().copied());
            }
            for &switch in &hosts {
                switch_pairs.entry(switch).or_default().insert(pair);
            }
            for &obj in &objs {
                object_pairs.entry(obj).or_default().insert(pair);
                object_switches
                    .entry(obj)
                    .or_default()
                    .extend(hosts.iter().copied());
            }
            pair_objects.insert(pair, objs);
        }
        for (&switch, pairs) in &switch_pairs {
            if !pairs.is_empty() {
                object_pairs.insert(ObjectId::Switch(switch), pairs.clone());
            }
        }

        Ok(PolicyUniverse {
            tenants,
            vrfs,
            epgs,
            endpoints,
            switches,
            contracts,
            filters,
            bindings,
            pair_bindings,
            epg_hosts,
            switch_epgs,
            switch_pairs,
            pair_objects,
            object_pairs,
            object_switches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample;

    fn three_tier() -> PolicyUniverse {
        sample::three_tier()
    }

    #[test]
    fn three_tier_builds_and_counts_match() {
        let u = three_tier();
        let stats = u.stats();
        assert_eq!(stats.vrfs, 1);
        assert_eq!(stats.epgs, 3);
        assert_eq!(stats.switches, 3);
        assert_eq!(stats.contracts, 2);
        assert_eq!(stats.filters, 2);
        assert_eq!(stats.epg_pairs, 2);
        assert_eq!(stats.endpoints, 3);
    }

    #[test]
    fn pairs_on_switch_matches_figure_1() {
        let u = three_tier();
        // S1 hosts Web only -> only the Web-App pair.
        let s1 = u.pairs_on_switch(sample::S1);
        assert_eq!(s1.len(), 1);
        assert!(s1.contains(&EpgPair::new(sample::WEB, sample::APP)));
        // S2 hosts App -> both Web-App and App-DB pairs (Figure 2).
        let s2 = u.pairs_on_switch(sample::S2);
        assert_eq!(s2.len(), 2);
        // S3 hosts DB -> only App-DB.
        let s3 = u.pairs_on_switch(sample::S3);
        assert_eq!(s3.len(), 1);
        assert!(s3.contains(&EpgPair::new(sample::APP, sample::DB)));
    }

    #[test]
    fn objects_for_pair_matches_paper_closure() {
        let u = three_tier();
        // Shared risk objects for App-DB: VRF:101, EPG:App, EPG:DB,
        // Contract:App-DB, Filter:80, Filter:700 (§III of the paper).
        let objs = u.objects_for_pair(EpgPair::new(sample::APP, sample::DB));
        assert_eq!(objs.len(), 6);
        assert!(objs.contains(&ObjectId::Vrf(sample::VRF)));
        assert!(objs.contains(&ObjectId::Epg(sample::APP)));
        assert!(objs.contains(&ObjectId::Epg(sample::DB)));
        assert!(objs.contains(&ObjectId::Contract(sample::C_APP_DB)));
        assert!(objs.contains(&ObjectId::Filter(sample::F_HTTP)));
        assert!(objs.contains(&ObjectId::Filter(sample::F_700)));
        // Web-App relies on the http filter only.
        let objs = u.objects_for_pair(EpgPair::new(sample::WEB, sample::APP));
        assert_eq!(objs.len(), 5);
        assert!(!objs.contains(&ObjectId::Filter(sample::F_700)));
    }

    #[test]
    fn objects_for_pair_on_switch_adds_the_switch() {
        let u = three_tier();
        let pair = EpgPair::new(sample::WEB, sample::APP);
        let objs = u.objects_for_pair_on_switch(pair, sample::S2);
        assert!(objs.contains(&ObjectId::Switch(sample::S2)));
        assert_eq!(objs.len(), u.objects_for_pair(pair).len() + 1);
    }

    #[test]
    fn pairs_per_object_covers_all_pairs() {
        let u = three_tier();
        let map = u.pairs_per_object();
        // The VRF is shared by both pairs.
        assert_eq!(map[&ObjectId::Vrf(sample::VRF)].len(), 2);
        // EPG:App participates in both pairs, Web and DB in one each.
        assert_eq!(map[&ObjectId::Epg(sample::APP)].len(), 2);
        assert_eq!(map[&ObjectId::Epg(sample::WEB)].len(), 1);
        assert_eq!(map[&ObjectId::Epg(sample::DB)].len(), 1);
        // Switch S2 hosts both pairs.
        assert_eq!(map[&ObjectId::Switch(sample::S2)].len(), 2);
        assert_eq!(map[&ObjectId::Switch(sample::S1)].len(), 1);
    }

    #[test]
    fn switches_for_pair_is_union_of_epg_hosts() {
        let u = three_tier();
        let switches = u.switches_for_pair(EpgPair::new(sample::WEB, sample::APP));
        assert_eq!(switches, BTreeSet::from([sample::S1, sample::S2]));
    }

    #[test]
    fn suspect_objects_unions_closures_and_switches() {
        let u = three_tier();
        let pairs = BTreeSet::from([EpgPair::new(sample::WEB, sample::APP)]);
        let suspects = u.suspect_objects(&pairs);
        assert!(suspects.contains(&ObjectId::Switch(sample::S1)));
        assert!(suspects.contains(&ObjectId::Switch(sample::S2)));
        assert!(suspects.contains(&ObjectId::Filter(sample::F_HTTP)));
        assert!(!suspects.contains(&ObjectId::Filter(sample::F_700)));
    }

    #[test]
    fn build_rejects_dangling_vrf_reference() {
        let mut b = PolicyBuilder::new();
        b.epg(Epg::new(EpgId::new(1), "orphan", VrfId::new(9)));
        let err = b.build().unwrap_err();
        assert!(matches!(err, PolicyError::UnknownVrf { .. }));
    }

    #[test]
    fn build_rejects_dangling_endpoint_references() {
        let mut b = PolicyBuilder::new();
        b.tenant(Tenant::new(TenantId::new(0), "t"))
            .vrf(Vrf::new(VrfId::new(1), "v", TenantId::new(0)))
            .epg(Epg::new(EpgId::new(1), "e", VrfId::new(1)))
            .endpoint(Endpoint::new(
                EndpointId::new(1),
                "ep",
                EpgId::new(1),
                SwitchId::new(44),
            ));
        let err = b.build().unwrap_err();
        assert!(matches!(err, PolicyError::UnknownSwitch { .. }));
    }

    #[test]
    fn build_rejects_duplicate_objects() {
        let mut b = PolicyBuilder::new();
        b.filter(Filter::tcp_port(FilterId::new(1), "http", 80))
            .filter(Filter::tcp_port(FilterId::new(1), "http-dup", 80));
        let err = b.build().unwrap_err();
        assert!(matches!(err, PolicyError::DuplicateObject { .. }));
    }

    #[test]
    fn build_rejects_empty_contract_and_filter() {
        let mut b = PolicyBuilder::new();
        b.filter(Filter::new(FilterId::new(1), "empty", vec![]));
        assert!(matches!(
            b.build().unwrap_err(),
            PolicyError::EmptyFilter { .. }
        ));

        let mut b = PolicyBuilder::new();
        b.contract(Contract::new(ContractId::new(1), "empty", vec![]));
        assert!(matches!(
            b.build().unwrap_err(),
            PolicyError::EmptyContract { .. }
        ));
    }

    #[test]
    fn build_rejects_cross_vrf_binding() {
        let mut b = PolicyBuilder::new();
        b.tenant(Tenant::new(TenantId::new(0), "t"))
            .vrf(Vrf::new(VrfId::new(1), "v1", TenantId::new(0)))
            .vrf(Vrf::new(VrfId::new(2), "v2", TenantId::new(0)))
            .epg(Epg::new(EpgId::new(1), "a", VrfId::new(1)))
            .epg(Epg::new(EpgId::new(2), "b", VrfId::new(2)))
            .filter(Filter::tcp_port(FilterId::new(1), "http", 80))
            .contract(Contract::new(
                ContractId::new(1),
                "c",
                vec![FilterId::new(1)],
            ))
            .bind(ContractBinding::new(
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
            ));
        assert!(matches!(
            b.build().unwrap_err(),
            PolicyError::CrossVrfBinding { .. }
        ));
    }

    #[test]
    fn build_deduplicates_identical_bindings() {
        let u = {
            let mut b = PolicyBuilder::new();
            b.tenant(Tenant::new(TenantId::new(0), "t"))
                .vrf(Vrf::new(VrfId::new(1), "v1", TenantId::new(0)))
                .epg(Epg::new(EpgId::new(1), "a", VrfId::new(1)))
                .epg(Epg::new(EpgId::new(2), "b", VrfId::new(1)))
                .filter(Filter::tcp_port(FilterId::new(1), "http", 80))
                .contract(Contract::new(
                    ContractId::new(1),
                    "c",
                    vec![FilterId::new(1)],
                ))
                .bind(ContractBinding::new(
                    EpgId::new(1),
                    EpgId::new(2),
                    ContractId::new(1),
                ))
                .bind(ContractBinding::new(
                    EpgId::new(1),
                    EpgId::new(2),
                    ContractId::new(1),
                ));
            b.build().unwrap()
        };
        assert_eq!(u.bindings().len(), 1);
    }

    #[test]
    fn object_name_and_contains_object() {
        let u = three_tier();
        assert!(u.contains_object(ObjectId::Epg(sample::WEB)));
        assert!(!u.contains_object(ObjectId::Epg(EpgId::new(999))));
        assert_eq!(u.object_name(ObjectId::Epg(sample::WEB)), Some("Web"));
        assert_eq!(u.object_name(ObjectId::Filter(FilterId::new(999))), None);
    }

    #[test]
    fn all_objects_contains_every_class() {
        let u = three_tier();
        let objs = u.all_objects();
        assert_eq!(objs.len(), 1 + 3 + 2 + 2 + 3);
        assert!(objs.iter().any(|o| o.is_switch()));
        assert!(objs.iter().any(|o| o.is_filter()));
    }

    #[test]
    fn builder_len_and_is_empty() {
        let mut b = PolicyBuilder::new();
        assert!(b.is_empty());
        b.switch(Switch::new(SwitchId::new(1), "s1"));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
