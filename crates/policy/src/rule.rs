//! TCAM rule representation.
//!
//! A TCAM rule (Figure 2 of the paper) matches on the tuple
//! `(VRF, source EPG, destination EPG, protocol, destination port)` and carries
//! an allow/deny action and a priority. The controller compiles the policy into
//! *logical* rules ([`LogicalRule`], L-type) which also carry the provenance —
//! the policy objects the rule was derived from. Switch agents render the same
//! matches into the hardware table as plain [`TcamRule`]s (T-type).

use std::fmt;

use crate::ids::{ContractId, EpgId, FilterId, ObjectId, SwitchId, VrfId};
use crate::object::{Action, PortRange, Protocol};
use crate::pair::EpgPair;

/// The match portion of a TCAM rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleMatch {
    /// VRF the traffic belongs to.
    pub vrf: VrfId,
    /// Source EPG class id.
    pub src_epg: EpgId,
    /// Destination EPG class id.
    pub dst_epg: EpgId,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Destination port range.
    pub ports: PortRange,
}

impl RuleMatch {
    /// Creates a match for a single destination port.
    pub fn new(
        vrf: VrfId,
        src_epg: EpgId,
        dst_epg: EpgId,
        protocol: Protocol,
        ports: PortRange,
    ) -> Self {
        Self {
            vrf,
            src_epg,
            dst_epg,
            protocol,
            ports,
        }
    }

    /// The (unordered) EPG pair this match belongs to.
    pub fn pair(&self) -> EpgPair {
        EpgPair::new(self.src_epg, self.dst_epg)
    }

    /// Returns `true` if the match covers `flow`.
    pub fn covers(&self, flow: &FlowKey) -> bool {
        self.vrf == flow.vrf
            && self.src_epg == flow.src_epg
            && self.dst_epg == flow.dst_epg
            && self.protocol.matches(flow.protocol)
            && self.ports.contains(flow.port)
    }
}

impl fmt::Display for RuleMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{}→{},{}/{}",
            self.vrf, self.src_epg, self.dst_epg, self.protocol, self.ports
        )
    }
}

/// A concrete flow (single packet header) used to evaluate rule tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// VRF of the flow.
    pub vrf: VrfId,
    /// Source EPG of the flow.
    pub src_epg: EpgId,
    /// Destination EPG of the flow.
    pub dst_epg: EpgId,
    /// Concrete protocol of the flow (never [`Protocol::Any`]).
    pub protocol: Protocol,
    /// Concrete destination port of the flow.
    pub port: u16,
}

impl FlowKey {
    /// Creates a flow key.
    pub fn new(vrf: VrfId, src_epg: EpgId, dst_epg: EpgId, protocol: Protocol, port: u16) -> Self {
        Self {
            vrf,
            src_epg,
            dst_epg,
            protocol,
            port,
        }
    }
}

/// A TCAM rule as rendered in a switch's hardware table (T-type rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TcamRule {
    /// The match fields.
    pub matcher: RuleMatch,
    /// Action applied to matching traffic.
    pub action: Action,
    /// Priority; higher values win when rules overlap. The implicit
    /// deny-everything rule has priority 0.
    pub priority: u16,
}

impl TcamRule {
    /// Priority assigned to explicitly generated allow rules.
    pub const DEFAULT_ALLOW_PRIORITY: u16 = 100;

    /// Creates an allow rule with the default priority.
    pub fn allow(matcher: RuleMatch) -> Self {
        Self {
            matcher,
            action: Action::Allow,
            priority: Self::DEFAULT_ALLOW_PRIORITY,
        }
    }

    /// Creates a deny rule with the default priority.
    pub fn deny(matcher: RuleMatch) -> Self {
        Self {
            matcher,
            action: Action::Deny,
            priority: Self::DEFAULT_ALLOW_PRIORITY,
        }
    }

    /// Returns `true` if the rule matches `flow`.
    pub fn matches(&self, flow: &FlowKey) -> bool {
        self.matcher.covers(flow)
    }

    /// The (unordered) EPG pair this rule belongs to.
    pub fn pair(&self) -> EpgPair {
        self.matcher.pair()
    }
}

impl fmt::Display for TcamRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[p{}] {} {}", self.priority, self.matcher, self.action)
    }
}

/// Evaluates a list of TCAM rules against a flow using highest-priority-first,
/// whitelisting semantics: if no rule matches, the flow is denied.
///
/// Ties on priority are broken by taking the first matching rule in list order,
/// mirroring real TCAM lookup behaviour.
pub fn evaluate(rules: &[TcamRule], flow: &FlowKey) -> Action {
    let mut best: Option<&TcamRule> = None;
    for rule in rules {
        if rule.matches(flow) {
            match best {
                Some(b) if b.priority >= rule.priority => {}
                _ => best = Some(rule),
            }
        }
    }
    best.map(|r| r.action).unwrap_or(Action::Deny)
}

/// The provenance of a logical rule: the policy objects it was derived from.
///
/// Those objects are exactly the shared risks of the EPG pair behind the rule
/// (§III of the paper): the VRF, both EPGs, the contract, the filter and — once
/// the rule is assigned to a switch — that switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleProvenance {
    /// The VRF scoping the rule.
    pub vrf: VrfId,
    /// The consumer-side EPG.
    pub consumer: EpgId,
    /// The provider-side EPG.
    pub provider: EpgId,
    /// The contract that produced the rule.
    pub contract: ContractId,
    /// The filter entry's parent filter.
    pub filter: FilterId,
}

impl RuleProvenance {
    /// Creates the provenance record.
    pub fn new(
        vrf: VrfId,
        consumer: EpgId,
        provider: EpgId,
        contract: ContractId,
        filter: FilterId,
    ) -> Self {
        Self {
            vrf,
            consumer,
            provider,
            contract,
            filter,
        }
    }

    /// Policy objects the rule relies on, excluding the switch.
    pub fn policy_objects(&self) -> Vec<ObjectId> {
        vec![
            ObjectId::Vrf(self.vrf),
            ObjectId::Epg(self.consumer),
            ObjectId::Epg(self.provider),
            ObjectId::Contract(self.contract),
            ObjectId::Filter(self.filter),
        ]
    }

    /// Policy objects plus the switch the rule is deployed on.
    pub fn objects_with_switch(&self, switch: SwitchId) -> Vec<ObjectId> {
        let mut objs = self.policy_objects();
        objs.push(ObjectId::Switch(switch));
        objs
    }

    /// The (unordered) EPG pair of the rule.
    pub fn pair(&self) -> EpgPair {
        EpgPair::new(self.consumer, self.provider)
    }
}

/// A logical (L-type) rule: the TCAM rule the controller expects to see in a
/// given switch, together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalRule {
    /// The switch this rule must be rendered on.
    pub switch: SwitchId,
    /// The expected TCAM rule.
    pub rule: TcamRule,
    /// The objects the rule was derived from.
    pub provenance: RuleProvenance,
}

impl LogicalRule {
    /// Creates a logical rule destined for `switch`.
    pub fn new(switch: SwitchId, rule: TcamRule, provenance: RuleProvenance) -> Self {
        Self {
            switch,
            rule,
            provenance,
        }
    }

    /// The (unordered) EPG pair of the rule.
    pub fn pair(&self) -> EpgPair {
        self.rule.pair()
    }

    /// All objects (including the switch) this rule relies on.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.provenance.objects_with_switch(self.switch)
    }
}

impl fmt::Display for LogicalRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.rule, self.switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_match() -> RuleMatch {
        RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::single(80),
        )
    }

    #[test]
    fn rule_match_covers_exact_flow() {
        let m = sample_match();
        let flow = FlowKey::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            80,
        );
        assert!(m.covers(&flow));
    }

    #[test]
    fn rule_match_respects_direction() {
        let m = sample_match();
        let reverse = FlowKey::new(
            VrfId::new(101),
            EpgId::new(2),
            EpgId::new(1),
            Protocol::Tcp,
            80,
        );
        assert!(!m.covers(&reverse));
    }

    #[test]
    fn rule_match_respects_vrf_and_port() {
        let m = sample_match();
        let wrong_vrf = FlowKey::new(
            VrfId::new(102),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            80,
        );
        let wrong_port = FlowKey::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            81,
        );
        assert!(!m.covers(&wrong_vrf));
        assert!(!m.covers(&wrong_port));
    }

    #[test]
    fn evaluate_is_deny_by_default() {
        let flow = FlowKey::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            80,
        );
        assert_eq!(evaluate(&[], &flow), Action::Deny);
    }

    #[test]
    fn evaluate_prefers_higher_priority() {
        let m = sample_match();
        let allow = TcamRule {
            matcher: m,
            action: Action::Allow,
            priority: 10,
        };
        let deny = TcamRule {
            matcher: m,
            action: Action::Deny,
            priority: 20,
        };
        let flow = FlowKey::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            80,
        );
        assert_eq!(evaluate(&[allow, deny], &flow), Action::Deny);
        assert_eq!(evaluate(&[deny, allow], &flow), Action::Deny);
        let allow_hi = TcamRule {
            matcher: m,
            action: Action::Allow,
            priority: 30,
        };
        assert_eq!(evaluate(&[deny, allow_hi], &flow), Action::Allow);
    }

    #[test]
    fn evaluate_breaks_priority_ties_by_list_order() {
        let m = sample_match();
        let allow = TcamRule {
            matcher: m,
            action: Action::Allow,
            priority: 10,
        };
        let deny = TcamRule {
            matcher: m,
            action: Action::Deny,
            priority: 10,
        };
        let flow = FlowKey::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            80,
        );
        assert_eq!(evaluate(&[allow, deny], &flow), Action::Allow);
        assert_eq!(evaluate(&[deny, allow], &flow), Action::Deny);
    }

    #[test]
    fn provenance_lists_all_five_policy_objects() {
        let prov = RuleProvenance::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            ContractId::new(3),
            FilterId::new(4),
        );
        let objs = prov.policy_objects();
        assert_eq!(objs.len(), 5);
        assert!(objs.contains(&ObjectId::Vrf(VrfId::new(101))));
        assert!(objs.contains(&ObjectId::Epg(EpgId::new(1))));
        assert!(objs.contains(&ObjectId::Epg(EpgId::new(2))));
        assert!(objs.contains(&ObjectId::Contract(ContractId::new(3))));
        assert!(objs.contains(&ObjectId::Filter(FilterId::new(4))));
        let with_switch = prov.objects_with_switch(SwitchId::new(7));
        assert_eq!(with_switch.len(), 6);
        assert!(with_switch.contains(&ObjectId::Switch(SwitchId::new(7))));
    }

    #[test]
    fn logical_rule_pair_is_unordered() {
        let prov = RuleProvenance::new(
            VrfId::new(101),
            EpgId::new(2),
            EpgId::new(1),
            ContractId::new(3),
            FilterId::new(4),
        );
        let rule = TcamRule::allow(sample_match());
        let l = LogicalRule::new(SwitchId::new(1), rule, prov);
        assert_eq!(l.pair(), EpgPair::new(EpgId::new(1), EpgId::new(2)));
        assert_eq!(l.objects().len(), 6);
    }

    #[test]
    fn display_forms_are_informative() {
        let rule = TcamRule::allow(sample_match());
        let text = rule.to_string();
        assert!(text.contains("vrf-101"));
        assert!(text.contains("allow"));
        assert!(text.contains("80"));
    }
}
