//! # scout-policy
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! The network-policy object model used by the SCOUT fault-localization system
//! (reproduction of *Fault Localization in Large-Scale Network Policy
//! Deployment*, ICDCS 2018).
//!
//! The model mirrors application-centric policy controllers (Cisco APIC, GBP,
//! PGA): tenants own [`Vrf`]s, VRFs scope [`Epg`]s, EPGs contain [`Endpoint`]s
//! attached to leaf [`Switch`]es, and [`Contract`]s glue EPG pairs to
//! [`Filter`]s that whitelist protocol/port combinations. A validated snapshot
//! of all objects is a [`PolicyUniverse`], which offers the dependency queries
//! that the policy compiler, the risk models and the evaluation harness rely
//! on (e.g. *which EPG pairs share this object?* — Figure 3 of the paper).
//!
//! The crate also defines the low-level rule representation: [`TcamRule`] for
//! rules rendered in switch hardware (T-type rules) and [`LogicalRule`] for
//! controller-side expectations with provenance (L-type rules).
//!
//! # Example
//!
//! ```
//! use scout_policy::{sample, EpgPair, ObjectId};
//!
//! let universe = sample::three_tier();
//! let pair = EpgPair::new(sample::APP, sample::DB);
//! let risks = universe.objects_for_pair(pair);
//! assert!(risks.contains(&ObjectId::Filter(sample::F_700)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod object;
pub mod pair;
pub mod rule;
pub mod sample;
pub mod universe;

pub use error::PolicyError;
pub use ids::{
    ContractId, EndpointId, EpgId, FilterId, ObjectClass, ObjectId, SwitchId, TenantId, VrfId,
};
pub use object::{
    Action, Contract, ContractBinding, Endpoint, Epg, Filter, FilterEntry, PortRange, Protocol,
    Switch, Tenant, Vrf,
};
pub use pair::{EpgPair, SwitchEpgPair};
pub use rule::{evaluate, FlowKey, LogicalRule, RuleMatch, RuleProvenance, TcamRule};
pub use universe::{PolicyBuilder, PolicyUniverse, UniverseStats};
