//! Policy object definitions.
//!
//! The object model mirrors the abstraction used by application-centric policy
//! controllers (Cisco APIC, GBP, PGA): tenants own VRFs, VRFs scope EPGs, EPGs
//! contain endpoints attached to leaf switches, and contracts glue EPG pairs to
//! filters which whitelist protocol/port combinations (§II-A of the paper).

use crate::ids::{ContractId, EndpointId, EpgId, FilterId, SwitchId, TenantId, VrfId};

/// An administrative tenant owning a slice of the policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tenant {
    /// Unique tenant identifier.
    pub id: TenantId,
    /// Human-readable name, e.g. `"acme"`.
    pub name: String,
}

impl Tenant {
    /// Creates a tenant with the given id and name.
    pub fn new(id: TenantId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
        }
    }
}

/// A virtual routing and forwarding context (layer-3 private network).
///
/// All EPGs of a tenant policy live inside a VRF; rules never cross VRFs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Vrf {
    /// Unique VRF identifier.
    pub id: VrfId,
    /// Human-readable name, e.g. `"prod-net"`.
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
}

impl Vrf {
    /// Creates a VRF owned by `tenant`.
    pub fn new(id: VrfId, name: impl Into<String>, tenant: TenantId) -> Self {
        Self {
            id,
            name: name.into(),
            tenant,
        }
    }
}

/// An endpoint group: a set of endpoints that share the same policy treatment
/// (e.g. all web-tier VMs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Epg {
    /// Unique EPG identifier.
    pub id: EpgId,
    /// Human-readable name, e.g. `"Web"`.
    pub name: String,
    /// The VRF scoping this EPG.
    pub vrf: VrfId,
}

impl Epg {
    /// Creates an EPG scoped to `vrf`.
    pub fn new(id: EpgId, name: impl Into<String>, vrf: VrfId) -> Self {
        Self {
            id,
            name: name.into(),
            vrf,
        }
    }
}

/// An individual endpoint (server, VM or middlebox interface) and the leaf
/// switch it is attached to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Unique endpoint identifier.
    pub id: EndpointId,
    /// Human-readable name, e.g. `"web-vm-3"`.
    pub name: String,
    /// The EPG this endpoint belongs to.
    pub epg: EpgId,
    /// The leaf switch this endpoint is attached to.
    pub switch: SwitchId,
}

impl Endpoint {
    /// Creates an endpoint in `epg` attached to `switch`.
    pub fn new(id: EndpointId, name: impl Into<String>, epg: EpgId, switch: SwitchId) -> Self {
        Self {
            id,
            name: name.into(),
            epg,
            switch,
        }
    }
}

/// A physical leaf switch of the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Switch {
    /// Unique switch identifier.
    pub id: SwitchId,
    /// Human-readable name, e.g. `"leaf-101"`.
    pub name: String,
    /// Number of TCAM entries this switch can hold.
    pub tcam_capacity: usize,
}

impl Switch {
    /// Default TCAM capacity used when none is specified.
    pub const DEFAULT_TCAM_CAPACITY: usize = 64 * 1024;

    /// Creates a switch with the default TCAM capacity.
    pub fn new(id: SwitchId, name: impl Into<String>) -> Self {
        Self::with_capacity(id, name, Self::DEFAULT_TCAM_CAPACITY)
    }

    /// Creates a switch with an explicit TCAM capacity.
    pub fn with_capacity(id: SwitchId, name: impl Into<String>, tcam_capacity: usize) -> Self {
        Self {
            id,
            name: name.into(),
            tcam_capacity,
        }
    }
}

/// The transport protocol matched by a filter entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// Match any IP protocol.
    Any,
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// ICMP (protocol number 1).
    Icmp,
}

impl Protocol {
    /// Numeric encoding used in the TCAM header space (0 is reserved for "any").
    pub fn code(self) -> u8 {
        match self {
            Protocol::Any => 0,
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// Returns `true` if `self` matches packets of `other`.
    ///
    /// [`Protocol::Any`] matches every protocol; a concrete protocol only
    /// matches itself.
    pub fn matches(self, other: Protocol) -> bool {
        self == Protocol::Any || self == other
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Protocol::Any => "any",
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Icmp => "icmp",
        };
        f.write_str(s)
    }
}

/// An inclusive destination-port range matched by a filter entry.
///
/// `PortRange::any()` matches every port (used for ICMP or port-less filters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortRange {
    /// Lowest port matched (inclusive).
    pub start: u16,
    /// Highest port matched (inclusive).
    pub end: u16,
}

impl PortRange {
    /// A range covering every port.
    pub const fn any() -> Self {
        Self {
            start: 0,
            end: u16::MAX,
        }
    }

    /// A range matching exactly one port.
    pub const fn single(port: u16) -> Self {
        Self {
            start: port,
            end: port,
        }
    }

    /// A range matching `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u16, end: u16) -> Self {
        assert!(start <= end, "port range start must not exceed end");
        Self { start, end }
    }

    /// Returns `true` if `port` is inside the range.
    pub fn contains(&self, port: u16) -> bool {
        self.start <= port && port <= self.end
    }

    /// Returns `true` if the range covers every port.
    pub fn is_any(&self) -> bool {
        self.start == 0 && self.end == u16::MAX
    }

    /// Returns `true` if the two ranges share at least one port.
    pub fn overlaps(&self, other: &PortRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Number of ports covered by the range.
    pub fn len(&self) -> u32 {
        u32::from(self.end) - u32::from(self.start) + 1
    }

    /// A port range is never empty; provided for clippy-friendliness alongside
    /// [`PortRange::len`].
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for PortRange {
    fn default() -> Self {
        Self::any()
    }
}

impl std::fmt::Display for PortRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_any() {
            f.write_str("*")
        } else if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

/// Whether matched traffic is permitted or dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Permit matching traffic.
    Allow,
    /// Drop matching traffic.
    Deny,
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Allow => f.write_str("allow"),
            Action::Deny => f.write_str("deny"),
        }
    }
}

/// A single entry of a filter: protocol + destination-port range + action.
///
/// The paper's example "Filter: port 80/allow" corresponds to
/// `FilterEntry::allow(Protocol::Tcp, PortRange::single(80))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterEntry {
    /// Matched transport protocol.
    pub protocol: Protocol,
    /// Matched destination-port range.
    pub ports: PortRange,
    /// Action applied to matching traffic.
    pub action: Action,
}

impl FilterEntry {
    /// Creates an allow entry.
    pub fn allow(protocol: Protocol, ports: PortRange) -> Self {
        Self {
            protocol,
            ports,
            action: Action::Allow,
        }
    }

    /// Creates an allow entry for a single TCP port — the most common shape in
    /// the paper's examples.
    pub fn allow_tcp_port(port: u16) -> Self {
        Self::allow(Protocol::Tcp, PortRange::single(port))
    }
}

impl std::fmt::Display for FilterEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}:{}", self.protocol, self.ports, self.action)
    }
}

/// A filter: a named set of whitelist entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Filter {
    /// Unique filter identifier.
    pub id: FilterId,
    /// Human-readable name, e.g. `"http"`.
    pub name: String,
    /// The entries of the filter, in match order.
    pub entries: Vec<FilterEntry>,
}

impl Filter {
    /// Creates a filter from its entries.
    pub fn new(id: FilterId, name: impl Into<String>, entries: Vec<FilterEntry>) -> Self {
        Self {
            id,
            name: name.into(),
            entries,
        }
    }

    /// Creates a single-entry filter allowing one TCP port.
    pub fn tcp_port(id: FilterId, name: impl Into<String>, port: u16) -> Self {
        Self::new(id, name, vec![FilterEntry::allow_tcp_port(port)])
    }
}

/// A contract: the glue object binding consumer/provider EPG pairs to a set of
/// filters (§II-A of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Contract {
    /// Unique contract identifier.
    pub id: ContractId,
    /// Human-readable name, e.g. `"Web-App"`.
    pub name: String,
    /// Filters applied between bound EPG pairs.
    pub filters: Vec<FilterId>,
}

impl Contract {
    /// Creates a contract referencing the given filters.
    pub fn new(id: ContractId, name: impl Into<String>, filters: Vec<FilterId>) -> Self {
        Self {
            id,
            name: name.into(),
            filters,
        }
    }
}

/// A binding between a consumer EPG and a provider EPG through a contract.
///
/// Each binding yields one *EPG pair* in the risk models; directional TCAM
/// rules are generated for both directions of the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContractBinding {
    /// The consumer-side EPG (traffic initiator).
    pub consumer: EpgId,
    /// The provider-side EPG (service side).
    pub provider: EpgId,
    /// The contract governing the pair.
    pub contract: ContractId,
}

impl ContractBinding {
    /// Creates a binding of `consumer` and `provider` through `contract`.
    pub fn new(consumer: EpgId, provider: EpgId, contract: ContractId) -> Self {
        Self {
            consumer,
            provider,
            contract,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_any_matches_everything() {
        for p in [Protocol::Tcp, Protocol::Udp, Protocol::Icmp, Protocol::Any] {
            assert!(Protocol::Any.matches(p));
        }
        assert!(!Protocol::Tcp.matches(Protocol::Udp));
        assert!(Protocol::Tcp.matches(Protocol::Tcp));
    }

    #[test]
    fn protocol_codes_are_standard() {
        assert_eq!(Protocol::Tcp.code(), 6);
        assert_eq!(Protocol::Udp.code(), 17);
        assert_eq!(Protocol::Icmp.code(), 1);
        assert_eq!(Protocol::Any.code(), 0);
    }

    #[test]
    fn port_range_contains_and_overlaps() {
        let r = PortRange::new(80, 90);
        assert!(r.contains(80));
        assert!(r.contains(90));
        assert!(!r.contains(91));
        assert!(r.overlaps(&PortRange::single(85)));
        assert!(r.overlaps(&PortRange::new(90, 100)));
        assert!(!r.overlaps(&PortRange::new(91, 100)));
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn port_range_any_covers_all() {
        let any = PortRange::any();
        assert!(any.is_any());
        assert!(any.contains(0));
        assert!(any.contains(u16::MAX));
        assert_eq!(any.len(), 65536);
        assert_eq!(any.to_string(), "*");
    }

    #[test]
    #[should_panic(expected = "port range start")]
    fn port_range_rejects_inverted_bounds() {
        let _ = PortRange::new(10, 5);
    }

    #[test]
    fn filter_entry_display_matches_paper_style() {
        let e = FilterEntry::allow_tcp_port(80);
        assert_eq!(e.to_string(), "tcp/80:allow");
        assert_eq!(e.action, Action::Allow);
    }

    #[test]
    fn single_port_display() {
        assert_eq!(PortRange::single(700).to_string(), "700");
        assert_eq!(PortRange::new(100, 200).to_string(), "100-200");
    }

    #[test]
    fn switch_default_capacity_is_used() {
        let s = Switch::new(SwitchId::new(1), "leaf-1");
        assert_eq!(s.tcam_capacity, Switch::DEFAULT_TCAM_CAPACITY);
        let s2 = Switch::with_capacity(SwitchId::new(2), "leaf-2", 128);
        assert_eq!(s2.tcam_capacity, 128);
    }

    #[test]
    fn constructors_store_names() {
        let t = Tenant::new(TenantId::new(0), "acme");
        assert_eq!(t.name, "acme");
        let v = Vrf::new(VrfId::new(101), "prod", t.id);
        assert_eq!(v.tenant, t.id);
        let e = Epg::new(EpgId::new(1), "Web", v.id);
        assert_eq!(e.vrf, v.id);
        let ep = Endpoint::new(EndpointId::new(9), "web-1", e.id, SwitchId::new(1));
        assert_eq!(ep.epg, e.id);
        let f = Filter::tcp_port(FilterId::new(3), "http", 80);
        assert_eq!(f.entries.len(), 1);
        let c = Contract::new(ContractId::new(7), "Web-App", vec![f.id]);
        assert_eq!(c.filters, vec![f.id]);
        let b = ContractBinding::new(e.id, EpgId::new(2), c.id);
        assert_eq!(b.contract, c.id);
    }
}
