//! Strongly-typed identifiers for every policy and physical object.
//!
//! Every object class managed by the controller gets its own newtype id so that
//! switch ids, EPG ids, VRF ids and so on can never be confused with each other
//! (see C-NEWTYPE in the Rust API guidelines). The generic [`ObjectId`] enum is
//! the union used wherever a *shared risk* can be any object class, e.g. in the
//! risk models and in the localization hypothesis.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates a new id from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric index of this id.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a tenant (an administrative domain owning policies).
    TenantId,
    "tenant-"
);
define_id!(
    /// Identifier of a virtual routing and forwarding (VRF) context.
    VrfId,
    "vrf-"
);
define_id!(
    /// Identifier of an endpoint group (EPG).
    EpgId,
    "epg-"
);
define_id!(
    /// Identifier of an individual endpoint (server, VM, middlebox port).
    EndpointId,
    "ep-"
);
define_id!(
    /// Identifier of a contract (glue between EPGs and filters).
    ContractId,
    "contract-"
);
define_id!(
    /// Identifier of a filter (set of allow entries on protocol/port).
    FilterId,
    "filter-"
);
define_id!(
    /// Identifier of a physical leaf switch.
    SwitchId,
    "switch-"
);

/// The class of a policy or physical object.
///
/// This mirrors the object classes the paper treats as shared risks
/// (Figure 3: switches, VRFs, EPGs, filters, contracts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectClass {
    /// A virtual routing and forwarding context.
    Vrf,
    /// An endpoint group.
    Epg,
    /// A contract binding EPGs to filters.
    Contract,
    /// A filter (protocol/port allow entries).
    Filter,
    /// A physical leaf switch.
    Switch,
}

impl ObjectClass {
    /// All object classes, in a stable order.
    pub const ALL: [ObjectClass; 5] = [
        ObjectClass::Vrf,
        ObjectClass::Epg,
        ObjectClass::Contract,
        ObjectClass::Filter,
        ObjectClass::Switch,
    ];

    /// Short human-readable name of the class.
    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Vrf => "vrf",
            ObjectClass::Epg => "epg",
            ObjectClass::Contract => "contract",
            ObjectClass::Filter => "filter",
            ObjectClass::Switch => "switch",
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A reference to any object that can act as a *shared risk* in the risk models.
///
/// Shared risks are the right-hand side of the bipartite risk models (§III-B of
/// the paper): VRFs, EPGs, contracts, filters and, in the controller risk model,
/// physical switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjectId {
    /// A VRF object.
    Vrf(VrfId),
    /// An EPG object.
    Epg(EpgId),
    /// A contract object.
    Contract(ContractId),
    /// A filter object.
    Filter(FilterId),
    /// A physical switch.
    Switch(SwitchId),
}

impl ObjectId {
    /// Returns the class of the referenced object.
    pub fn class(self) -> ObjectClass {
        match self {
            ObjectId::Vrf(_) => ObjectClass::Vrf,
            ObjectId::Epg(_) => ObjectClass::Epg,
            ObjectId::Contract(_) => ObjectClass::Contract,
            ObjectId::Filter(_) => ObjectClass::Filter,
            ObjectId::Switch(_) => ObjectClass::Switch,
        }
    }

    /// Returns the raw numeric index, discarding the class.
    pub fn raw(self) -> u32 {
        match self {
            ObjectId::Vrf(id) => id.raw(),
            ObjectId::Epg(id) => id.raw(),
            ObjectId::Contract(id) => id.raw(),
            ObjectId::Filter(id) => id.raw(),
            ObjectId::Switch(id) => id.raw(),
        }
    }

    /// Returns `true` if this object is a filter.
    pub fn is_filter(self) -> bool {
        matches!(self, ObjectId::Filter(_))
    }

    /// Returns `true` if this object is a physical switch.
    pub fn is_switch(self) -> bool {
        matches!(self, ObjectId::Switch(_))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectId::Vrf(id) => write!(f, "{id}"),
            ObjectId::Epg(id) => write!(f, "{id}"),
            ObjectId::Contract(id) => write!(f, "{id}"),
            ObjectId::Filter(id) => write!(f, "{id}"),
            ObjectId::Switch(id) => write!(f, "{id}"),
        }
    }
}

impl From<VrfId> for ObjectId {
    fn from(id: VrfId) -> Self {
        ObjectId::Vrf(id)
    }
}

impl From<EpgId> for ObjectId {
    fn from(id: EpgId) -> Self {
        ObjectId::Epg(id)
    }
}

impl From<ContractId> for ObjectId {
    fn from(id: ContractId) -> Self {
        ObjectId::Contract(id)
    }
}

impl From<FilterId> for ObjectId {
    fn from(id: FilterId) -> Self {
        ObjectId::Filter(id)
    }
}

impl From<SwitchId> for ObjectId {
    fn from(id: SwitchId) -> Self {
        ObjectId::Switch(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn id_display_uses_class_prefix() {
        assert_eq!(VrfId::new(101).to_string(), "vrf-101");
        assert_eq!(EpgId::new(7).to_string(), "epg-7");
        assert_eq!(ContractId::new(3).to_string(), "contract-3");
        assert_eq!(FilterId::new(80).to_string(), "filter-80");
        assert_eq!(SwitchId::new(2).to_string(), "switch-2");
        assert_eq!(EndpointId::new(1).to_string(), "ep-1");
        assert_eq!(TenantId::new(0).to_string(), "tenant-0");
    }

    #[test]
    fn id_roundtrips_through_u32() {
        let id = EpgId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn object_id_class_matches_variant() {
        assert_eq!(ObjectId::Vrf(VrfId::new(1)).class(), ObjectClass::Vrf);
        assert_eq!(ObjectId::Epg(EpgId::new(1)).class(), ObjectClass::Epg);
        assert_eq!(
            ObjectId::Contract(ContractId::new(1)).class(),
            ObjectClass::Contract
        );
        assert_eq!(
            ObjectId::Filter(FilterId::new(1)).class(),
            ObjectClass::Filter
        );
        assert_eq!(
            ObjectId::Switch(SwitchId::new(1)).class(),
            ObjectClass::Switch
        );
    }

    #[test]
    fn object_id_from_impls_preserve_raw_value() {
        assert_eq!(ObjectId::from(VrfId::new(9)).raw(), 9);
        assert_eq!(ObjectId::from(EpgId::new(8)).raw(), 8);
        assert_eq!(ObjectId::from(ContractId::new(7)).raw(), 7);
        assert_eq!(ObjectId::from(FilterId::new(6)).raw(), 6);
        assert_eq!(ObjectId::from(SwitchId::new(5)).raw(), 5);
    }

    #[test]
    fn object_ids_of_different_classes_are_distinct() {
        let mut set = BTreeSet::new();
        set.insert(ObjectId::Vrf(VrfId::new(1)));
        set.insert(ObjectId::Epg(EpgId::new(1)));
        set.insert(ObjectId::Filter(FilterId::new(1)));
        set.insert(ObjectId::Contract(ContractId::new(1)));
        set.insert(ObjectId::Switch(SwitchId::new(1)));
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn object_class_names_are_unique() {
        let names: BTreeSet<_> = ObjectClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), ObjectClass::ALL.len());
    }

    #[test]
    fn is_filter_and_is_switch_helpers() {
        assert!(ObjectId::Filter(FilterId::new(0)).is_filter());
        assert!(!ObjectId::Filter(FilterId::new(0)).is_switch());
        assert!(ObjectId::Switch(SwitchId::new(0)).is_switch());
        assert!(!ObjectId::Vrf(VrfId::new(0)).is_filter());
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(EpgId::new(1) < EpgId::new(2));
        assert!(ObjectId::Vrf(VrfId::new(1)) < ObjectId::Vrf(VrfId::new(2)));
    }
}
