//! EPG-pair abstractions — the "affected elements" of the risk models.
//!
//! In the switch risk model the affected element is an [`EpgPair`] deployed on a
//! given switch; in the controller risk model it is a [`SwitchEpgPair`] triplet
//! (switch id + EPG pair) so that a failure limited to one switch can be
//! distinguished from a global one (§III-B of the paper).

use std::fmt;

use crate::ids::{EpgId, SwitchId};

/// An unordered pair of EPGs that are allowed to communicate through at least
/// one contract.
///
/// The pair is normalized so that `a <= b`; `EpgPair::new(x, y)` and
/// `EpgPair::new(y, x)` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpgPair {
    /// The smaller EPG id of the pair.
    pub a: EpgId,
    /// The larger EPG id of the pair.
    pub b: EpgId,
}

impl EpgPair {
    /// Creates a normalized pair from two EPG ids (order does not matter).
    pub fn new(x: EpgId, y: EpgId) -> Self {
        if x <= y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }

    /// Returns `true` if `epg` is one of the two members.
    pub fn contains(&self, epg: EpgId) -> bool {
        self.a == epg || self.b == epg
    }

    /// Returns the member other than `epg`, or `None` if `epg` is not a member.
    pub fn other(&self, epg: EpgId) -> Option<EpgId> {
        if self.a == epg {
            Some(self.b)
        } else if self.b == epg {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns both members as an array `[a, b]`.
    pub fn members(&self) -> [EpgId; 2] {
        [self.a, self.b]
    }

    /// Returns `true` if the two EPGs are the same (intra-EPG pair).
    pub fn is_intra(&self) -> bool {
        self.a == self.b
    }
}

impl fmt::Display for EpgPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}~{}", self.a, self.b)
    }
}

/// A (switch, EPG pair) triplet — the affected element of the controller risk
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchEpgPair {
    /// The switch on which the pair's rules should be deployed.
    pub switch: SwitchId,
    /// The EPG pair.
    pub pair: EpgPair,
}

impl SwitchEpgPair {
    /// Creates a triplet for `pair` deployed on `switch`.
    pub fn new(switch: SwitchId, pair: EpgPair) -> Self {
        Self { switch, pair }
    }
}

impl fmt::Display for SwitchEpgPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.switch, self.pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_order_insensitive() {
        let p1 = EpgPair::new(EpgId::new(5), EpgId::new(2));
        let p2 = EpgPair::new(EpgId::new(2), EpgId::new(5));
        assert_eq!(p1, p2);
        assert_eq!(p1.a, EpgId::new(2));
        assert_eq!(p1.b, EpgId::new(5));
    }

    #[test]
    fn contains_and_other() {
        let p = EpgPair::new(EpgId::new(1), EpgId::new(2));
        assert!(p.contains(EpgId::new(1)));
        assert!(p.contains(EpgId::new(2)));
        assert!(!p.contains(EpgId::new(3)));
        assert_eq!(p.other(EpgId::new(1)), Some(EpgId::new(2)));
        assert_eq!(p.other(EpgId::new(2)), Some(EpgId::new(1)));
        assert_eq!(p.other(EpgId::new(3)), None);
    }

    #[test]
    fn intra_pair_detection() {
        assert!(EpgPair::new(EpgId::new(4), EpgId::new(4)).is_intra());
        assert!(!EpgPair::new(EpgId::new(4), EpgId::new(5)).is_intra());
    }

    #[test]
    fn display_forms() {
        let p = EpgPair::new(EpgId::new(1), EpgId::new(2));
        assert_eq!(p.to_string(), "epg-1~epg-2");
        let t = SwitchEpgPair::new(SwitchId::new(3), p);
        assert_eq!(t.to_string(), "switch-3:epg-1~epg-2");
    }

    #[test]
    fn members_returns_sorted_pair() {
        let p = EpgPair::new(EpgId::new(9), EpgId::new(3));
        assert_eq!(p.members(), [EpgId::new(3), EpgId::new(9)]);
    }

    #[test]
    fn triplets_with_different_switches_are_distinct() {
        let pair = EpgPair::new(EpgId::new(1), EpgId::new(2));
        let t1 = SwitchEpgPair::new(SwitchId::new(1), pair);
        let t2 = SwitchEpgPair::new(SwitchId::new(2), pair);
        assert_ne!(t1, t2);
    }
}
