//! The canonical 3-tier Web/App/DB example policy of Figure 1.
//!
//! The example mirrors the paper exactly: a tenant intent allowing port 80
//! between Web and App, and ports 80 and 700 between App and DB, deployed on a
//! three-switch fabric with one endpoint per tier (EP1 on S1, EP2 on S2, EP3 on
//! S3). It is used throughout the unit tests of the other crates and by the
//! quickstart example.

use crate::ids::{ContractId, EndpointId, EpgId, FilterId, SwitchId, TenantId, VrfId};
use crate::object::{
    Contract, ContractBinding, Endpoint, Epg, Filter, FilterEntry, Switch, Tenant, Vrf,
};
use crate::universe::PolicyUniverse;

/// The tenant of the example.
pub const TENANT: TenantId = TenantId::new(1);
/// VRF 101 of Figure 1.
pub const VRF: VrfId = VrfId::new(101);
/// EPG "Web".
pub const WEB: EpgId = EpgId::new(1);
/// EPG "App".
pub const APP: EpgId = EpgId::new(2);
/// EPG "DB".
pub const DB: EpgId = EpgId::new(3);
/// Filter allowing TCP port 80.
pub const F_HTTP: FilterId = FilterId::new(1);
/// Filter allowing TCP port 700.
pub const F_700: FilterId = FilterId::new(2);
/// Contract "Web-App".
pub const C_WEB_APP: ContractId = ContractId::new(1);
/// Contract "App-DB".
pub const C_APP_DB: ContractId = ContractId::new(2);
/// Leaf switch S1 (hosts EP1 ∈ Web).
pub const S1: SwitchId = SwitchId::new(1);
/// Leaf switch S2 (hosts EP2 ∈ App).
pub const S2: SwitchId = SwitchId::new(2);
/// Leaf switch S3 (hosts EP3 ∈ DB).
pub const S3: SwitchId = SwitchId::new(3);
/// Endpoint EP1 ∈ Web on S1.
pub const EP1: EndpointId = EndpointId::new(1);
/// Endpoint EP2 ∈ App on S2.
pub const EP2: EndpointId = EndpointId::new(2);
/// Endpoint EP3 ∈ DB on S3.
pub const EP3: EndpointId = EndpointId::new(3);

/// Builds the 3-tier example universe of Figure 1.
///
/// # Panics
///
/// Never panics: the example is statically well-formed.
pub fn three_tier() -> PolicyUniverse {
    three_tier_with_capacity(Switch::DEFAULT_TCAM_CAPACITY)
}

/// Builds the 3-tier example with an explicit per-switch TCAM capacity, used by
/// the TCAM-overflow use case.
pub fn three_tier_with_capacity(tcam_capacity: usize) -> PolicyUniverse {
    let mut b = PolicyUniverse::builder();
    b.tenant(Tenant::new(TENANT, "3tier"))
        .vrf(Vrf::new(VRF, "vrf-101", TENANT))
        .epg(Epg::new(WEB, "Web", VRF))
        .epg(Epg::new(APP, "App", VRF))
        .epg(Epg::new(DB, "DB", VRF))
        .switch(Switch::with_capacity(S1, "S1", tcam_capacity))
        .switch(Switch::with_capacity(S2, "S2", tcam_capacity))
        .switch(Switch::with_capacity(S3, "S3", tcam_capacity))
        .endpoint(Endpoint::new(EP1, "EP1", WEB, S1))
        .endpoint(Endpoint::new(EP2, "EP2", APP, S2))
        .endpoint(Endpoint::new(EP3, "EP3", DB, S3))
        .filter(Filter::new(
            F_HTTP,
            "port-80",
            vec![FilterEntry::allow_tcp_port(80)],
        ))
        .filter(Filter::new(
            F_700,
            "port-700",
            vec![FilterEntry::allow_tcp_port(700)],
        ))
        .contract(Contract::new(C_WEB_APP, "Web-App", vec![F_HTTP]))
        .contract(Contract::new(C_APP_DB, "App-DB", vec![F_HTTP, F_700]))
        .bind(ContractBinding::new(WEB, APP, C_WEB_APP))
        .bind(ContractBinding::new(APP, DB, C_APP_DB));
    b.build()
        .expect("the built-in 3-tier example policy is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;
    use crate::pair::EpgPair;

    #[test]
    fn example_builds() {
        let u = three_tier();
        assert_eq!(u.stats().epg_pairs, 2);
        assert_eq!(u.stats().switches, 3);
    }

    #[test]
    fn example_capacity_is_configurable() {
        let u = three_tier_with_capacity(4);
        assert_eq!(u.switch(S1).unwrap().tcam_capacity, 4);
        assert_eq!(u.switch(S3).unwrap().tcam_capacity, 4);
    }

    #[test]
    fn app_db_pair_uses_both_filters() {
        let u = three_tier();
        let objs = u.objects_for_pair(EpgPair::new(APP, DB));
        assert!(objs.contains(&ObjectId::Filter(F_HTTP)));
        assert!(objs.contains(&ObjectId::Filter(F_700)));
    }

    #[test]
    fn endpoint_placement_matches_figure_1() {
        let u = three_tier();
        assert_eq!(u.endpoint(EP1).unwrap().switch, S1);
        assert_eq!(u.endpoint(EP2).unwrap().switch, S2);
        assert_eq!(u.endpoint(EP3).unwrap().switch, S3);
        assert_eq!(u.endpoint(EP1).unwrap().epg, WEB);
        assert_eq!(u.endpoint(EP2).unwrap().epg, APP);
        assert_eq!(u.endpoint(EP3).unwrap().epg, DB);
    }
}
