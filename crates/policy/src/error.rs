//! Error types for policy construction and validation.

use std::error::Error as StdError;
use std::fmt;

use crate::ids::{ContractId, EndpointId, EpgId, FilterId, ObjectId, SwitchId, VrfId};

/// Errors produced while building or validating a [`PolicyUniverse`].
///
/// [`PolicyUniverse`]: crate::universe::PolicyUniverse
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// An EPG references a VRF that does not exist in the universe.
    UnknownVrf {
        /// The EPG holding the dangling reference.
        epg: EpgId,
        /// The missing VRF.
        vrf: VrfId,
    },
    /// An endpoint references an EPG that does not exist.
    UnknownEpg {
        /// The endpoint holding the dangling reference.
        endpoint: EndpointId,
        /// The missing EPG.
        epg: EpgId,
    },
    /// An endpoint is attached to a switch that does not exist.
    UnknownSwitch {
        /// The endpoint holding the dangling reference.
        endpoint: EndpointId,
        /// The missing switch.
        switch: SwitchId,
    },
    /// A contract references a filter that does not exist.
    UnknownFilter {
        /// The contract holding the dangling reference.
        contract: ContractId,
        /// The missing filter.
        filter: FilterId,
    },
    /// A contract binding references a contract that does not exist.
    UnknownContract {
        /// The missing contract.
        contract: ContractId,
    },
    /// A contract binding references an EPG that does not exist.
    UnknownBindingEpg {
        /// The contract of the binding.
        contract: ContractId,
        /// The missing EPG.
        epg: EpgId,
    },
    /// Two EPGs bound by a contract live in different VRFs.
    CrossVrfBinding {
        /// The contract of the binding.
        contract: ContractId,
        /// The consumer-side EPG.
        consumer: EpgId,
        /// The provider-side EPG.
        provider: EpgId,
    },
    /// An object with the same id was defined twice.
    DuplicateObject {
        /// The duplicated object.
        object: ObjectId,
    },
    /// An endpoint with the same id was defined twice.
    DuplicateEndpoint {
        /// The duplicated endpoint.
        endpoint: EndpointId,
    },
    /// A contract contains no filters, so it can never produce rules.
    EmptyContract {
        /// The offending contract.
        contract: ContractId,
    },
    /// A filter contains no entries, so it can never produce rules.
    EmptyFilter {
        /// The offending filter.
        filter: FilterId,
    },
    /// A lookup for an object that is not part of the universe.
    NoSuchObject {
        /// The missing object.
        object: ObjectId,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownVrf { epg, vrf } => {
                write!(f, "{epg} references unknown {vrf}")
            }
            PolicyError::UnknownEpg { endpoint, epg } => {
                write!(f, "{endpoint} references unknown {epg}")
            }
            PolicyError::UnknownSwitch { endpoint, switch } => {
                write!(f, "{endpoint} attached to unknown {switch}")
            }
            PolicyError::UnknownFilter { contract, filter } => {
                write!(f, "{contract} references unknown {filter}")
            }
            PolicyError::UnknownContract { contract } => {
                write!(f, "binding references unknown {contract}")
            }
            PolicyError::UnknownBindingEpg { contract, epg } => {
                write!(f, "binding for {contract} references unknown {epg}")
            }
            PolicyError::CrossVrfBinding {
                contract,
                consumer,
                provider,
            } => write!(
                f,
                "{contract} binds {consumer} and {provider} which live in different vrfs"
            ),
            PolicyError::DuplicateObject { object } => {
                write!(f, "object {object} defined more than once")
            }
            PolicyError::DuplicateEndpoint { endpoint } => {
                write!(f, "endpoint {endpoint} defined more than once")
            }
            PolicyError::EmptyContract { contract } => {
                write!(f, "{contract} has no filters")
            }
            PolicyError::EmptyFilter { filter } => {
                write!(f, "{filter} has no entries")
            }
            PolicyError::NoSuchObject { object } => {
                write!(f, "no such object {object}")
            }
        }
    }
}

impl StdError for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_involved_ids() {
        let err = PolicyError::UnknownVrf {
            epg: EpgId::new(3),
            vrf: VrfId::new(9),
        };
        let msg = err.to_string();
        assert!(msg.contains("epg-3"));
        assert!(msg.contains("vrf-9"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: StdError + Send + Sync + 'static>() {}
        assert_error::<PolicyError>();
    }

    #[test]
    fn cross_vrf_display_lists_both_epgs() {
        let err = PolicyError::CrossVrfBinding {
            contract: ContractId::new(1),
            consumer: EpgId::new(2),
            provider: EpgId::new(3),
        };
        let msg = err.to_string();
        assert!(msg.contains("contract-1"));
        assert!(msg.contains("epg-2"));
        assert!(msg.contains("epg-3"));
    }

    #[test]
    fn duplicate_object_display() {
        let err = PolicyError::DuplicateObject {
            object: ObjectId::Filter(FilterId::new(4)),
        };
        assert!(err.to_string().contains("filter-4"));
    }
}
