//! Durable session checkpoints: serialize an [`AnalysisSession`] to bytes and
//! restore it — plus a replay tail — bit-identically.
//!
//! The paper's SCOUT is a continuously running service; a monitor that loses
//! all session state on restart would have to re-bootstrap every fabric from
//! a full snapshot, dropping the delta stream on the floor. A [`Snapshot`]
//! makes sessions restartable:
//!
//! * [`AnalysisSession::checkpoint`] captures the session's durable core —
//!   the [`FabricView`] mirror, the epoch cursor, and the current full
//!   [`ScoutReport`] (which carries the equivalence check whose missing rules
//!   are exactly the risk-model failure marks each ingest re-derives and
//!   rolls back);
//! * [`EventBatch`]es that arrive after the checkpoint are appended to the
//!   snapshot's **replay tail** ([`Snapshot::push_tail`]), so a crash between
//!   checkpoints loses nothing that was delivered;
//! * [`ScoutEngine::restore`](crate::ScoutEngine::restore) rebuilds a live
//!   session from the snapshot and replays the tail through the ordinary
//!   [`AnalysisSession::ingest`] path.
//!
//! The restored session is **bit-identical** to one that never stopped: its
//! report, every subsequent [`ReportDelta`], and every
//! future `full_report()` match an uninterrupted session exactly (enforced by
//! the root test `tests/checkpoint.rs` over a 200-epoch soak timeline).
//!
//! # Encoding
//!
//! Snapshots use the in-house wire format of [`scout_fabric::wire`] — no
//! registry dependencies, consistent with the repo's `rand`-shim approach —
//! framed by a 4-byte magic, a version word and a CRC-32 of the payload, so
//! schema changes and on-disk corruption both fail loudly
//! ([`SnapshotError::UnsupportedVersion`],
//! [`SnapshotError::ChecksumMismatch`]) instead of decoding garbage. Pristine risk models and BDD caches are *not* serialized: both
//! are pure functions of the view (and analysis results never depend on
//! cache state), so [`ScoutEngine::restore`](crate::ScoutEngine::restore)
//! rebuilds them, keeping snapshots proportional to the monitored state.
//!
//! # Example
//!
//! ```
//! use scout_core::{ScoutEngine, Snapshot};
//! use scout_fabric::{EventBatch, Fabric, FabricProbe};
//! use scout_policy::sample;
//!
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//! let engine = ScoutEngine::new();
//! let mut session = engine.open_session(&fabric);
//! let mut probe = FabricProbe::new(&fabric);
//!
//! // Checkpoint, then keep feeding the live session while also recording
//! // the post-checkpoint batches in the snapshot's replay tail.
//! let mut snapshot = session.checkpoint();
//! fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
//! let batch = EventBatch::new(session.next_epoch(), probe.observe(&fabric));
//! snapshot.push_tail(batch.clone()).unwrap();
//! session.ingest(batch).unwrap();
//!
//! // The snapshot survives a byte round-trip and restores bit-identically.
//! let bytes = snapshot.to_bytes();
//! let restored = Snapshot::from_bytes(&bytes).unwrap();
//! let resumed = engine.restore(&restored).unwrap();
//! assert_eq!(resumed.full_report(), session.full_report());
//! assert_eq!(resumed.epoch(), session.epoch());
//! ```

use std::fmt;

use scout_equiv::{NetworkCheckResult, SwitchCheckResult};
use scout_fabric::wire::{Wire, WireError, WireReader, WireWriter};
use scout_fabric::{EventBatch, FabricView, Timestamp};
use scout_policy::SwitchId;

use crate::correlation::{CorrelationReport, ObjectDiagnosis, RootCause};
use crate::engine::ScoutReport;
use crate::localization::{Evidence, Hypothesis};
use crate::session::{AnalysisSession, ReportDelta, ResyncRequest, SessionError};

/// The current snapshot schema version. Bump on any change to the encoded
/// layout; [`Snapshot::from_bytes`] refuses other versions.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The 4-byte magic prefix of every encoded snapshot.
const SNAPSHOT_MAGIC: [u8; 4] = *b"SCSN";

/// CRC-32 (IEEE 802.3, reflected polynomial) over `bytes` — the payload
/// integrity check of the snapshot frame. The wire layer only catches
/// *structural* damage (truncation, bad tags); a flipped bit inside an
/// in-range integer would otherwise decode cleanly into a silently wrong
/// session, and a durable format must fail loudly instead.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a byte buffer could not be decoded into a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic — it is not a
    /// snapshot at all.
    BadMagic,
    /// The snapshot was written by a different schema version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The payload does not match the checksum in the header — the bytes
    /// were corrupted after [`Snapshot::to_bytes`] produced them.
    ChecksumMismatch {
        /// The checksum the header promised.
        expected: u32,
        /// The checksum of the payload as read.
        found: u32,
    },
    /// The replay tail's batch epochs do not continue the checkpoint epoch
    /// in strict `+1` sequence. [`Snapshot::push_tail`] can never produce
    /// such a tail, so the bytes are forged or corrupt; accepting them would
    /// only defer the failure to restore time.
    TailOutOfOrder {
        /// The epoch the tail position required.
        expected: u64,
        /// The epoch the batch carried.
        got: u64,
    },
    /// The checkpoint epoch leaves no headroom for the session's sequencing
    /// arithmetic — `epoch + tail length + 1` (the next expected epoch)
    /// would overflow `u64`. No real session reaches such an epoch; a
    /// payload carrying one is crafted to overflow [`Snapshot::next_epoch`].
    EpochOverflow {
        /// The checkpoint epoch found in the payload.
        epoch: u64,
    },
    /// The payload failed to decode (truncation, bad tags, failed
    /// validation).
    Wire(WireError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => f.write_str("not a SCOUT snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot payload corrupted: checksum {found:#010x}, header promised {expected:#010x}"
            ),
            SnapshotError::TailOutOfOrder { expected, got } => write!(
                f,
                "snapshot replay tail out of order: expected epoch {expected}, found {got}"
            ),
            SnapshotError::EpochOverflow { epoch } => write!(
                f,
                "snapshot checkpoint epoch {epoch} leaves no sequencing headroom"
            ),
            SnapshotError::Wire(err) => write!(f, "snapshot payload invalid: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for SnapshotError {
    fn from(err: WireError) -> Self {
        SnapshotError::Wire(err)
    }
}

/// A durable, versioned checkpoint of one [`AnalysisSession`], plus the
/// replay tail of event batches delivered after the checkpoint was taken.
///
/// Plain data: a snapshot holds no locks, no caches and no engine reference,
/// so it can be written to disk, shipped across processes, and restored on
/// any engine (the restoring engine's configuration governs parallelism and
/// cache budgets; analysis results are configuration-independent).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) fabric_id: u64,
    pub(crate) open_epoch: u64,
    pub(crate) epoch: u64,
    pub(crate) view: FabricView,
    pub(crate) report: ScoutReport,
    pub(crate) tail: Vec<EventBatch>,
}

impl Snapshot {
    /// The [`Fabric::id`](scout_fabric::Fabric::id) of the monitored fabric.
    pub fn fabric_id(&self) -> u64 {
        self.fabric_id
    }

    /// The fabric's change epoch when the original session was opened.
    pub fn open_epoch(&self) -> u64 {
        self.open_epoch
    }

    /// The session epoch at checkpoint time (number of batches the session
    /// had ingested).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The checkpointed monitor mirror.
    pub fn view(&self) -> &FabricView {
        &self.view
    }

    /// The full report at checkpoint time.
    pub fn report(&self) -> &ScoutReport {
        &self.report
    }

    /// The replay tail: batches delivered after the checkpoint, in epoch
    /// order.
    pub fn tail(&self) -> &[EventBatch] {
        &self.tail
    }

    /// The epoch the next [`Snapshot::push_tail`] batch must carry — the
    /// same sequencing contract as [`AnalysisSession::next_epoch`].
    pub fn next_epoch(&self) -> u64 {
        self.epoch + self.tail.len() as u64 + 1
    }

    /// Appends a post-checkpoint batch to the replay tail.
    ///
    /// The tail obeys the session's strict epoch sequencing: `batch.epoch`
    /// must be exactly [`Snapshot::next_epoch`], otherwise the batch is
    /// rejected with [`SessionError::EpochOutOfOrder`] and the snapshot is
    /// unchanged — a gap recorded now would only fail later, at restore time.
    pub fn push_tail(&mut self, batch: EventBatch) -> Result<(), SessionError> {
        let expected = self.next_epoch();
        if batch.epoch != expected {
            return Err(SessionError::EpochOutOfOrder {
                expected,
                got: batch.epoch,
            });
        }
        self.tail.push(batch);
        Ok(())
    }

    /// Encodes the snapshot: a magic/version/CRC-32 header followed by the
    /// wire-encoded payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = WireWriter::new();
        payload.put_u64(self.fabric_id);
        payload.put_u64(self.open_epoch);
        payload.put_u64(self.epoch);
        self.view.encode(&mut payload);
        put_report(&mut payload, &self.report);
        payload.put_usize(self.tail.len());
        for batch in &self.tail {
            batch.encode(&mut payload);
        }
        let payload = payload.into_bytes();

        let mut w = WireWriter::new();
        for byte in SNAPSHOT_MAGIC {
            w.put_u8(byte);
        }
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u32(crc32(&payload));
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&payload);
        bytes
    }

    /// Decodes a snapshot, checking the magic, version and payload checksum
    /// and requiring the whole buffer to be consumed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = WireReader::new(bytes);
        for expected in SNAPSHOT_MAGIC {
            if r.get_u8().map_err(|_| SnapshotError::BadMagic)? != expected {
                return Err(SnapshotError::BadMagic);
            }
        }
        let found = r.get_u32()?;
        if found != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found,
                supported: SNAPSHOT_VERSION,
            });
        }
        let expected_crc = r.get_u32()?;
        let found_crc = crc32(&bytes[bytes.len() - r.remaining()..]);
        if found_crc != expected_crc {
            return Err(SnapshotError::ChecksumMismatch {
                expected: expected_crc,
                found: found_crc,
            });
        }
        let fabric_id = r.get_u64()?;
        let open_epoch = r.get_u64()?;
        let epoch = r.get_u64()?;
        let view = FabricView::decode(&mut r)?;
        let report = get_report(&mut r)?;
        let tail_len = r.get_usize()?;
        let mut tail = Vec::with_capacity(tail_len.min(r.remaining()));
        for _ in 0..tail_len {
            tail.push(EventBatch::decode(&mut r)?);
        }
        r.finish()?;
        // Semantic validation the wire layer cannot see: the tail must
        // continue the checkpoint epoch in strict +1 sequence (the same
        // contract `push_tail` enforces on the producing side), and the
        // epochs involved must leave headroom for `next_epoch()`'s
        // arithmetic — otherwise a crafted payload turns a later, innocent
        // `push_tail` into an integer overflow.
        if epoch
            .checked_add(tail.len() as u64)
            .and_then(|n| n.checked_add(1))
            .is_none()
        {
            return Err(SnapshotError::EpochOverflow { epoch });
        }
        for (i, batch) in tail.iter().enumerate() {
            let expected = epoch + i as u64 + 1;
            if batch.epoch != expected {
                return Err(SnapshotError::TailOutOfOrder {
                    expected,
                    got: batch.epoch,
                });
            }
        }
        Ok(Self {
            fabric_id,
            open_epoch,
            epoch,
            view,
            report,
            tail,
        })
    }

    /// Captures a session's durable core with an empty replay tail (the
    /// implementation behind [`AnalysisSession::checkpoint`]).
    pub(crate) fn of_session(session: &AnalysisSession) -> Self {
        Self {
            fabric_id: session.fabric_id(),
            open_epoch: session.open_epoch(),
            epoch: session.epoch(),
            view: session.view().clone(),
            report: session.full_report().clone(),
            tail: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Report codec
//
// `NetworkCheckResult`/`SwitchCheckResult` live in `scout-equiv`, which the
// `Wire` trait (defined in `scout-fabric`) cannot be implemented for from
// here; they get free-function codecs instead. The core-local report types
// implement `Wire` directly.
// ---------------------------------------------------------------------------

fn put_switch_check(w: &mut WireWriter, check: &SwitchCheckResult) {
    check.switch.encode(w);
    w.put_bool(check.equivalent);
    check.missing_rules.encode(w);
    check.unexpected_rules.encode(w);
}

fn get_switch_check(r: &mut WireReader<'_>) -> Result<SwitchCheckResult, WireError> {
    Ok(SwitchCheckResult {
        switch: SwitchId::decode(r)?,
        equivalent: r.get_bool()?,
        missing_rules: Vec::decode(r)?,
        unexpected_rules: Vec::decode(r)?,
    })
}

/// The per-switch map is keyed by the same switch id each
/// [`SwitchCheckResult`] already carries, so only the values are encoded and
/// the keys are rebuilt from `result.switch` on decode — no redundant bytes,
/// and no way for a corrupted buffer to decode into a map whose key and
/// payload disagree.
fn put_check(w: &mut WireWriter, check: &NetworkCheckResult) {
    w.put_usize(check.per_switch.len());
    for result in check.per_switch.values() {
        put_switch_check(w, result);
    }
}

fn get_check(r: &mut WireReader<'_>) -> Result<NetworkCheckResult, WireError> {
    let len = r.get_usize()?;
    let mut check = NetworkCheckResult::new();
    for _ in 0..len {
        let result = get_switch_check(r)?;
        // Entries are emitted in map order, so anything not strictly
        // ascending is a non-canonical payload. Without this check a
        // duplicated switch would silently collapse to one map entry and
        // re-encode to fewer bytes than it arrived as.
        if check
            .per_switch
            .last_key_value()
            .is_some_and(|(&prev, _)| prev >= result.switch)
        {
            return Err(WireError::NonCanonical {
                what: "NetworkCheckResult",
            });
        }
        check.per_switch.insert(result.switch, result);
    }
    Ok(check)
}

impl Wire for Evidence {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Evidence::FullCover => w.put_u8(0),
            Evidence::RecentChange { changed_at } => {
                w.put_u8(1);
                changed_at.encode(w);
            }
            Evidence::ScoreCover => w.put_u8(2),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Evidence::FullCover),
            1 => Ok(Evidence::RecentChange {
                changed_at: Timestamp::decode(r)?,
            }),
            2 => Ok(Evidence::ScoreCover),
            tag => Err(WireError::InvalidTag {
                what: "Evidence",
                tag,
            }),
        }
    }
}

impl Wire for Hypothesis {
    fn encode(&self, w: &mut WireWriter) {
        self.objects.encode(w);
        w.put_usize(self.observations);
        w.put_usize(self.explained_by_cover);
        w.put_usize(self.explained_by_changelog);
        w.put_usize(self.unexplained);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Hypothesis {
            objects: Wire::decode(r)?,
            observations: r.get_usize()?,
            explained_by_cover: r.get_usize()?,
            explained_by_changelog: r.get_usize()?,
            unexplained: r.get_usize()?,
        })
    }
}

impl Wire for RootCause {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RootCause::Physical {
                kind,
                switch,
                observed_at,
                message,
            } => {
                w.put_u8(0);
                kind.encode(w);
                switch.encode(w);
                observed_at.encode(w);
                message.encode(w);
            }
            RootCause::Unknown => w.put_u8(1),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(RootCause::Physical {
                kind: Wire::decode(r)?,
                switch: Wire::decode(r)?,
                observed_at: Wire::decode(r)?,
                message: Wire::decode(r)?,
            }),
            1 => Ok(RootCause::Unknown),
            tag => Err(WireError::InvalidTag {
                what: "RootCause",
                tag,
            }),
        }
    }
}

impl Wire for ObjectDiagnosis {
    fn encode(&self, w: &mut WireWriter) {
        self.object.encode(w);
        self.causes.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ObjectDiagnosis {
            object: Wire::decode(r)?,
            causes: Wire::decode(r)?,
        })
    }
}

impl Wire for CorrelationReport {
    fn encode(&self, w: &mut WireWriter) {
        self.diagnoses.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CorrelationReport {
            diagnoses: Wire::decode(r)?,
        })
    }
}

fn put_report(w: &mut WireWriter, report: &ScoutReport) {
    put_check(w, &report.check);
    report.observations.encode(w);
    report.suspect_objects.encode(w);
    report.hypothesis.encode(w);
    report.diagnosis.encode(w);
}

fn get_report(r: &mut WireReader<'_>) -> Result<ScoutReport, WireError> {
    Ok(ScoutReport {
        check: get_check(r)?,
        observations: Wire::decode(r)?,
        suspect_objects: Wire::decode(r)?,
        hypothesis: Wire::decode(r)?,
        diagnosis: Wire::decode(r)?,
    })
}

// The serving layer (`scout-server`) ships reports, deltas and session errors
// back to remote tenants, so the session-facing result types are first-class
// wire citizens too. The impls live here — next to the snapshot codec they
// share `put_report`/`get_report` with — because `Wire` is a `scout-fabric`
// trait and the orphan rule keeps downstream crates from implementing it for
// core's types.

impl Wire for ScoutReport {
    fn encode(&self, w: &mut WireWriter) {
        put_report(w, self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        get_report(r)
    }
}

impl Wire for ReportDelta {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.epoch);
        self.rechecked.encode(w);
        self.newly_missing.encode(w);
        self.restored.encode(w);
        self.hypothesis_added.encode(w);
        self.hypothesis_removed.encode(w);
        self.diagnosis_changed.encode(w);
        w.put_bool(self.consistent);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ReportDelta {
            epoch: r.get_u64()?,
            rechecked: Wire::decode(r)?,
            newly_missing: Wire::decode(r)?,
            restored: Wire::decode(r)?,
            hypothesis_added: Wire::decode(r)?,
            hypothesis_removed: Wire::decode(r)?,
            diagnosis_changed: Wire::decode(r)?,
            consistent: r.get_bool()?,
        })
    }
}

impl Wire for ResyncRequest {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.from_epoch);
        w.put_u64(self.observed_epoch);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ResyncRequest {
            from_epoch: r.get_u64()?,
            observed_epoch: r.get_u64()?,
        })
    }
}

impl Wire for SessionError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SessionError::EpochOutOfOrder { expected, got } => {
                w.put_u8(0);
                w.put_u64(*expected);
                w.put_u64(*got);
            }
            SessionError::EpochGap { resync } => {
                w.put_u8(1);
                resync.encode(w);
            }
            SessionError::UnknownSwitch { epoch, switch } => {
                w.put_u8(2);
                w.put_u64(*epoch);
                switch.encode(w);
            }
            SessionError::FaultIndexOutOfRange { epoch, index, len } => {
                w.put_u8(3);
                w.put_u64(*epoch);
                w.put_usize(*index);
                w.put_usize(*len);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(SessionError::EpochOutOfOrder {
                expected: r.get_u64()?,
                got: r.get_u64()?,
            }),
            1 => Ok(SessionError::EpochGap {
                resync: ResyncRequest::decode(r)?,
            }),
            2 => Ok(SessionError::UnknownSwitch {
                epoch: r.get_u64()?,
                switch: Wire::decode(r)?,
            }),
            3 => Ok(SessionError::FaultIndexOutOfRange {
                epoch: r.get_u64()?,
                index: r.get_usize()?,
                len: r.get_usize()?,
            }),
            tag => Err(WireError::InvalidTag {
                what: "SessionError",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScoutEngine;
    use scout_fabric::{Fabric, FabricProbe};
    use scout_policy::sample;

    fn faulty_session() -> (ScoutEngine, Fabric, AnalysisSession) {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.disconnect_switch(sample::S1);
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let engine = ScoutEngine::new();
        let session = engine.open_session(&fabric);
        (engine, fabric, session)
    }

    #[test]
    fn snapshot_bytes_roundtrip_exactly() {
        let (_engine, _fabric, session) = faulty_session();
        let snapshot = session.checkpoint();
        assert!(!snapshot.report().is_consistent());
        let bytes = snapshot.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        // Deterministic: equal snapshots encode to identical bytes.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    fn wire_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = scout_fabric::wire::to_bytes(value);
        let decoded: T = scout_fabric::wire::from_bytes(&bytes).expect("decodes");
        assert_eq!(&decoded, value);
        assert_eq!(scout_fabric::wire::to_bytes(&decoded), bytes);
    }

    #[test]
    fn session_result_types_roundtrip_on_the_wire() {
        let (_engine, mut fabric, mut session) = faulty_session();
        let mut probe = FabricProbe::new(&fabric);

        wire_roundtrip(session.full_report());

        fabric.evict_tcam(sample::S3, 1, false);
        let delta = session.ingest_observation(&mut probe, &fabric).unwrap();
        assert!(!delta.rechecked.is_empty());
        wire_roundtrip(&delta);

        for error in [
            SessionError::EpochOutOfOrder {
                expected: 3,
                got: 1,
            },
            SessionError::EpochGap {
                resync: crate::session::ResyncRequest {
                    from_epoch: 3,
                    observed_epoch: 7,
                },
            },
            SessionError::UnknownSwitch {
                epoch: 4,
                switch: SwitchId::new(42),
            },
            SessionError::FaultIndexOutOfRange {
                epoch: 5,
                index: 9,
                len: 2,
            },
        ] {
            wire_roundtrip(&error);
        }

        assert_eq!(
            scout_fabric::wire::from_bytes::<SessionError>(&[9]),
            Err(WireError::InvalidTag {
                what: "SessionError",
                tag: 9
            })
        );
    }

    #[test]
    fn snapshot_header_is_validated() {
        let (_engine, _fabric, session) = faulty_session();
        let bytes = session.checkpoint().to_bytes();

        assert_eq!(Snapshot::from_bytes(b"nope"), Err(SnapshotError::BadMagic));
        assert_eq!(Snapshot::from_bytes(&[]), Err(SnapshotError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            Snapshot::from_bytes(&wrong_version),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        );

        // Any damage to the payload — truncation, trailing bytes, or a
        // flipped bit inside an in-range value that would decode cleanly —
        // is caught by the checksum before any field is interpreted.
        let truncated = &bytes[..bytes.len() - 1];
        assert!(matches!(
            Snapshot::from_bytes(truncated),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&trailing),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        let mut flipped = bytes.clone();
        let mid = 12 + (flipped.len() - 12) / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Errors render with context.
        let text = SnapshotError::UnsupportedVersion {
            found: 99,
            supported: SNAPSHOT_VERSION,
        }
        .to_string();
        assert!(text.contains("99"));
    }

    #[test]
    fn tail_enforces_strict_epoch_sequencing() {
        let (_engine, mut fabric, mut session) = faulty_session();
        let mut probe = FabricProbe::new(&fabric);
        session.ingest(EventBatch::empty(1)).unwrap();
        let mut snapshot = session.checkpoint();
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(snapshot.next_epoch(), 2);

        // A gap and a duplicate are rejected; the right epoch is accepted.
        assert_eq!(
            snapshot.push_tail(EventBatch::empty(4)),
            Err(SessionError::EpochOutOfOrder {
                expected: 2,
                got: 4
            })
        );
        fabric.repair_switch(sample::S2);
        snapshot
            .push_tail(EventBatch::new(2, probe.observe(&fabric)))
            .unwrap();
        assert_eq!(
            snapshot.push_tail(EventBatch::empty(2)),
            Err(SessionError::EpochOutOfOrder {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(snapshot.tail().len(), 1);
        assert_eq!(snapshot.next_epoch(), 3);
    }

    #[test]
    fn restore_is_bit_identical_and_registered() {
        let (engine, mut fabric, mut session) = faulty_session();
        let mut probe = FabricProbe::new(&fabric);

        let mut snapshot = session.checkpoint();
        // Post-checkpoint drift goes both into the live session and the tail.
        fabric.repair_switch(sample::S1);
        fabric.repair_switch(sample::S2);
        let batch = EventBatch::new(session.next_epoch(), probe.observe(&fabric));
        snapshot.push_tail(batch.clone()).unwrap();
        session.ingest(batch).unwrap();

        let roundtripped = Snapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        let restored = engine.restore(&roundtripped).unwrap();
        assert_eq!(restored.full_report(), session.full_report());
        assert_eq!(restored.epoch(), session.epoch());
        assert_eq!(*restored.full_report(), engine.analyze(&fabric));
        assert!(restored.is_consistent());

        // The restored session registers under a fresh id on the same fabric.
        assert_ne!(restored.id(), session.id());
        assert_eq!(engine.session_count(), 2);
        let infos = engine.sessions_for_fabric(fabric.id());
        assert_eq!(infos.len(), 2);
        drop(restored);
        assert_eq!(engine.session_count(), 1);
    }

    #[test]
    fn restored_sessions_keep_ingesting_identically() {
        let (engine, mut fabric, mut session) = faulty_session();
        let mut probe = FabricProbe::new(&fabric);
        let snapshot = session.checkpoint();
        let mut restored = engine.restore(&snapshot).unwrap();

        // Both sessions now follow the same drift, batch by batch.
        for step in 0..3 {
            match step {
                0 => {
                    fabric.repair_switch(sample::S2);
                }
                1 => {
                    fabric.evict_tcam(sample::S3, 1, true);
                }
                _ => {
                    fabric.repair_switch(sample::S3);
                }
            }
            let batch = EventBatch::new(session.next_epoch(), probe.observe(&fabric));
            let live = session.ingest(batch.clone()).unwrap();
            let replayed = restored.ingest(batch).unwrap();
            assert_eq!(live, replayed, "step {step}");
            assert_eq!(session.full_report(), restored.full_report());
        }
    }

    #[test]
    fn duplicate_or_unsorted_check_switches_are_rejected() {
        let (_engine, _fabric, session) = faulty_session();
        let check = &session.full_report().check;
        assert!(check.per_switch.len() >= 2);

        // Values emitted in reverse map order: decodes to the same map, so
        // the bytes are non-canonical and must be refused.
        let mut w = WireWriter::new();
        w.put_usize(check.per_switch.len());
        for result in check.per_switch.values().rev() {
            put_switch_check(&mut w, result);
        }
        let bytes = w.into_bytes();
        assert_eq!(
            get_check(&mut WireReader::new(&bytes)),
            Err(WireError::NonCanonical {
                what: "NetworkCheckResult"
            })
        );

        // The same switch twice: the old decoder silently collapsed the two
        // entries into one.
        let first = check.per_switch.values().next().unwrap();
        let mut w = WireWriter::new();
        w.put_usize(2);
        put_switch_check(&mut w, first);
        put_switch_check(&mut w, first);
        let bytes = w.into_bytes();
        assert_eq!(
            get_check(&mut WireReader::new(&bytes)),
            Err(WireError::NonCanonical {
                what: "NetworkCheckResult"
            })
        );
    }

    #[test]
    fn decoding_a_gapped_tail_is_a_typed_error() {
        let (_engine, _fabric, session) = faulty_session();
        let mut snapshot = session.checkpoint();
        // Bypass push_tail's sequencing check (simulating a forged buffer:
        // the encoder is total, so patching the struct patches the bytes).
        snapshot.push_tail(EventBatch::empty(1)).unwrap();
        snapshot.tail[0].epoch = 7;
        assert_eq!(
            Snapshot::from_bytes(&snapshot.to_bytes()),
            Err(SnapshotError::TailOutOfOrder {
                expected: 1,
                got: 7
            })
        );
    }

    #[test]
    fn overflowing_checkpoint_epoch_is_rejected_at_decode() {
        let (_engine, _fabric, session) = faulty_session();
        let mut snapshot = session.checkpoint();
        // A forged epoch at the top of the range: accepting it would make
        // the very next `next_epoch()`/`push_tail` overflow.
        snapshot.epoch = u64::MAX;
        assert_eq!(
            Snapshot::from_bytes(&snapshot.to_bytes()),
            Err(SnapshotError::EpochOverflow { epoch: u64::MAX })
        );
        // Errors render with context.
        let text = SnapshotError::EpochOverflow { epoch: u64::MAX }.to_string();
        assert!(text.contains("headroom"));
        let text = SnapshotError::TailOutOfOrder {
            expected: 1,
            got: 7,
        }
        .to_string();
        assert!(text.contains("expected epoch 1"));
    }

    #[test]
    fn restoring_a_gapped_tail_fails_like_ingest() {
        let (engine, _fabric, session) = faulty_session();
        let mut snapshot = session.checkpoint();
        // Corrupt the tail after construction (simulating a producer bug) by
        // bypassing push_tail through the byte layer: encode, then patch the
        // tail batch's epoch.
        snapshot.push_tail(EventBatch::empty(1)).unwrap();
        snapshot.tail[0].epoch = 7;
        let err = engine.restore(&snapshot).unwrap_err();
        assert_eq!(
            err,
            SessionError::EpochGap {
                resync: crate::session::ResyncRequest {
                    from_epoch: 1,
                    observed_epoch: 7
                }
            }
        );
        // The failed restore leaves no session behind.
        assert_eq!(engine.session_count(), 1);
    }
}
