//! The SCOUT service facade: a long-lived, multi-fabric analysis engine.
//!
//! The paper's SCOUT is a *continuously running* service (Figure 6): the
//! controller streams policy changes into it, switches stream TCAM and fault
//! state, and operators consume diagnoses. [`ScoutEngine`] is that front
//! door:
//!
//! * it is configured once through a [`ScoutEngineBuilder`] (parallelism,
//!   cache budgets, differential-oracle cadence, correlation library) so
//!   every driver — campaigns, soak timelines, examples, tests — shares one
//!   configuration surface with one default;
//! * it owns a registry of [`AnalysisSession`]s, one per monitored fabric;
//!   a session is opened from a fabric snapshot and thereafter driven by
//!   typed [`FabricEvent`](scout_fabric::FabricEvent) batches, each returning
//!   a [`ReportDelta`](crate::ReportDelta);
//! * for one-shot work it offers [`ScoutEngine::analyze`], the reference
//!   from-scratch pipeline every incremental path is differentially checked
//!   against.
//!
//! There is exactly one analysis pipeline in the codebase; everything here
//! and in [`crate::session`] routes through the same stages (equivalence
//! check → risk model → localization → correlation), so session reports are
//! bit-identical to from-scratch analyses of the same fabric state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use scout_equiv::{
    EquivalenceChecker, NetworkCheckResult, NodeTableKind, Parallelism, SwitchCheckResult,
    DEFAULT_NODE_BUDGET,
};
use scout_fabric::{ChangeLog, Fabric, FaultLog};
use scout_policy::{LogicalRule, ObjectId, PolicyUniverse, SwitchEpgPair, SwitchId, TcamRule};

use crate::correlation::{CorrelationEngine, CorrelationReport};
use crate::gauges::ServiceGauges;
use crate::localization::{scout_localize, Hypothesis, ScoutConfig};
use crate::risk::{
    augment_controller_model, augment_switch_model, controller_risk_model_sharded,
    switch_risk_model, RiskModel,
};
use crate::session::AnalysisSession;

use std::collections::BTreeSet;

/// How often a driver's differential oracle re-analyzes a monitored fabric
/// from scratch and compares against the incremental session report.
///
/// The cadence is part of the engine configuration so every driver (the soak
/// timeline, CI smoke jobs, ad-hoc experiments) shares one knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleCadence {
    /// Every epoch — the strongest (and default) setting, used by the
    /// enforced integration tests and the CI soak job.
    #[default]
    EveryEpoch,
    /// Every `n`-th epoch plus the final one — for long exploratory runs
    /// where a from-scratch analysis per epoch would dominate the wall time.
    /// A stride of 0 or 1 behaves like [`OracleCadence::EveryEpoch`].
    Stride(usize),
    /// Never — pure throughput mode for benchmarks.
    Never,
}

impl OracleCadence {
    /// Returns `true` if the oracle runs at `epoch` of a run of `total`
    /// epochs.
    pub fn checks(&self, epoch: usize, total: usize) -> bool {
        match *self {
            OracleCadence::EveryEpoch => true,
            OracleCadence::Stride(n) => n <= 1 || epoch.is_multiple_of(n) || epoch + 1 == total,
            OracleCadence::Never => false,
        }
    }
}

/// Number of lock-striped session-registry shards an engine uses by default.
///
/// Sessions register in the shard of their fabric id, so concurrent drivers
/// monitoring different fabrics contend on different locks. 16 stripes keep
/// contention negligible well past the thread counts the benches exercise
/// while costing a few hundred bytes per engine.
pub const DEFAULT_REGISTRY_SHARDS: usize = 16;

/// The plain-data configuration of a [`ScoutEngine`].
///
/// This is the one struct drivers embed (campaigns, timelines, bench bins all
/// carry an `EngineConfig`); the [`ScoutEngineBuilder`] adds the non-`Copy`
/// correlation library on top.
///
/// # Valid ranges
///
/// [`ScoutEngineBuilder::build`] rejects degenerate configurations with a
/// typed [`EngineBuildError`] instead of silently producing a crippled
/// engine:
///
/// * `node_budget` must be at least 1 (a budget of 0 would rebuild every BDD
///   worker after every check, silently discarding the caches the whole
///   incremental design depends on);
/// * `parallelism` must not be [`Parallelism::Fixed`]`(0)` — ask for
///   [`Parallelism::Sequential`] explicitly instead of a zero-thread pool;
/// * `registry_shards` must be at least 1.
///
/// Use [`EngineConfig::validate`] to check a configuration up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker-thread policy of the equivalence checkers. Must not be
    /// `Fixed(0)`.
    pub parallelism: Parallelism,
    /// Configuration forwarded to the SCOUT localization algorithm.
    pub scout: ScoutConfig,
    /// Per-worker BDD node-table budget of the equivalence checkers (see
    /// [`EquivalenceChecker::set_node_budget`]). Must be at least 1.
    pub node_budget: usize,
    /// Node-table backend of the checkers' BDD managers (see
    /// [`EquivalenceChecker::set_node_table`]). Defaults to the arena table;
    /// the baseline toggle exists for benchmark comparisons — results are
    /// identical either way.
    pub node_table: NodeTableKind,
    /// Differential-oracle cadence for drivers that cross-check incremental
    /// sessions against from-scratch analysis.
    pub oracle: OracleCadence,
    /// Number of lock stripes in the engine's session registry (sessions are
    /// sharded by fabric id). Must be at least 1; defaults to
    /// [`DEFAULT_REGISTRY_SHARDS`].
    pub registry_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            scout: ScoutConfig::default(),
            node_budget: DEFAULT_NODE_BUDGET,
            node_table: NodeTableKind::default(),
            oracle: OracleCadence::EveryEpoch,
            registry_shards: DEFAULT_REGISTRY_SHARDS,
        }
    }
}

impl EngineConfig {
    /// Checks the configuration against the documented valid ranges.
    ///
    /// # Example
    ///
    /// ```
    /// use scout_core::{EngineBuildError, EngineConfig};
    /// use scout_equiv::Parallelism;
    ///
    /// assert!(EngineConfig::default().validate().is_ok());
    ///
    /// let degenerate = EngineConfig {
    ///     parallelism: Parallelism::Fixed(0),
    ///     ..EngineConfig::default()
    /// };
    /// assert_eq!(
    ///     degenerate.validate(),
    ///     Err(EngineBuildError::ZeroWorkerThreads)
    /// );
    /// ```
    pub fn validate(&self) -> Result<(), EngineBuildError> {
        if self.node_budget == 0 {
            return Err(EngineBuildError::ZeroNodeBudget);
        }
        if self.parallelism == Parallelism::Fixed(0) {
            return Err(EngineBuildError::ZeroWorkerThreads);
        }
        if self.registry_shards == 0 {
            return Err(EngineBuildError::ZeroRegistryShards);
        }
        Ok(())
    }
}

/// Why a [`ScoutEngineBuilder`] refused to build an engine.
///
/// Each variant names the degenerate setting; see the field docs on
/// [`EngineConfig`] for the valid ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineBuildError {
    /// `node_budget` was 0, which would disable BDD cache persistence
    /// entirely (every worker rebuilt after every check).
    ZeroNodeBudget,
    /// `parallelism` was [`Parallelism::Fixed`]`(0)` — a zero-thread worker
    /// pool. Use [`Parallelism::Sequential`] for single-threaded checking.
    ZeroWorkerThreads,
    /// `registry_shards` was 0 — the session registry needs at least one
    /// stripe.
    ZeroRegistryShards,
}

impl std::fmt::Display for EngineBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineBuildError::ZeroNodeBudget => {
                f.write_str("node_budget must be at least 1 (0 disables BDD cache persistence)")
            }
            EngineBuildError::ZeroWorkerThreads => f.write_str(
                "parallelism Fixed(0) is a zero-thread pool; use Parallelism::Sequential",
            ),
            EngineBuildError::ZeroRegistryShards => {
                f.write_str("registry_shards must be at least 1")
            }
        }
    }
}

impl std::error::Error for EngineBuildError {}

/// Builds a [`ScoutEngine`].
///
/// [`ScoutEngineBuilder::build`] validates the configuration and returns a
/// typed [`EngineBuildError`] for degenerate settings (see the valid ranges
/// on [`EngineConfig`]).
///
/// # Example
///
/// ```
/// use scout_core::{OracleCadence, ScoutEngine};
/// use scout_equiv::Parallelism;
///
/// let engine = ScoutEngine::builder()
///     .parallelism(Parallelism::Sequential)
///     .oracle(OracleCadence::Stride(10))
///     .build()
///     .expect("a sequential engine is a valid configuration");
/// assert_eq!(engine.config().oracle, OracleCadence::Stride(10));
///
/// // Degenerate settings are rejected, not silently accepted:
/// use scout_core::EngineBuildError;
/// let err = ScoutEngine::builder().node_budget(0).build().unwrap_err();
/// assert_eq!(err, EngineBuildError::ZeroNodeBudget);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoutEngineBuilder {
    config: EngineConfig,
    correlation: CorrelationEngine,
}

impl ScoutEngineBuilder {
    /// A builder with the default configuration and the standard fault
    /// signature library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread policy of the equivalence checkers.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the SCOUT localization configuration.
    pub fn scout(mut self, scout: ScoutConfig) -> Self {
        self.config.scout = scout;
        self
    }

    /// Sets the per-worker BDD node-table budget (must be at least 1; see
    /// [`EngineConfig::node_budget`]).
    pub fn node_budget(mut self, budget: usize) -> Self {
        self.config.node_budget = budget;
        self
    }

    /// Sets the number of lock stripes of the session registry (must be at
    /// least 1; see [`EngineConfig::registry_shards`]).
    pub fn registry_shards(mut self, shards: usize) -> Self {
        self.config.registry_shards = shards;
        self
    }

    /// Sets the differential-oracle cadence.
    pub fn oracle(mut self, oracle: OracleCadence) -> Self {
        self.config.oracle = oracle;
        self
    }

    /// Replaces the whole plain-data configuration at once (the path drivers
    /// carrying an [`EngineConfig`] use).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a custom correlation engine (e.g. an extended signature library).
    pub fn correlation(mut self, correlation: CorrelationEngine) -> Self {
        self.correlation = correlation;
        self
    }

    /// Builds the engine, rejecting degenerate configurations with a typed
    /// error (see the valid ranges on [`EngineConfig`]).
    pub fn build(self) -> Result<ScoutEngine, EngineBuildError> {
        self.config.validate()?;
        let mut checker = EquivalenceChecker::with_parallelism(self.config.parallelism);
        checker.set_node_budget(self.config.node_budget);
        checker.set_node_table(self.config.node_table);
        let shards: Vec<RegistryShard> = (0..self.config.registry_shards)
            .map(|_| Mutex::new(BTreeMap::new()))
            .collect();
        Ok(ScoutEngine {
            shared: Arc::new(EngineShared {
                config: self.config,
                correlation: self.correlation,
                checker,
                shards: shards.into_boxed_slice(),
                next_session: AtomicU64::new(1),
                gauges: ServiceGauges::new(),
            }),
        })
    }
}

/// A process-unique handle to an open [`AnalysisSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Registry metadata of one open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's id.
    pub id: SessionId,
    /// The [`Fabric::id`] of the monitored fabric.
    pub fabric_id: u64,
    /// The fabric's change epoch at the moment the session was opened.
    pub opened_at_epoch: u64,
}

/// One lock stripe of the sharded session registry.
type RegistryShard = Mutex<BTreeMap<SessionId, SessionInfo>>;

/// The engine state shared by the facade handle and every session it opened.
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub(crate) config: EngineConfig,
    pub(crate) correlation: CorrelationEngine,
    /// The warm checker behind the one-shot [`ScoutEngine::analyze`] path
    /// (sessions own private checkers so they never contend with it).
    checker: EquivalenceChecker,
    /// The session registry, lock-striped by fabric id: concurrent drivers
    /// monitoring different fabrics register and deregister on different
    /// locks.
    shards: Box<[RegistryShard]>,
    next_session: AtomicU64,
    /// Admission counters shared by every serving thread fronting this
    /// engine (see [`ServiceGauges`]).
    gauges: ServiceGauges,
}

impl EngineShared {
    /// The registry stripe responsible for `fabric_id`.
    fn lock_shard(
        &self,
        fabric_id: u64,
    ) -> std::sync::MutexGuard<'_, BTreeMap<SessionId, SessionInfo>> {
        let index = (fabric_id % self.shards.len() as u64) as usize;
        self.shards[index].lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register(&self, info: SessionInfo) {
        self.lock_shard(info.fabric_id).insert(info.id, info);
    }

    /// Removes a session from its fabric's stripe (recovering from a
    /// poisoned lock, like every other registry access).
    pub(crate) fn deregister(&self, fabric_id: u64, id: SessionId) {
        self.lock_shard(fabric_id).remove(&id);
    }
}

// The whole point of the sharded engine: one `Arc<ScoutEngine>` (or cheap
// clones of the handle) can be driven from many threads at once. Compile-time
// proof, so a non-Sync field can never sneak in unnoticed.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScoutEngine>();
    assert_send_sync::<EngineShared>();
    assert_send_sync::<crate::session::AnalysisSession>();
};

/// The long-lived SCOUT service facade.
///
/// Cloning the handle is cheap and shares the same engine (configuration,
/// session registry, warm one-shot checker); the handle is `Send + Sync`
/// (checked at compile time), so an `Arc<ScoutEngine>` — or plain clones of
/// the handle — can be driven from many threads at once. The session
/// registry is lock-striped by fabric id ([`EngineConfig::registry_shards`]),
/// so multi-tenant drivers that open, drop and restore sessions for
/// different fabrics concurrently contend on different locks; per-session
/// ingestion itself stays serialized (a session is `&mut self`-driven) and
/// bit-identical to the sequential path.
///
/// # Example
///
/// ```
/// use scout_core::ScoutEngine;
/// use scout_fabric::Fabric;
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// // Drop the port-700 rules from S2 behind the controller's back.
/// fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
///
/// let engine = ScoutEngine::new();
/// let report = engine.analyze(&fabric);
/// assert!(!report.is_consistent());
/// assert!(report.hypothesis.len() <= report.suspect_objects.len());
/// ```
#[derive(Debug, Clone)]
pub struct ScoutEngine {
    pub(crate) shared: Arc<EngineShared>,
}

impl Default for ScoutEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoutEngine {
    /// An engine with the default configuration and the standard fault
    /// signature library.
    pub fn new() -> Self {
        Self::builder()
            .build()
            .expect("the default engine configuration is valid")
    }

    /// Starts building an engine.
    pub fn builder() -> ScoutEngineBuilder {
        ScoutEngineBuilder::new()
    }

    /// An engine with the given plain-data configuration and the standard
    /// signature library. Degenerate configurations are rejected (see
    /// [`EngineConfig::validate`]).
    pub fn from_config(config: EngineConfig) -> Result<Self, EngineBuildError> {
        Self::builder().config(config).build()
    }

    /// The engine's plain-data configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// The engine's correlation library.
    pub fn correlation(&self) -> &CorrelationEngine {
        &self.shared.correlation
    }

    /// Opens an [`AnalysisSession`] on a snapshot of `fabric`: the session
    /// runs the full pipeline once, registers itself, and is thereafter
    /// driven by [`AnalysisSession::ingest`] (event deltas) and/or
    /// [`AnalysisSession::analyze_clone`] (mutated clones of the snapshot).
    pub fn open_session(&self, fabric: &Fabric) -> AnalysisSession {
        let id = SessionId(self.shared.next_session.fetch_add(1, Ordering::Relaxed));
        let info = SessionInfo {
            id,
            fabric_id: fabric.id(),
            opened_at_epoch: fabric.epoch(),
        };
        self.shared.register(info);
        AnalysisSession::open(Arc::clone(&self.shared), id, fabric)
    }

    /// Restores an [`AnalysisSession`] from a checkpoint: rebuilds the
    /// session around the snapshot's fabric-view mirror and report, registers
    /// it under a fresh [`SessionId`], and replays the snapshot's tail of
    /// post-checkpoint [`EventBatch`](scout_fabric::EventBatch)es through the
    /// ordinary ingest path.
    ///
    /// The restored session is bit-identical to one that never stopped —
    /// same `full_report()`, same future [`ReportDelta`](crate::ReportDelta)s
    /// for the same batches. A tail batch that fails to ingest (e.g. a
    /// sequencing gap introduced by a buggy producer) aborts the restore with
    /// the session error; no session is left registered.
    pub fn restore(
        &self,
        snapshot: &crate::snapshot::Snapshot,
    ) -> Result<AnalysisSession, crate::session::SessionError> {
        let id = SessionId(self.shared.next_session.fetch_add(1, Ordering::Relaxed));
        let info = SessionInfo {
            id,
            fabric_id: snapshot.fabric_id(),
            opened_at_epoch: snapshot.open_epoch(),
        };
        self.shared.register(info);
        let mut session = AnalysisSession::resume(Arc::clone(&self.shared), id, snapshot);
        for batch in snapshot.tail() {
            session.ingest(batch.clone())?;
        }
        Ok(session)
    }

    /// Registry metadata of every currently-open session, in id order.
    ///
    /// Shards are visited one at a time (never holding two stripe locks), so
    /// a snapshot taken while sessions open and close concurrently is a
    /// consistent-per-shard, possibly slightly stale union — fine for the
    /// observability purpose it serves.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        let mut infos: Vec<SessionInfo> = self
            .shared
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        infos.sort_by_key(|info| info.id);
        infos
    }

    /// Registry metadata of the open sessions monitoring `fabric_id`, in id
    /// order — a single-stripe read.
    pub fn sessions_for_fabric(&self, fabric_id: u64) -> Vec<SessionInfo> {
        self.shared
            .lock_shard(fabric_id)
            .values()
            .copied()
            .filter(|info| info.fabric_id == fabric_id)
            .collect()
    }

    /// Number of currently-open sessions.
    pub fn session_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Number of lock stripes in the session registry.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The admission counters shared by every handle cloned from this
    /// engine. The engine never updates them itself — a serving layer above
    /// it records admitted / queued / shed decisions here so operators get
    /// one coherent picture per engine regardless of how many server threads
    /// front it.
    pub fn gauges(&self) -> &ServiceGauges {
        &self.shared.gauges
    }

    /// One-shot, from-scratch analysis of a fabric — the reference pipeline
    /// every incremental session result is differentially checked against.
    ///
    /// The engine's internal checker stays warm across calls, so repeated
    /// one-shot analyses reuse BDD encodings; results never depend on cache
    /// state.
    pub fn analyze(&self, fabric: &Fabric) -> ScoutReport {
        self.analyze_artifacts(
            fabric.universe(),
            fabric.logical_rules(),
            &fabric.collect_tcam(),
            fabric.change_log(),
            fabric.fault_log(),
        )
    }

    /// One-shot analysis from the four raw artifacts: the policy (universe),
    /// the logical rules, the collected TCAM rules, and the two logs.
    pub fn analyze_artifacts(
        &self,
        universe: &PolicyUniverse,
        logical_rules: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> ScoutReport {
        let check = self.shared.checker.check_network(logical_rules, tcam);
        let mut model = controller_risk_model_sharded(universe, self.shared.config.parallelism);
        augment_controller_model(&mut model, check.missing_rules());
        report_from_model(
            check,
            &model,
            universe,
            change_log,
            fault_log,
            self.shared.config.scout,
            &self.shared.correlation,
        )
    }

    /// Runs the equivalence check and localization against the *switch risk
    /// model* of a single switch, as an admin debugging one device would.
    pub fn analyze_switch(
        &self,
        universe: &PolicyUniverse,
        switch: SwitchId,
        logical_rules: &[LogicalRule],
        tcam: &[TcamRule],
        change_log: &ChangeLog,
    ) -> (
        SwitchCheckResult,
        RiskModel<scout_policy::EpgPair>,
        Hypothesis,
    ) {
        let check = self
            .shared
            .checker
            .check_switch(switch, logical_rules, tcam);
        let mut model = switch_risk_model(universe, switch);
        augment_switch_model(&mut model, switch, check.missing_rules.iter().copied());
        let hypothesis = scout_localize(&model, change_log, self.shared.config.scout);
        (check, model, hypothesis)
    }
}

/// The complete output of one end-to-end analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoutReport {
    /// The per-switch equivalence check results.
    pub check: NetworkCheckResult,
    /// The observations: `(switch, EPG pair)` triplets with missing rules.
    pub observations: BTreeSet<SwitchEpgPair>,
    /// Every object the failed elements depend on — what an admin would have
    /// to examine without fault localization.
    pub suspect_objects: BTreeSet<ObjectId>,
    /// The localization output: the suspected faulty objects.
    pub hypothesis: Hypothesis,
    /// Physical-level root causes per hypothesis object.
    pub diagnosis: CorrelationReport,
}

impl ScoutReport {
    /// `true` if the deployed state matches the policy everywhere.
    pub fn is_consistent(&self) -> bool {
        self.check.is_consistent()
    }

    /// Total number of missing rules across the network.
    pub fn missing_rule_count(&self) -> usize {
        self.check.missing_count()
    }

    /// The suspect-set reduction ratio γ = |hypothesis| / |suspect objects|
    /// (§VI of the paper). Returns 0 when there is nothing to suspect.
    pub fn gamma(&self) -> f64 {
        if self.suspect_objects.is_empty() {
            0.0
        } else {
            self.hypothesis.len() as f64 / self.suspect_objects.len() as f64
        }
    }
}

/// Builds the localization/diagnosis stages of a report from an equivalence
/// check and an *already augmented* controller risk model — the single
/// assembly point shared by the one-shot and session paths.
pub(crate) fn report_from_model(
    check: NetworkCheckResult,
    model: &RiskModel<SwitchEpgPair>,
    universe: &PolicyUniverse,
    change_log: &ChangeLog,
    fault_log: &FaultLog,
    scout: ScoutConfig,
    correlation: &CorrelationEngine,
) -> ScoutReport {
    let observations = model.failure_signature();
    let suspect_objects = model.suspect_set(&observations);

    let hypothesis = scout_localize(model, change_log, scout);
    let diagnosis = correlation.correlate(&hypothesis, universe, change_log, fault_log);

    ScoutReport {
        check,
        observations,
        suspect_objects,
        hypothesis,
        diagnosis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::FaultKind;
    use scout_policy::{sample, EpgPair};

    #[test]
    fn consistent_network_produces_empty_report() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(report.is_consistent());
        assert_eq!(report.missing_rule_count(), 0);
        assert!(report.observations.is_empty());
        assert!(report.hypothesis.is_empty());
        assert_eq!(report.gamma(), 0.0);
        assert!(report.diagnosis.diagnoses().is_empty());
    }

    #[test]
    fn filter_fault_is_localized_and_gamma_is_small() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // Drop every rule derived from the port-700 filter, on every switch.
        for switch in [sample::S2, sample::S3] {
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(!report.is_consistent());
        assert_eq!(report.missing_rule_count(), 4);
        // The App-DB pair on S2 and S3 is observed as failed.
        assert_eq!(report.observations.len(), 2);
        assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
        // Hypothesis is much smaller than the suspect set.
        assert!(report.hypothesis.len() < report.suspect_objects.len());
        assert!(report.gamma() > 0.0 && report.gamma() < 1.0);
    }

    #[test]
    fn unresponsive_switch_story_matches_paper_use_case() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(!report.is_consistent());
        // The switch itself is the most economical explanation.
        assert!(report.hypothesis.contains(ObjectId::Switch(sample::S2)));
        // And the correlation engine ties it to the unreachable-switch fault.
        let by_kind = report.diagnosis.causes_by_kind();
        assert!(by_kind.contains_key(&FaultKind::SwitchUnreachable));
    }

    #[test]
    fn analyze_switch_uses_the_switch_risk_model() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |r| {
            r.pair() == EpgPair::new(sample::WEB, sample::APP)
        });
        let engine = ScoutEngine::new();
        let (check, model, hypothesis) = engine.analyze_switch(
            fabric.universe(),
            sample::S2,
            fabric.logical_rules(),
            &fabric.tcam_rules(sample::S2),
            fabric.change_log(),
        );
        assert!(!check.equivalent);
        assert_eq!(model.element_count(), 2);
        // Per Figure 4(a): EPG:Web and Contract:Web-App explain the failure.
        assert!(hypothesis.contains(ObjectId::Epg(sample::WEB)));
        assert!(hypothesis.contains(ObjectId::Contract(sample::C_WEB_APP)));
        assert!(!hypothesis.contains(ObjectId::Vrf(sample::VRF)));
        assert!(!hypothesis.contains(ObjectId::Epg(sample::APP)));
    }

    #[test]
    fn report_accessors_are_consistent() {
        let mut fabric = Fabric::new(sample::three_tier_with_capacity(3));
        fabric.deploy();
        let engine = ScoutEngine::from_config(EngineConfig::default()).unwrap();
        let report = engine.analyze(&fabric);
        assert_eq!(report.missing_rule_count(), report.check.missing_count());
        assert_eq!(report.diagnosis.diagnoses().len(), report.hypothesis.len());
        assert!(report.gamma() <= 1.0);
    }

    #[test]
    fn registry_tracks_open_sessions() {
        let mut a = Fabric::new(sample::three_tier());
        a.deploy();
        let mut b = Fabric::new(sample::three_tier());
        b.deploy();

        let engine = ScoutEngine::new();
        assert_eq!(engine.session_count(), 0);
        let sa = engine.open_session(&a);
        let sb = engine.open_session(&b);
        assert_eq!(engine.session_count(), 2);
        let infos = engine.sessions();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].id, sa.id());
        assert_eq!(infos[0].fabric_id, a.id());
        assert_eq!(infos[1].id, sb.id());
        assert_ne!(sa.id(), sb.id());
        // A cloned handle sees the same registry; dropping a session
        // deregisters it.
        let handle = engine.clone();
        drop(sa);
        assert_eq!(handle.session_count(), 1);
        assert_eq!(handle.sessions()[0].fabric_id, b.id());
        drop(sb);
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn builder_settings_reach_the_engine() {
        let engine = ScoutEngine::builder()
            .parallelism(Parallelism::Fixed(2))
            .node_budget(1 << 10)
            .oracle(OracleCadence::Never)
            .registry_shards(4)
            .scout(ScoutConfig {
                recent_window: None,
            })
            .build()
            .unwrap();
        let config = engine.config();
        assert_eq!(config.parallelism, Parallelism::Fixed(2));
        assert_eq!(config.node_budget, 1 << 10);
        assert_eq!(config.oracle, OracleCadence::Never);
        assert_eq!(config.scout.recent_window, None);
        assert_eq!(config.registry_shards, 4);
        assert_eq!(engine.shard_count(), 4);
        // Round-trip through the plain-data config.
        let copied = ScoutEngine::from_config(*config).unwrap();
        assert_eq!(copied.config(), config);
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        assert_eq!(
            ScoutEngine::builder().node_budget(0).build().unwrap_err(),
            EngineBuildError::ZeroNodeBudget
        );
        assert_eq!(
            ScoutEngine::builder()
                .parallelism(Parallelism::Fixed(0))
                .build()
                .unwrap_err(),
            EngineBuildError::ZeroWorkerThreads
        );
        assert_eq!(
            ScoutEngine::builder()
                .registry_shards(0)
                .build()
                .unwrap_err(),
            EngineBuildError::ZeroRegistryShards
        );
        // The errors render actionable messages.
        assert!(EngineBuildError::ZeroNodeBudget
            .to_string()
            .contains("node_budget"));
        assert!(EngineBuildError::ZeroWorkerThreads
            .to_string()
            .contains("Sequential"));
        assert!(EngineBuildError::ZeroRegistryShards
            .to_string()
            .contains("shard"));
        // Fixed(1) and Sequential remain valid single-threaded settings.
        assert!(ScoutEngine::builder()
            .parallelism(Parallelism::Fixed(1))
            .build()
            .is_ok());
        assert!(ScoutEngine::builder()
            .parallelism(Parallelism::Sequential)
            .build()
            .is_ok());
    }

    #[test]
    fn sessions_land_in_fabric_shards() {
        let mut a = Fabric::new(sample::three_tier());
        a.deploy();
        let b = a.clone();
        let engine = ScoutEngine::builder().registry_shards(2).build().unwrap();
        let sa = engine.open_session(&a);
        let sb = engine.open_session(&b);
        let sa2 = engine.open_session(&a);
        assert_eq!(engine.session_count(), 3);
        let for_a = engine.sessions_for_fabric(a.id());
        assert_eq!(for_a.len(), 2);
        assert!(for_a.iter().all(|info| info.fabric_id == a.id()));
        assert_eq!(engine.sessions_for_fabric(b.id()).len(), 1);
        assert_eq!(engine.sessions_for_fabric(0xDEAD_BEEF).len(), 0);
        // The global listing is id-ordered across shards.
        let ids: Vec<SessionId> = engine.sessions().iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![sa.id(), sb.id(), sa2.id()]);
        drop(sa);
        drop(sb);
        drop(sa2);
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn oracle_cadence_schedules() {
        assert!(OracleCadence::EveryEpoch.checks(3, 10));
        assert!(OracleCadence::Stride(0).checks(3, 10));
        assert!(OracleCadence::Stride(1).checks(3, 10));
        assert!(OracleCadence::Stride(4).checks(8, 10));
        assert!(!OracleCadence::Stride(4).checks(3, 10));
        assert!(OracleCadence::Stride(4).checks(9, 10), "final epoch");
        assert!(!OracleCadence::Never.checks(0, 10));
    }
}
