//! The SCOUT service facade: a long-lived, multi-fabric analysis engine.
//!
//! The paper's SCOUT is a *continuously running* service (Figure 6): the
//! controller streams policy changes into it, switches stream TCAM and fault
//! state, and operators consume diagnoses. [`ScoutEngine`] is that front
//! door:
//!
//! * it is configured once through a [`ScoutEngineBuilder`] (parallelism,
//!   cache budgets, differential-oracle cadence, correlation library) so
//!   every driver — campaigns, soak timelines, examples, tests — shares one
//!   configuration surface with one default;
//! * it owns a registry of [`AnalysisSession`]s, one per monitored fabric;
//!   a session is opened from a fabric snapshot and thereafter driven by
//!   typed [`FabricEvent`](scout_fabric::FabricEvent) batches, each returning
//!   a [`ReportDelta`](crate::ReportDelta);
//! * for one-shot work it offers [`ScoutEngine::analyze`], the reference
//!   from-scratch pipeline every incremental path is differentially checked
//!   against.
//!
//! There is exactly one analysis pipeline in the codebase; everything here
//! and in [`crate::session`] routes through the same stages (equivalence
//! check → risk model → localization → correlation), so session reports are
//! bit-identical to from-scratch analyses of the same fabric state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use scout_equiv::{
    EquivalenceChecker, NetworkCheckResult, Parallelism, SwitchCheckResult, DEFAULT_NODE_BUDGET,
};
use scout_fabric::{ChangeLog, Fabric, FaultLog};
use scout_policy::{LogicalRule, ObjectId, PolicyUniverse, SwitchEpgPair, SwitchId, TcamRule};

use crate::correlation::{CorrelationEngine, CorrelationReport};
use crate::localization::{scout_localize, Hypothesis, ScoutConfig};
use crate::risk::{
    augment_controller_model, augment_switch_model, controller_risk_model, switch_risk_model,
    RiskModel,
};
use crate::session::AnalysisSession;

use std::collections::BTreeSet;

/// How often a driver's differential oracle re-analyzes a monitored fabric
/// from scratch and compares against the incremental session report.
///
/// The cadence is part of the engine configuration so every driver (the soak
/// timeline, CI smoke jobs, ad-hoc experiments) shares one knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleCadence {
    /// Every epoch — the strongest (and default) setting, used by the
    /// enforced integration tests and the CI soak job.
    #[default]
    EveryEpoch,
    /// Every `n`-th epoch plus the final one — for long exploratory runs
    /// where a from-scratch analysis per epoch would dominate the wall time.
    /// A stride of 0 or 1 behaves like [`OracleCadence::EveryEpoch`].
    Stride(usize),
    /// Never — pure throughput mode for benchmarks.
    Never,
}

impl OracleCadence {
    /// Returns `true` if the oracle runs at `epoch` of a run of `total`
    /// epochs.
    pub fn checks(&self, epoch: usize, total: usize) -> bool {
        match *self {
            OracleCadence::EveryEpoch => true,
            OracleCadence::Stride(n) => n <= 1 || epoch.is_multiple_of(n) || epoch + 1 == total,
            OracleCadence::Never => false,
        }
    }
}

/// The plain-data configuration of a [`ScoutEngine`].
///
/// This is the one struct drivers embed (campaigns, timelines, bench bins all
/// carry an `EngineConfig`); the [`ScoutEngineBuilder`] adds the non-`Copy`
/// correlation library on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker-thread policy of the equivalence checkers.
    pub parallelism: Parallelism,
    /// Configuration forwarded to the SCOUT localization algorithm.
    pub scout: ScoutConfig,
    /// Per-worker BDD node-table budget of the equivalence checkers (see
    /// [`EquivalenceChecker::set_node_budget`]).
    pub node_budget: usize,
    /// Differential-oracle cadence for drivers that cross-check incremental
    /// sessions against from-scratch analysis.
    pub oracle: OracleCadence,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            parallelism: Parallelism::Auto,
            scout: ScoutConfig::default(),
            node_budget: DEFAULT_NODE_BUDGET,
            oracle: OracleCadence::EveryEpoch,
        }
    }
}

/// Builds a [`ScoutEngine`].
///
/// # Example
///
/// ```
/// use scout_core::{OracleCadence, ScoutEngine};
/// use scout_equiv::Parallelism;
///
/// let engine = ScoutEngine::builder()
///     .parallelism(Parallelism::Sequential)
///     .oracle(OracleCadence::Stride(10))
///     .build();
/// assert_eq!(engine.config().oracle, OracleCadence::Stride(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoutEngineBuilder {
    config: EngineConfig,
    correlation: CorrelationEngine,
}

impl ScoutEngineBuilder {
    /// A builder with the default configuration and the standard fault
    /// signature library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread policy of the equivalence checkers.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the SCOUT localization configuration.
    pub fn scout(mut self, scout: ScoutConfig) -> Self {
        self.config.scout = scout;
        self
    }

    /// Sets the per-worker BDD node-table budget.
    pub fn node_budget(mut self, budget: usize) -> Self {
        self.config.node_budget = budget;
        self
    }

    /// Sets the differential-oracle cadence.
    pub fn oracle(mut self, oracle: OracleCadence) -> Self {
        self.config.oracle = oracle;
        self
    }

    /// Replaces the whole plain-data configuration at once (the path drivers
    /// carrying an [`EngineConfig`] use).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a custom correlation engine (e.g. an extended signature library).
    pub fn correlation(mut self, correlation: CorrelationEngine) -> Self {
        self.correlation = correlation;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> ScoutEngine {
        let mut checker = EquivalenceChecker::with_parallelism(self.config.parallelism);
        checker.set_node_budget(self.config.node_budget);
        ScoutEngine {
            shared: Arc::new(EngineShared {
                config: self.config,
                correlation: self.correlation,
                checker,
                registry: Mutex::new(BTreeMap::new()),
                next_session: AtomicU64::new(1),
            }),
        }
    }
}

/// A process-unique handle to an open [`AnalysisSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Registry metadata of one open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session's id.
    pub id: SessionId,
    /// The [`Fabric::id`] of the monitored fabric.
    pub fabric_id: u64,
    /// The fabric's change epoch at the moment the session was opened.
    pub opened_at_epoch: u64,
}

/// The engine state shared by the facade handle and every session it opened.
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub(crate) config: EngineConfig,
    pub(crate) correlation: CorrelationEngine,
    /// The warm checker behind the one-shot [`ScoutEngine::analyze`] path
    /// (sessions own private checkers so they never contend with it).
    checker: EquivalenceChecker,
    pub(crate) registry: Mutex<BTreeMap<SessionId, SessionInfo>>,
    next_session: AtomicU64,
}

impl EngineShared {
    fn lock_registry(&self) -> std::sync::MutexGuard<'_, BTreeMap<SessionId, SessionInfo>> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The long-lived SCOUT service facade.
///
/// Cloning the handle is cheap and shares the same engine (configuration,
/// session registry, warm one-shot checker); the handle is `Send + Sync`, so
/// parallel drivers open one session per worker from a shared engine.
///
/// # Example
///
/// ```
/// use scout_core::ScoutEngine;
/// use scout_fabric::Fabric;
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// // Drop the port-700 rules from S2 behind the controller's back.
/// fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
///
/// let engine = ScoutEngine::new();
/// let report = engine.analyze(&fabric);
/// assert!(!report.is_consistent());
/// assert!(report.hypothesis.len() <= report.suspect_objects.len());
/// ```
#[derive(Debug, Clone)]
pub struct ScoutEngine {
    pub(crate) shared: Arc<EngineShared>,
}

impl Default for ScoutEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoutEngine {
    /// An engine with the default configuration and the standard fault
    /// signature library.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts building an engine.
    pub fn builder() -> ScoutEngineBuilder {
        ScoutEngineBuilder::new()
    }

    /// An engine with the given plain-data configuration and the standard
    /// signature library.
    pub fn from_config(config: EngineConfig) -> Self {
        Self::builder().config(config).build()
    }

    /// The engine's plain-data configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// The engine's correlation library.
    pub fn correlation(&self) -> &CorrelationEngine {
        &self.shared.correlation
    }

    /// Opens an [`AnalysisSession`] on a snapshot of `fabric`: the session
    /// runs the full pipeline once, registers itself, and is thereafter
    /// driven by [`AnalysisSession::ingest`] (event deltas) and/or
    /// [`AnalysisSession::analyze_clone`] (mutated clones of the snapshot).
    pub fn open_session(&self, fabric: &Fabric) -> AnalysisSession {
        let id = SessionId(self.shared.next_session.fetch_add(1, Ordering::Relaxed));
        let info = SessionInfo {
            id,
            fabric_id: fabric.id(),
            opened_at_epoch: fabric.epoch(),
        };
        self.shared.lock_registry().insert(id, info);
        AnalysisSession::open(Arc::clone(&self.shared), id, fabric)
    }

    /// Registry metadata of every currently-open session, in id order.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.shared.lock_registry().values().copied().collect()
    }

    /// Number of currently-open sessions.
    pub fn session_count(&self) -> usize {
        self.shared.lock_registry().len()
    }

    /// One-shot, from-scratch analysis of a fabric — the reference pipeline
    /// every incremental session result is differentially checked against.
    ///
    /// The engine's internal checker stays warm across calls, so repeated
    /// one-shot analyses reuse BDD encodings; results never depend on cache
    /// state.
    pub fn analyze(&self, fabric: &Fabric) -> ScoutReport {
        self.analyze_artifacts(
            fabric.universe(),
            fabric.logical_rules(),
            &fabric.collect_tcam(),
            fabric.change_log(),
            fabric.fault_log(),
        )
    }

    /// One-shot analysis from the four raw artifacts: the policy (universe),
    /// the logical rules, the collected TCAM rules, and the two logs.
    pub fn analyze_artifacts(
        &self,
        universe: &PolicyUniverse,
        logical_rules: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> ScoutReport {
        let check = self.shared.checker.check_network(logical_rules, tcam);
        let mut model = controller_risk_model(universe);
        augment_controller_model(&mut model, check.missing_rules());
        report_from_model(
            check,
            &model,
            universe,
            change_log,
            fault_log,
            self.shared.config.scout,
            &self.shared.correlation,
        )
    }

    /// Runs the equivalence check and localization against the *switch risk
    /// model* of a single switch, as an admin debugging one device would.
    pub fn analyze_switch(
        &self,
        universe: &PolicyUniverse,
        switch: SwitchId,
        logical_rules: &[LogicalRule],
        tcam: &[TcamRule],
        change_log: &ChangeLog,
    ) -> (
        SwitchCheckResult,
        RiskModel<scout_policy::EpgPair>,
        Hypothesis,
    ) {
        let check = self
            .shared
            .checker
            .check_switch(switch, logical_rules, tcam);
        let mut model = switch_risk_model(universe, switch);
        augment_switch_model(&mut model, switch, check.missing_rules.iter().copied());
        let hypothesis = scout_localize(&model, change_log, self.shared.config.scout);
        (check, model, hypothesis)
    }
}

/// The complete output of one end-to-end analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoutReport {
    /// The per-switch equivalence check results.
    pub check: NetworkCheckResult,
    /// The observations: `(switch, EPG pair)` triplets with missing rules.
    pub observations: BTreeSet<SwitchEpgPair>,
    /// Every object the failed elements depend on — what an admin would have
    /// to examine without fault localization.
    pub suspect_objects: BTreeSet<ObjectId>,
    /// The localization output: the suspected faulty objects.
    pub hypothesis: Hypothesis,
    /// Physical-level root causes per hypothesis object.
    pub diagnosis: CorrelationReport,
}

impl ScoutReport {
    /// `true` if the deployed state matches the policy everywhere.
    pub fn is_consistent(&self) -> bool {
        self.check.is_consistent()
    }

    /// Total number of missing rules across the network.
    pub fn missing_rule_count(&self) -> usize {
        self.check.missing_count()
    }

    /// The suspect-set reduction ratio γ = |hypothesis| / |suspect objects|
    /// (§VI of the paper). Returns 0 when there is nothing to suspect.
    pub fn gamma(&self) -> f64 {
        if self.suspect_objects.is_empty() {
            0.0
        } else {
            self.hypothesis.len() as f64 / self.suspect_objects.len() as f64
        }
    }
}

/// Builds the localization/diagnosis stages of a report from an equivalence
/// check and an *already augmented* controller risk model — the single
/// assembly point shared by the one-shot and session paths.
pub(crate) fn report_from_model(
    check: NetworkCheckResult,
    model: &RiskModel<SwitchEpgPair>,
    universe: &PolicyUniverse,
    change_log: &ChangeLog,
    fault_log: &FaultLog,
    scout: ScoutConfig,
    correlation: &CorrelationEngine,
) -> ScoutReport {
    let observations = model.failure_signature();
    let suspect_objects = model.suspect_set(&observations);

    let hypothesis = scout_localize(model, change_log, scout);
    let diagnosis = correlation.correlate(&hypothesis, universe, change_log, fault_log);

    ScoutReport {
        check,
        observations,
        suspect_objects,
        hypothesis,
        diagnosis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::FaultKind;
    use scout_policy::{sample, EpgPair};

    #[test]
    fn consistent_network_produces_empty_report() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(report.is_consistent());
        assert_eq!(report.missing_rule_count(), 0);
        assert!(report.observations.is_empty());
        assert!(report.hypothesis.is_empty());
        assert_eq!(report.gamma(), 0.0);
        assert!(report.diagnosis.diagnoses().is_empty());
    }

    #[test]
    fn filter_fault_is_localized_and_gamma_is_small() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // Drop every rule derived from the port-700 filter, on every switch.
        for switch in [sample::S2, sample::S3] {
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(!report.is_consistent());
        assert_eq!(report.missing_rule_count(), 4);
        // The App-DB pair on S2 and S3 is observed as failed.
        assert_eq!(report.observations.len(), 2);
        assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
        // Hypothesis is much smaller than the suspect set.
        assert!(report.hypothesis.len() < report.suspect_objects.len());
        assert!(report.gamma() > 0.0 && report.gamma() < 1.0);
    }

    #[test]
    fn unresponsive_switch_story_matches_paper_use_case() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        let engine = ScoutEngine::new();
        let report = engine.analyze(&fabric);
        assert!(!report.is_consistent());
        // The switch itself is the most economical explanation.
        assert!(report.hypothesis.contains(ObjectId::Switch(sample::S2)));
        // And the correlation engine ties it to the unreachable-switch fault.
        let by_kind = report.diagnosis.causes_by_kind();
        assert!(by_kind.contains_key(&FaultKind::SwitchUnreachable));
    }

    #[test]
    fn analyze_switch_uses_the_switch_risk_model() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |r| {
            r.pair() == EpgPair::new(sample::WEB, sample::APP)
        });
        let engine = ScoutEngine::new();
        let (check, model, hypothesis) = engine.analyze_switch(
            fabric.universe(),
            sample::S2,
            fabric.logical_rules(),
            &fabric.tcam_rules(sample::S2),
            fabric.change_log(),
        );
        assert!(!check.equivalent);
        assert_eq!(model.element_count(), 2);
        // Per Figure 4(a): EPG:Web and Contract:Web-App explain the failure.
        assert!(hypothesis.contains(ObjectId::Epg(sample::WEB)));
        assert!(hypothesis.contains(ObjectId::Contract(sample::C_WEB_APP)));
        assert!(!hypothesis.contains(ObjectId::Vrf(sample::VRF)));
        assert!(!hypothesis.contains(ObjectId::Epg(sample::APP)));
    }

    #[test]
    fn report_accessors_are_consistent() {
        let mut fabric = Fabric::new(sample::three_tier_with_capacity(3));
        fabric.deploy();
        let engine = ScoutEngine::from_config(EngineConfig::default());
        let report = engine.analyze(&fabric);
        assert_eq!(report.missing_rule_count(), report.check.missing_count());
        assert_eq!(report.diagnosis.diagnoses().len(), report.hypothesis.len());
        assert!(report.gamma() <= 1.0);
    }

    #[test]
    fn registry_tracks_open_sessions() {
        let mut a = Fabric::new(sample::three_tier());
        a.deploy();
        let mut b = Fabric::new(sample::three_tier());
        b.deploy();

        let engine = ScoutEngine::new();
        assert_eq!(engine.session_count(), 0);
        let sa = engine.open_session(&a);
        let sb = engine.open_session(&b);
        assert_eq!(engine.session_count(), 2);
        let infos = engine.sessions();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].id, sa.id());
        assert_eq!(infos[0].fabric_id, a.id());
        assert_eq!(infos[1].id, sb.id());
        assert_ne!(sa.id(), sb.id());
        // A cloned handle sees the same registry; dropping a session
        // deregisters it.
        let handle = engine.clone();
        drop(sa);
        assert_eq!(handle.session_count(), 1);
        assert_eq!(handle.sessions()[0].fabric_id, b.id());
        drop(sb);
        assert_eq!(engine.session_count(), 0);
    }

    #[test]
    fn builder_settings_reach_the_engine() {
        let engine = ScoutEngine::builder()
            .parallelism(Parallelism::Fixed(2))
            .node_budget(1 << 10)
            .oracle(OracleCadence::Never)
            .scout(ScoutConfig {
                recent_window: None,
            })
            .build();
        let config = engine.config();
        assert_eq!(config.parallelism, Parallelism::Fixed(2));
        assert_eq!(config.node_budget, 1 << 10);
        assert_eq!(config.oracle, OracleCadence::Never);
        assert_eq!(config.scout.recent_window, None);
        // Round-trip through the plain-data config.
        let copied = ScoutEngine::from_config(*config);
        assert_eq!(copied.config(), config);
    }

    #[test]
    fn oracle_cadence_schedules() {
        assert!(OracleCadence::EveryEpoch.checks(3, 10));
        assert!(OracleCadence::Stride(0).checks(3, 10));
        assert!(OracleCadence::Stride(1).checks(3, 10));
        assert!(OracleCadence::Stride(4).checks(8, 10));
        assert!(!OracleCadence::Stride(4).checks(3, 10));
        assert!(OracleCadence::Stride(4).checks(9, 10), "final epoch");
        assert!(!OracleCadence::Never.checks(0, 10));
    }
}
