//! Analysis sessions: the incremental, delta-driven half of the service API.
//!
//! An [`AnalysisSession`] monitors one fabric. It is opened from a snapshot
//! ([`ScoutEngine::open_session`](crate::ScoutEngine::open_session)) and
//! thereafter driven by typed [`EventBatch`]es with explicit epoch
//! sequencing: each [`AnalysisSession::ingest`] applies the deltas to the
//! session's [`FabricView`] mirror, re-checks only the switches the batch
//! dirtied (through the same incremental machinery as everything else in the
//! codebase), re-derives only the failed edges on the cached pristine risk
//! model, and returns a [`ReportDelta`] — what changed since the previous
//! epoch — while [`AnalysisSession::full_report`] stays available on demand.
//!
//! The contract: provided the event stream is faithful (e.g. produced by a
//! [`FabricProbe`]), every `full_report()` is
//! **bit-identical** to a from-scratch
//! [`ScoutEngine::analyze`](crate::ScoutEngine::analyze) of the same fabric
//! state. The enforced root test `tests/session.rs` replays a 200-epoch
//! soak timeline through `ingest` and asserts exactly that at every epoch.
//!
//! Sessions also serve the campaign pattern — many mutated clones of one
//! snapshot — via [`AnalysisSession::analyze_clone`], which reuses the
//! session's equivalence check for clean switches and its pristine risk
//! model for localization.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use scout_equiv::{EquivalenceChecker, NetworkCheckResult};
use scout_fabric::{
    ApplyError, EventBatch, Fabric, FabricEvent, FabricProbe, FabricView, FullSync,
};
use scout_metrics::TimeSeries;
use scout_policy::{LogicalRule, ObjectId, SwitchEpgPair, SwitchId};

use crate::correlation::PartialDiagnosis;
use crate::engine::{report_from_model, EngineShared, ScoutReport, SessionId};
use crate::localization::scout_localize;
use crate::risk::{
    augment_controller_model, augment_controller_model_tracked, controller_risk_model,
    controller_risk_model_sharded, RiskModel,
};

/// What an [`AnalysisSession`] needs after it detects an epoch gap: the
/// range of epochs whose deltas were lost in transit.
///
/// Carried by [`SessionError::EpochGap`]. Because [`FabricProbe`] cursors
/// advance on `observe` even when the produced batch is later dropped, the
/// lost deltas are *unrecoverable* — the only sound recovery is a fresh
/// full read ([`FabricProbe::full_resync`]) handed to
/// [`AnalysisSession::resync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncRequest {
    /// The first epoch the session never received (its `next_epoch` at the
    /// time the gap was detected).
    pub from_epoch: u64,
    /// The epoch of the batch that revealed the gap. That batch was *not*
    /// applied either: the resync must cover it too.
    pub observed_epoch: u64,
}

impl ResyncRequest {
    /// How many epochs of deltas were lost, including the revealing batch.
    pub fn missing_epochs(&self) -> u64 {
        self.observed_epoch - self.from_epoch + 1
    }
}

/// Why an [`AnalysisSession::ingest`] was rejected. A rejected batch leaves
/// the session completely untouched: the epoch is not consumed and the
/// mirror, caches and report are unchanged.
///
/// # Example
///
/// ```
/// use scout_core::{ResyncRequest, ScoutEngine, SessionError};
/// use scout_fabric::{EventBatch, Fabric};
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let engine = ScoutEngine::new();
/// let mut session = engine.open_session(&fabric);
///
/// // Epoch 3 arrives when 1 was expected: epochs 1..=3 were lost in
/// // transit, and the error carries the resync the session now needs.
/// let err = session.ingest(EventBatch::empty(3)).unwrap_err();
/// let resync = ResyncRequest { from_epoch: 1, observed_epoch: 3 };
/// assert_eq!(err, SessionError::EpochGap { resync });
/// assert_eq!(resync.missing_epochs(), 3);
/// assert_eq!(session.epoch(), 0, "nothing was consumed");
/// assert!(session.ingest(EventBatch::empty(1)).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The batch's epoch is behind the next expected one — a duplicate or a
    /// reordered late delivery. Safe to drop: the session already holds
    /// every epoch up to `expected - 1`.
    EpochOutOfOrder {
        /// The epoch the session expected next.
        expected: u64,
        /// The epoch the batch carried.
        got: u64,
    },
    /// The batch's epoch is *ahead* of the next expected one: at least one
    /// earlier batch was lost in transit, and (probe cursors having moved
    /// on) its deltas can never be replayed. The session stays wedged at
    /// its current epoch until [`AnalysisSession::resync`] is fed a fresh
    /// [`FullSync`] read covering the carried [`ResyncRequest`].
    EpochGap {
        /// The lost epoch range and the epoch a resync must reach.
        resync: ResyncRequest,
    },
    /// An event referenced a switch the session's policy universe does not
    /// contain.
    UnknownSwitch {
        /// The rejected batch's epoch.
        epoch: u64,
        /// The unknown switch id.
        switch: SwitchId,
    },
    /// A fault-clear event referenced an entry beyond the mirrored fault log.
    FaultIndexOutOfRange {
        /// The rejected batch's epoch.
        epoch: u64,
        /// The offending index.
        index: usize,
        /// The mirrored log's length at that point of the batch.
        len: usize,
    },
}

impl SessionError {
    fn from_apply(epoch: u64, error: ApplyError) -> Self {
        match error {
            ApplyError::UnknownSwitch(switch) => SessionError::UnknownSwitch { epoch, switch },
            ApplyError::FaultIndexOutOfRange { index, len } => {
                SessionError::FaultIndexOutOfRange { epoch, index, len }
            }
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::EpochOutOfOrder { expected, got } => {
                write!(f, "epoch out of order: expected {expected}, got {got}")
            }
            SessionError::EpochGap { resync } => write!(
                f,
                "epoch gap: epochs {}..={} were lost in transit; full resync required",
                resync.from_epoch, resync.observed_epoch
            ),
            SessionError::UnknownSwitch { epoch, switch } => {
                write!(f, "epoch {epoch}: event references unknown switch {switch}")
            }
            SessionError::FaultIndexOutOfRange { epoch, index, len } => write!(
                f,
                "epoch {epoch}: fault clear index {index} out of range (log has {len} entries)"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// What one [`AnalysisSession::ingest`] changed relative to the previous
/// epoch's report.
///
/// Deltas *compose*: folding `newly_missing`/`restored` (and the hypothesis
/// added/removed sets) over the open-time report reproduces the current full
/// report exactly — the enforced root test `tests/session.rs` replays 200
/// epochs asserting it.
///
/// # Example
///
/// ```
/// use scout_core::ScoutEngine;
/// use scout_fabric::{EventBatch, Fabric, FabricProbe};
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let engine = ScoutEngine::new();
/// let mut session = engine.open_session(&fabric);
/// let mut probe = FabricProbe::new(&fabric);
///
/// // A heartbeat epoch changes nothing the operator can see…
/// let delta = session.ingest(EventBatch::empty(1)).unwrap();
/// assert!(delta.is_noop() && delta.consistent);
///
/// // …while real drift names exactly what changed.
/// fabric.evict_tcam(sample::S2, 1, false);
/// let delta = session.ingest_observation(&mut probe, &fabric).unwrap();
/// assert_eq!(delta.epoch, 2);
/// assert_eq!(delta.rechecked.len(), 1);
/// assert!(!delta.consistent && !delta.newly_missing.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportDelta {
    /// The epoch this delta advanced the session to.
    pub epoch: u64,
    /// Switches the batch dirtied (and the session re-checked).
    pub rechecked: BTreeSet<SwitchId>,
    /// Logical rules missing now that were not missing before.
    pub newly_missing: Vec<LogicalRule>,
    /// Logical rules missing before that are restored (or retired) now.
    pub restored: Vec<LogicalRule>,
    /// Objects that entered the hypothesis this epoch.
    pub hypothesis_added: BTreeSet<ObjectId>,
    /// Objects that left the hypothesis this epoch.
    pub hypothesis_removed: BTreeSet<ObjectId>,
    /// Objects whose physical-root-cause diagnosis appeared, disappeared or
    /// changed this epoch.
    pub diagnosis_changed: BTreeSet<ObjectId>,
    /// Whether the fabric is consistent with the policy after this epoch.
    pub consistent: bool,
}

impl ReportDelta {
    /// A delta reporting "nothing changed" at `epoch`.
    fn noop(epoch: u64, consistent: bool) -> Self {
        Self {
            epoch,
            consistent,
            ..Self::default()
        }
    }

    fn between(
        epoch: u64,
        rechecked: BTreeSet<SwitchId>,
        prev: &ScoutReport,
        next: &ScoutReport,
    ) -> Self {
        let prev_missing = prev.check.missing_rule_set();
        let next_missing = next.check.missing_rule_set();
        let prev_hypothesis = prev.hypothesis.objects();
        let next_hypothesis = next.hypothesis.objects();
        let diagnosed: BTreeSet<ObjectId> = prev
            .diagnosis
            .diagnoses()
            .iter()
            .chain(next.diagnosis.diagnoses())
            .map(|d| d.object)
            .collect();
        Self {
            epoch,
            rechecked,
            newly_missing: next_missing.difference(&prev_missing).copied().collect(),
            restored: prev_missing.difference(&next_missing).copied().collect(),
            hypothesis_added: next_hypothesis
                .difference(&prev_hypothesis)
                .copied()
                .collect(),
            hypothesis_removed: prev_hypothesis
                .difference(&next_hypothesis)
                .copied()
                .collect(),
            diagnosis_changed: diagnosed
                .into_iter()
                .filter(|&o| prev.diagnosis.for_object(o) != next.diagnosis.for_object(o))
                .collect(),
            consistent: next.is_consistent(),
        }
    }

    /// Returns `true` if the epoch changed nothing the operator can see
    /// (missing rules, hypothesis and diagnoses are all unchanged).
    pub fn is_noop(&self) -> bool {
        self.newly_missing.is_empty()
            && self.restored.is_empty()
            && self.hypothesis_added.is_empty()
            && self.hypothesis_removed.is_empty()
            && self.diagnosis_changed.is_empty()
    }
}

/// Running counters and latency series of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Successful `ingest` calls (rejected batches are not counted).
    pub ingests: usize,
    /// Events applied across all ingests.
    pub events: usize,
    /// Ingests of an empty batch (cheap no-ops).
    pub empty_batches: usize,
    /// Switches re-checked across all ingests.
    pub rechecked_switches: usize,
    /// Gap recoveries via [`AnalysisSession::resync`].
    pub resyncs: usize,
    /// Per-ingest latency in nanoseconds, one sample per successful ingest
    /// (resyncs included: they are the expensive tail of the distribution).
    pub ingest_latency: TimeSeries,
}

impl Default for SessionStats {
    fn default() -> Self {
        Self {
            ingests: 0,
            events: 0,
            empty_batches: 0,
            rechecked_switches: 0,
            resyncs: 0,
            ingest_latency: TimeSeries::new("per-ingest latency (ns)"),
        }
    }
}

/// A long-lived analysis session monitoring one fabric.
///
/// # Example
///
/// ```
/// use scout_core::ScoutEngine;
/// use scout_fabric::{EventBatch, Fabric, FabricProbe};
/// use scout_policy::{sample, ObjectId};
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
///
/// let engine = ScoutEngine::new();
/// let mut session = engine.open_session(&fabric);
/// let mut probe = FabricProbe::new(&fabric);
/// assert!(session.full_report().is_consistent());
///
/// // The port-700 rules silently vanish; one delta batch catches the
/// // session up and reports exactly what changed.
/// fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
/// fabric.remove_tcam_rules_where(sample::S3, |r| r.matcher.ports.start == 700);
/// let events = probe.observe(&fabric);
/// let delta = session
///     .ingest(EventBatch::new(session.next_epoch(), events))
///     .unwrap();
/// assert_eq!(delta.newly_missing.len(), 4);
/// assert!(delta
///     .hypothesis_added
///     .contains(&ObjectId::Filter(sample::F_700)));
/// // The on-demand full report matches a from-scratch analysis exactly.
/// assert_eq!(*session.full_report(), engine.analyze(&fabric));
/// ```
#[derive(Debug)]
pub struct AnalysisSession {
    id: SessionId,
    shared: Arc<EngineShared>,
    /// The session's private checker: warm across ingests and clone
    /// analyses, never contended with other sessions.
    checker: EquivalenceChecker,
    /// The monitor-side mirror of the fabric's artifacts.
    view: FabricView,
    /// Identity of the monitored fabric (for [`AnalysisSession::covers`]).
    fabric_id: u64,
    /// The fabric's change epoch at open time; clone analyses derive their
    /// dirty sets relative to it.
    open_epoch: u64,
    /// The session epoch: number of batches ingested so far.
    epoch: u64,
    /// The pristine (un-augmented) controller risk model of the mirrored
    /// universe; each analysis applies and rolls back only the failed edges.
    model: RiskModel<SwitchEpgPair>,
    /// The current full report (owns the current equivalence check).
    report: ScoutReport,
    stats: SessionStats,
}

impl AnalysisSession {
    /// Opens a session: snapshots `fabric` and runs the full pipeline once.
    pub(crate) fn open(shared: Arc<EngineShared>, id: SessionId, fabric: &Fabric) -> Self {
        let mut checker = EquivalenceChecker::with_parallelism(shared.config.parallelism);
        checker.set_node_budget(shared.config.node_budget);
        checker.set_node_table(shared.config.node_table);
        let view = FabricView::of(fabric);
        let check = checker.check_network(view.logical_rules(), view.tcam());
        let mut model = controller_risk_model_sharded(view.universe(), shared.config.parallelism);
        let marks = augment_controller_model_tracked(&mut model, check.missing_rules());
        let report = report_from_model(
            check,
            &model,
            view.universe(),
            view.change_log(),
            view.fault_log(),
            shared.config.scout,
            &shared.correlation,
        );
        model.undo_failures(marks);
        Self {
            id,
            shared,
            checker,
            view,
            fabric_id: fabric.id(),
            open_epoch: fabric.epoch(),
            epoch: 0,
            model,
            report,
            stats: SessionStats::default(),
        }
    }

    /// Rebuilds a session from a checkpoint (the restore path; see
    /// [`ScoutEngine::restore`](crate::ScoutEngine::restore)).
    ///
    /// The pristine risk model is recomputed from the restored view — it is a
    /// pure function of the policy universe — and the checkpointed report
    /// carries the equivalence check, so the session resumes exactly where
    /// the checkpointed one stood; the caller replays the snapshot's tail
    /// through the ordinary [`AnalysisSession::ingest`] path.
    pub(crate) fn resume(
        shared: Arc<EngineShared>,
        id: SessionId,
        snapshot: &crate::snapshot::Snapshot,
    ) -> Self {
        let mut checker = EquivalenceChecker::with_parallelism(shared.config.parallelism);
        checker.set_node_budget(shared.config.node_budget);
        checker.set_node_table(shared.config.node_table);
        let view = snapshot.view().clone();
        let model = controller_risk_model_sharded(view.universe(), shared.config.parallelism);
        Self {
            id,
            shared,
            checker,
            fabric_id: snapshot.fabric_id(),
            open_epoch: snapshot.open_epoch(),
            epoch: snapshot.epoch(),
            model,
            report: snapshot.report().clone(),
            view,
            stats: SessionStats::default(),
        }
    }

    /// The session's registry id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The [`Fabric::id`](scout_fabric::Fabric::id) of the monitored fabric.
    pub fn fabric_id(&self) -> u64 {
        self.fabric_id
    }

    /// The fabric's change epoch when the session was opened (checkpoints
    /// carry it so clone-coverage semantics survive restore).
    pub(crate) fn open_epoch(&self) -> u64 {
        self.open_epoch
    }

    /// Captures the session's durable state — the fabric-view mirror, the
    /// epoch cursor and the current full report — as a plain-data
    /// [`Snapshot`](crate::Snapshot) with an empty replay tail.
    ///
    /// Append post-checkpoint batches with
    /// [`Snapshot::push_tail`](crate::Snapshot::push_tail) and rebuild a live
    /// session with [`ScoutEngine::restore`](crate::ScoutEngine::restore);
    /// the restored session is bit-identical to one that never stopped. See
    /// [`crate::snapshot`] for the full contract and an end-to-end example.
    pub fn checkpoint(&self) -> crate::snapshot::Snapshot {
        crate::snapshot::Snapshot::of_session(self)
    }

    /// The last successfully ingested epoch (0 right after open).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch the next [`AnalysisSession::ingest`] must carry.
    pub fn next_epoch(&self) -> u64 {
        self.epoch + 1
    }

    /// The session's mirror of the fabric's artifacts.
    pub fn view(&self) -> &FabricView {
        &self.view
    }

    /// The current full report, maintained incrementally — bit-identical to a
    /// from-scratch analysis of the mirrored fabric state.
    pub fn full_report(&self) -> &ScoutReport {
        &self.report
    }

    /// `true` if the mirrored deployment currently matches the policy.
    pub fn is_consistent(&self) -> bool {
        self.report.is_consistent()
    }

    /// The session's running counters and per-ingest latency series.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Ingests one epoch of typed deltas.
    ///
    /// The batch's epoch must be exactly [`AnalysisSession::next_epoch`];
    /// duplicates and reordered late deliveries are rejected with
    /// [`SessionError::EpochOutOfOrder`] (droppable), while a batch from the
    /// *future* is rejected with [`SessionError::EpochGap`] — earlier deltas
    /// were lost and the carried [`ResyncRequest`] names the resync that
    /// recovers the session. Events referencing unknown switches or
    /// out-of-range fault entries are rejected with context. A rejected
    /// batch leaves the session untouched. An empty batch is a cheap no-op:
    /// the epoch advances and the previous report is retained without
    /// re-running any analysis stage.
    pub fn ingest(&mut self, batch: EventBatch) -> Result<ReportDelta, SessionError> {
        // All-or-nothing: validate the whole batch before mutating anything.
        self.validate_batch(&batch)?;
        let expected = self.epoch + 1;
        let start = Instant::now();
        if batch.is_empty() {
            self.epoch = expected;
            self.stats.ingests += 1;
            self.stats.empty_batches += 1;
            self.stats
                .ingest_latency
                .push(start.elapsed().as_nanos() as f64);
            return Ok(ReportDelta::noop(expected, self.report.is_consistent()));
        }

        let mut dirty: BTreeSet<SwitchId> = BTreeSet::new();
        let mut policy_changed = false;
        for event in &batch.events {
            policy_changed |= matches!(event, FabricEvent::PolicyUpdate { .. });
            dirty.extend(
                self.view
                    .apply(event)
                    .expect("the batch was validated up front"),
            );
        }

        // Equivalence: re-check only what the batch dirtied.
        let view = &self.view;
        let check = self.checker.recheck_dirty_with(
            &self.report.check,
            view.logical_rules(),
            view.switch_set(),
            &dirty,
            |s| view.tcam_of(s),
        );

        // Risk model: rebuild only on a policy change, otherwise re-derive
        // (and roll back) just the failed edges of the new check.
        if policy_changed {
            self.model =
                controller_risk_model_sharded(self.view.universe(), self.shared.config.parallelism);
        }
        let marks = augment_controller_model_tracked(&mut self.model, check.missing_rules());
        let report = report_from_model(
            check,
            &self.model,
            self.view.universe(),
            self.view.change_log(),
            self.view.fault_log(),
            self.shared.config.scout,
            &self.shared.correlation,
        );
        self.model.undo_failures(marks);

        let delta = ReportDelta::between(expected, dirty, &self.report, &report);
        self.report = report;
        self.epoch = expected;
        self.stats.ingests += 1;
        self.stats.events += batch.len();
        self.stats.rechecked_switches += delta.rechecked.len();
        self.stats
            .ingest_latency
            .push(start.elapsed().as_nanos() as f64);
        Ok(delta)
    }

    /// Checks whether `batch` would be accepted by [`AnalysisSession::ingest`]
    /// without mutating the session — the durability hook used by
    /// `scout-store` to refuse a batch *before* it consumes journal bytes,
    /// so the on-disk journal only ever contains batches the session
    /// accepted.
    ///
    /// Runs exactly the up-front checks `ingest` performs: strict `+1` epoch
    /// sequencing (the same [`SessionError::EpochGap`] /
    /// [`SessionError::EpochOutOfOrder`] contract) and whole-batch event
    /// validation against the mirrored view. A batch that passes is
    /// guaranteed to be accepted by an immediately following `ingest` on
    /// the same, unmodified session.
    pub fn validate_batch(&self, batch: &EventBatch) -> Result<(), SessionError> {
        let expected = self.epoch + 1;
        if batch.epoch > expected {
            return Err(SessionError::EpochGap {
                resync: ResyncRequest {
                    from_epoch: expected,
                    observed_epoch: batch.epoch,
                },
            });
        }
        if batch.epoch < expected {
            return Err(SessionError::EpochOutOfOrder {
                expected,
                got: batch.epoch,
            });
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.view
            .validate(&batch.events)
            .map_err(|e| SessionError::from_apply(expected, e))
    }

    /// Observes `fabric` through `probe` and ingests the resulting events as
    /// the next epoch — the standard monitoring step (probe diff → sequenced
    /// batch → [`AnalysisSession::ingest`]) in one call, keeping the epoch
    /// bookkeeping in one place.
    pub fn ingest_observation(
        &mut self,
        probe: &mut FabricProbe,
        fabric: &Fabric,
    ) -> Result<ReportDelta, SessionError> {
        let events = probe.observe(fabric);
        self.ingest(EventBatch::new(self.next_epoch(), events))
    }

    /// Recovers from an epoch gap by replacing the mirror with a fresh full
    /// read and re-running the full pipeline on it — the recovery path for
    /// [`SessionError::EpochGap`].
    ///
    /// `epoch` is the epoch the resync advances the session to (at least
    /// the gap's `observed_epoch`; later is fine if more epochs elapsed
    /// before the resync read landed) and `sync` is the fresh read, e.g.
    /// from [`FabricProbe::full_resync`] — which also realigns the probe's
    /// cursors so subsequent observations resume incrementally. An `epoch`
    /// that does not move the session forward is rejected with
    /// [`SessionError::EpochOutOfOrder`] and changes nothing.
    ///
    /// From the resync epoch onward the session is bit-identical to one
    /// that never lost a batch: the enforced root test `tests/hostile.rs`
    /// replays an interrupted and an uninterrupted timeline side by side
    /// and asserts exactly that.
    pub fn resync(&mut self, epoch: u64, sync: FullSync) -> Result<ReportDelta, SessionError> {
        if epoch < self.next_epoch() {
            return Err(SessionError::EpochOutOfOrder {
                expected: self.next_epoch(),
                got: epoch,
            });
        }
        let start = Instant::now();
        self.view = sync.into_view();
        let check = self
            .checker
            .check_network(self.view.logical_rules(), self.view.tcam());
        self.model =
            controller_risk_model_sharded(self.view.universe(), self.shared.config.parallelism);
        let marks = augment_controller_model_tracked(&mut self.model, check.missing_rules());
        let report = report_from_model(
            check,
            &self.model,
            self.view.universe(),
            self.view.change_log(),
            self.view.fault_log(),
            self.shared.config.scout,
            &self.shared.correlation,
        );
        self.model.undo_failures(marks);

        let delta =
            ReportDelta::between(epoch, self.view.switch_set().clone(), &self.report, &report);
        self.report = report;
        self.epoch = epoch;
        self.stats.ingests += 1;
        self.stats.resyncs += 1;
        self.stats.rechecked_switches += delta.rechecked.len();
        self.stats
            .ingest_latency
            .push(start.elapsed().as_nanos() as f64);
        Ok(delta)
    }

    /// Ranks every candidate root cause of the current report by
    /// confidence — the degraded-telemetry companion to the definitive
    /// [`ScoutReport::diagnosis`](crate::ScoutReport): when fault logs are
    /// missing or incomplete, the ranking still names the most likely
    /// culprits instead of going silent. See
    /// [`CorrelationEngine::rank_partial`](crate::CorrelationEngine::rank_partial)
    /// for the ranking contract.
    pub fn partial_diagnosis(&self) -> PartialDiagnosis {
        self.shared.correlation.rank_partial(
            &self.report.hypothesis,
            &self.report.suspect_objects,
            self.view.universe(),
            self.view.change_log(),
            self.view.fault_log(),
        )
    }

    /// Returns `true` if the session's open-time check can be reused
    /// incrementally for `fabric`: no event batch has been ingested (so the
    /// session's check still is the open-time one), and the fabric is the
    /// monitored fabric itself or a clone taken from it at or after the open
    /// epoch (every divergence then shows up in
    /// [`Fabric::dirty_switches_since`] relative to that epoch).
    ///
    /// Once `ingest` has advanced the session, its check reflects the
    /// *mirrored* state — drift a pre-drift clone does not carry in its dirty
    /// set — so clone analyses of an ingesting session always take the full
    /// check.
    pub fn covers(&self, fabric: &Fabric) -> bool {
        self.epoch == 0
            && (fabric.id() == self.fabric_id
                || (fabric.parent_id() == Some(self.fabric_id)
                    && fabric.parent_epoch().is_some_and(|e| e >= self.open_epoch)))
    }

    /// Analyzes a mutated clone of the monitored fabric, reusing the
    /// session's check for clean switches and its pristine risk model for
    /// localization — the campaign pattern: one session per worker, one
    /// `analyze_clone` per scenario.
    ///
    /// The produced report is bit-identical to
    /// [`ScoutEngine::analyze`](crate::ScoutEngine::analyze) on the same
    /// fabric. The fast paths engage when the session
    /// [`covers`](AnalysisSession::covers) the fabric and, for the risk
    /// model, when the policy universe is unchanged; otherwise the method
    /// transparently falls back to the from-scratch pipeline for the affected
    /// stage.
    pub fn analyze_clone(&mut self, fabric: &Fabric) -> ScoutReport {
        self.analyze_clone_with(fabric, |_| ()).0
    }

    /// Like [`AnalysisSession::analyze_clone`], but additionally runs `extra`
    /// against the same augmented controller risk model — e.g. a baseline
    /// algorithm being compared on identical evidence — so the model is
    /// augmented (and rolled back) once per analysis instead of once per
    /// consumer.
    pub fn analyze_clone_with<T>(
        &mut self,
        fabric: &Fabric,
        extra: impl FnOnce(&RiskModel<SwitchEpgPair>) -> T,
    ) -> (ScoutReport, T) {
        let check = if self.covers(fabric) {
            let dirty = fabric.dirty_switches_since(self.open_epoch);
            let current: BTreeSet<SwitchId> = fabric.universe().switch_ids().into_iter().collect();
            self.checker.recheck_dirty_with(
                &self.report.check,
                fabric.logical_rules(),
                &current,
                &dirty,
                |s| fabric.tcam_rules(s),
            )
        } else {
            self.checker
                .check_network(fabric.logical_rules(), &fabric.collect_tcam())
        };
        let scout = self.shared.config.scout;
        let shared = Arc::clone(&self.shared);
        let (observations, suspect_objects, hypothesis, diagnosis, extra_out) = self
            .with_augmented_model(fabric, &check, |model| {
                let observations = model.failure_signature();
                let suspect_objects = model.suspect_set(&observations);
                let hypothesis = scout_localize(model, fabric.change_log(), scout);
                let diagnosis = shared.correlation.correlate(
                    &hypothesis,
                    fabric.universe(),
                    fabric.change_log(),
                    fabric.fault_log(),
                );
                (
                    observations,
                    suspect_objects,
                    hypothesis,
                    diagnosis,
                    extra(model),
                )
            });
        (
            ScoutReport {
                check,
                observations,
                suspect_objects,
                hypothesis,
                diagnosis,
            },
            extra_out,
        )
    }

    /// The reference from-scratch analysis of a clone, through the session's
    /// private checker: full network check, fresh risk model. Used by
    /// differential drivers to validate [`AnalysisSession::analyze_clone`];
    /// both produce bit-identical reports.
    pub fn analyze_scratch_with<T>(
        &mut self,
        fabric: &Fabric,
        extra: impl FnOnce(&RiskModel<SwitchEpgPair>) -> T,
    ) -> (ScoutReport, T) {
        let check = self
            .checker
            .check_network(fabric.logical_rules(), &fabric.collect_tcam());
        let mut model = controller_risk_model(fabric.universe());
        augment_controller_model(&mut model, check.missing_rules());
        let report = report_from_model(
            check,
            &model,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
            self.shared.config.scout,
            &self.shared.correlation,
        );
        let extra_out = extra(&model);
        (report, extra_out)
    }

    /// Runs `f` against the controller risk model augmented with the missing
    /// rules of `check`, re-deriving only the failed edges when `fabric`
    /// still holds the mirrored policy (and rebuilding the model from the
    /// fabric's universe otherwise). The cached model is always restored to
    /// its pristine state before returning.
    pub fn with_augmented_model<T>(
        &mut self,
        fabric: &Fabric,
        check: &NetworkCheckResult,
        f: impl FnOnce(&RiskModel<SwitchEpgPair>) -> T,
    ) -> T {
        if fabric.universe_version() == self.view.universe_version() {
            let marks = augment_controller_model_tracked(&mut self.model, check.missing_rules());
            let out = f(&self.model);
            self.model.undo_failures(marks);
            out
        } else {
            let mut model = controller_risk_model(fabric.universe());
            augment_controller_model(&mut model, check.missing_rules());
            f(&model)
        }
    }
}

impl Drop for AnalysisSession {
    /// Deregisters the session from its fabric's registry shard (recovering
    /// from a poisoned lock, like every other registry access).
    fn drop(&mut self) {
        self.shared.deregister(self.fabric_id, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ScoutEngine;
    use scout_fabric::FabricProbe;
    use scout_policy::sample;

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    fn ingest_observation(
        session: &mut AnalysisSession,
        probe: &mut FabricProbe,
        fabric: &Fabric,
    ) -> ReportDelta {
        session
            .ingest_observation(probe, fabric)
            .expect("faithful observations ingest cleanly")
    }

    #[test]
    fn ingested_session_matches_full_analysis() {
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        assert!(session.is_consistent());
        assert_eq!(*session.full_report(), engine.analyze(&fabric));

        // Mutate two switches; the delta-driven report must match from
        // scratch, and the delta must name the change.
        for switch in [sample::S2, sample::S3] {
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let delta = ingest_observation(&mut session, &mut probe, &fabric);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));
        assert_eq!(delta.rechecked, BTreeSet::from([sample::S2, sample::S3]));
        assert_eq!(delta.newly_missing.len(), 4);
        assert!(delta.restored.is_empty());
        assert!(delta
            .hypothesis_added
            .contains(&ObjectId::Filter(sample::F_700)));
        assert!(delta
            .diagnosis_changed
            .contains(&ObjectId::Filter(sample::F_700)));
        assert!(!delta.consistent);
        assert!(!delta.is_noop());

        // Repair: the rules come back, and the delta reports the restoration.
        fabric.repair_switch(sample::S2);
        fabric.repair_switch(sample::S3);
        let delta = ingest_observation(&mut session, &mut probe, &fabric);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));
        assert_eq!(delta.restored.len(), 4);
        assert!(delta
            .hypothesis_removed
            .contains(&ObjectId::Filter(sample::F_700)));
        assert!(delta.consistent);
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn empty_batches_are_cheap_noops() {
        let fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let before = session.full_report().clone();
        let delta = session.ingest(EventBatch::empty(1)).unwrap();
        assert!(delta.is_noop());
        assert!(delta.consistent);
        assert_eq!(delta.epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert_eq!(*session.full_report(), before);
        let stats = session.stats();
        assert_eq!(stats.ingests, 1);
        assert_eq!(stats.empty_batches, 1);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.rechecked_switches, 0);
        assert_eq!(stats.ingest_latency.len(), 1);
    }

    #[test]
    fn epoch_sequencing_is_strict() {
        let fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        assert_eq!(session.next_epoch(), 1);

        // Epoch 0 (behind) is a droppable out-of-order delivery; epochs
        // from the future are gaps carrying the resync they require.
        assert_eq!(
            session.ingest(EventBatch::empty(0)),
            Err(SessionError::EpochOutOfOrder {
                expected: 1,
                got: 0
            })
        );
        for ahead in [2u64, 7] {
            let err = session.ingest(EventBatch::empty(ahead)).unwrap_err();
            assert_eq!(
                err,
                SessionError::EpochGap {
                    resync: ResyncRequest {
                        from_epoch: 1,
                        observed_epoch: ahead
                    }
                }
            );
            assert!(err.to_string().contains("resync required"));
        }
        assert!(session.ingest(EventBatch::empty(1)).is_ok());
        // Replaying the consumed epoch is rejected too.
        let replay = session.ingest(EventBatch::empty(1));
        assert_eq!(
            replay,
            Err(SessionError::EpochOutOfOrder {
                expected: 2,
                got: 1
            })
        );
        assert!(replay.unwrap_err().to_string().contains("out of order"));
        // Rejected batches consume nothing.
        assert_eq!(session.epoch(), 1);
        assert_eq!(session.stats().ingests, 1);
    }

    #[test]
    fn gapped_session_recovers_via_full_resync() {
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        // Epoch 1's batch is produced… and lost. The probe's cursors have
        // moved on regardless.
        fabric.evict_tcam(sample::S2, 2, true);
        let _lost = probe.observe(&fabric);

        // Epoch 2's batch arrives and reveals the gap; the session is
        // untouched and — without a resync — wedged (every later delta is
        // also from the future).
        fabric.evict_tcam(sample::S3, 1, true);
        let late = EventBatch::new(2, probe.observe(&fabric));
        let err = session.ingest(late).unwrap_err();
        let SessionError::EpochGap { resync } = err else {
            panic!("a future epoch must be classified as a gap, got {err:?}");
        };
        assert_eq!(resync.from_epoch, 1);
        assert_eq!(resync.observed_epoch, 2);
        assert_eq!(resync.missing_epochs(), 2);
        assert_eq!(session.epoch(), 0);
        assert!(session.is_consistent(), "the gap consumed nothing");

        // Recovery: a fresh full read advances the session past the gap and
        // the report matches a from-scratch analysis bit for bit.
        let delta = session
            .resync(resync.observed_epoch, probe.full_resync(&fabric))
            .unwrap();
        assert_eq!(delta.epoch, 2);
        assert!(!delta.consistent);
        assert_eq!(session.epoch(), 2);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));
        assert_eq!(session.stats().resyncs, 1);

        // The probe resumed incrementally: ordinary ingests work again and
        // stay bit-identical.
        fabric.repair_switch(sample::S2);
        fabric.repair_switch(sample::S3);
        let delta = session.ingest_observation(&mut probe, &fabric).unwrap();
        assert_eq!(delta.epoch, 3);
        assert!(delta.consistent);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));

        // A resync that does not move the session forward is rejected.
        let stale = session.resync(1, probe.full_resync(&fabric));
        assert_eq!(
            stale,
            Err(SessionError::EpochOutOfOrder {
                expected: 4,
                got: 1
            })
        );
        assert_eq!(session.epoch(), 3);
    }

    #[test]
    fn unknown_switch_events_are_rejected_with_context() {
        let fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let before = session.full_report().clone();
        let stray = SwitchId::new(99);
        let batch = EventBatch::new(
            1,
            vec![FabricEvent::TcamSync {
                switch: stray,
                rules: Vec::new(),
            }],
        );
        let err = session.ingest(batch).unwrap_err();
        assert_eq!(
            err,
            SessionError::UnknownSwitch {
                epoch: 1,
                switch: stray
            }
        );
        assert!(err.to_string().contains("unknown switch"));
        // The rejected batch left the session untouched: the epoch was not
        // consumed and the report is unchanged.
        assert_eq!(session.epoch(), 0);
        assert_eq!(*session.full_report(), before);
        assert!(session.ingest(EventBatch::empty(1)).is_ok());
    }

    #[test]
    fn bad_fault_indices_are_rejected_atomically() {
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        // A batch whose first event is valid and second is not must apply
        // neither.
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        let batch = EventBatch::new(
            1,
            vec![
                FabricEvent::TcamSync {
                    switch: sample::S2,
                    rules: fabric.tcam_rules(sample::S2),
                },
                FabricEvent::FaultEvents {
                    raised: Vec::new(),
                    cleared: vec![(42, scout_fabric::Timestamp::new(1))],
                },
            ],
        );
        let err = session.ingest(batch).unwrap_err();
        assert!(matches!(
            err,
            SessionError::FaultIndexOutOfRange {
                epoch: 1,
                index: 42,
                ..
            }
        ));
        assert!(
            session.is_consistent(),
            "the TcamSync must not have applied"
        );
        assert_eq!(session.epoch(), 0);
    }

    #[test]
    fn clone_analysis_matches_full_analysis() {
        let base = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&base);
        assert!(session.covers(&base));

        // A mutated clone: only S2/S3 are dirty relative to the session.
        let mut clone = base.clone();
        assert!(session.covers(&clone));
        for switch in [sample::S2, sample::S3] {
            clone.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let derived = session.analyze_clone(&clone);
        let full = engine.analyze(&clone);
        assert_eq!(derived, full);
        assert!(derived.hypothesis.contains(ObjectId::Filter(sample::F_700)));

        // The session stays reusable: a second, different clone agrees too.
        let mut other = base.clone();
        other.disconnect_switch(sample::S2);
        other.remove_tcam_rules_where(sample::S2, |_| true);
        let derived = session.analyze_clone(&other);
        assert_eq!(derived, engine.analyze(&other));

        // And the reference from-scratch path through the session agrees.
        let (scratch, _) = session.analyze_scratch_with(&other, |_| ());
        assert_eq!(scratch, derived);
    }

    #[test]
    fn clone_analysis_survives_policy_updates() {
        use scout_policy::{Contract, Filter, FilterEntry, FilterId, PortRange, Protocol};
        let base = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&base);

        // The clone's policy diverges: the risk-model fast path must yield to
        // a from-scratch model while the check stays incremental.
        let mut clone = base.clone();
        let universe = clone.universe();
        let mut b = scout_policy::PolicyUniverse::builder();
        for t in universe.tenants() {
            b.tenant(t.clone());
        }
        for v in universe.vrfs() {
            b.vrf(v.clone());
        }
        for e in universe.epgs() {
            b.epg(e.clone());
        }
        for s in universe.switches() {
            b.switch(s.clone());
        }
        for ep in universe.endpoints() {
            b.endpoint(ep.clone());
        }
        for f in universe.filters() {
            b.filter(f.clone());
        }
        b.filter(Filter::new(
            FilterId::new(60),
            "port-9443",
            vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(9443))],
        ));
        for c in universe.contracts() {
            if c.id == sample::C_APP_DB {
                let mut filters = c.filters.clone();
                filters.push(FilterId::new(60));
                b.contract(Contract::new(c.id, c.name.clone(), filters));
            } else {
                b.contract(c.clone());
            }
        }
        for binding in universe.bindings() {
            b.bind(*binding);
        }
        let updated = b.build().unwrap();

        clone.disconnect_switch(sample::S3);
        clone.update_policy(updated);
        let derived = session.analyze_clone(&clone);
        let full = engine.analyze(&clone);
        assert_eq!(derived, full);
        assert!(!derived.is_consistent());
    }

    #[test]
    fn stale_clones_are_not_covered_but_still_analyzed_correctly() {
        let mut base = deployed();
        let engine = ScoutEngine::new();

        // Clone first, open the session later: the clone misses the
        // post-clone mutation, so the session must refuse the incremental
        // path…
        let stale = base.clone();
        base.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let mut session = engine.open_session(&base);
        assert!(!session.covers(&stale));
        // …and still produce the correct (full-check) report for it.
        let report = session.analyze_clone(&stale);
        assert_eq!(report, engine.analyze(&stale));
        assert!(report.is_consistent());
    }

    #[test]
    fn sessions_on_different_fabrics_are_independent() {
        let a = deployed();
        let mut b = a.clone();
        b.remove_tcam_rules_where(sample::S2, |_| true);

        let engine = ScoutEngine::new();
        let session_a = engine.open_session(&a);
        let session_b = engine.open_session(&b);
        assert!(session_a.is_consistent());
        assert!(!session_b.is_consistent());
        assert_eq!(*session_b.full_report(), engine.analyze(&b));
    }

    #[test]
    fn interleaved_ingests_and_clone_analyses_agree_with_scratch() {
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        assert!(session.covers(&fabric), "fresh session covers its fabric");

        // The live fabric drifts and the session follows it…
        fabric.evict_tcam(sample::S1, 1, true);
        ingest_observation(&mut session, &mut probe, &fabric);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));

        // …after which the incremental clone path retires (the session's
        // check reflects the mirror, not the open snapshot), but clone
        // analyses still agree with from-scratch exactly.
        let mut clone = fabric.clone();
        clone.remove_tcam_rules_where(sample::S3, |_| true);
        assert!(!session.covers(&clone));
        assert_eq!(session.analyze_clone(&clone), engine.analyze(&clone));

        // Another round of drift after the clone analysis.
        fabric.repair_switch(sample::S1);
        ingest_observation(&mut session, &mut probe, &fabric);
        assert_eq!(*session.full_report(), engine.analyze(&fabric));
        assert!(session.is_consistent());
    }

    #[test]
    fn clones_taken_before_ingested_drift_are_analyzed_correctly() {
        // Regression: a clone taken *before* drift that the session has
        // since ingested carries no dirty entry for the drifted switch, so
        // reusing the post-ingest check incrementally would smuggle the
        // drift into the clone's report. The clone must be analyzed from a
        // full check and come out healthy.
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        let clone = fabric.clone();
        fabric.evict_tcam(sample::S2, 2, true);
        ingest_observation(&mut session, &mut probe, &fabric);
        assert!(!session.is_consistent());

        assert!(!session.covers(&clone));
        let report = session.analyze_clone(&clone);
        assert_eq!(report, engine.analyze(&clone));
        assert!(report.is_consistent());
    }

    #[test]
    fn stats_track_ingest_activity() {
        let mut fabric = deployed();
        let engine = ScoutEngine::new();
        let mut session = engine.open_session(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        session.ingest(EventBatch::empty(1)).unwrap();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let delta = ingest_observation(&mut session, &mut probe, &fabric);
        assert_eq!(delta.rechecked.len(), 1);

        let stats = session.stats();
        assert_eq!(stats.ingests, 2);
        assert_eq!(stats.empty_batches, 1);
        assert_eq!(stats.events, 1);
        assert_eq!(stats.rechecked_switches, 1);
        assert_eq!(stats.ingest_latency.len(), 2);
        assert!(stats.ingest_latency.values().iter().all(|&v| v >= 0.0));
    }
}
