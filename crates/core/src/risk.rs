//! Risk models: bipartite graphs between shared risks (policy objects) and the
//! elements they can impact (EPG pairs).
//!
//! Two concrete models are built (§III-B of the paper):
//!
//! * the **switch risk model** — per switch, elements are the [`EpgPair`]s
//!   deployed on that switch and risks are the policy objects each pair relies
//!   on;
//! * the **controller risk model** — elements are `(switch, EPG pair)` triplets
//!   ([`SwitchEpgPair`]) across the whole network and risks additionally
//!   include the physical switches.
//!
//! After the L–T equivalence check, the models are *augmented*: for every
//! missing rule, the edges between the affected element and the objects in the
//! rule's provenance are marked as failed (§III-C).

use std::collections::{BTreeMap, BTreeSet};
use std::thread;

use scout_equiv::Parallelism;
use scout_policy::{EpgPair, LogicalRule, ObjectId, PolicyUniverse, SwitchEpgPair, SwitchId};

/// The status of an edge between an element and a shared risk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeStatus {
    /// No failure evidence involves this edge.
    Success,
    /// A missing rule implicates this edge.
    Fail,
}

/// A bipartite risk model between elements of type `E` and shared risks
/// ([`ObjectId`]s).
///
/// `E` is [`EpgPair`] for the switch risk model and [`SwitchEpgPair`] for the
/// controller risk model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RiskModel<E> {
    /// element -> (risk -> edge status)
    edges: BTreeMap<E, BTreeMap<ObjectId, EdgeStatus>>,
    /// risk -> elements depending on it (reverse index)
    dependents: BTreeMap<ObjectId, BTreeSet<E>>,
    /// risk -> elements whose edge to it failed (the `O_i` sets).
    ///
    /// Kept in lockstep with `edges`, so every failure-side query — the
    /// failure signature, hit ratios, the failure subgraph — costs time
    /// proportional to the failure evidence instead of the whole graph. This
    /// is what makes an augment → analyze → undo cycle on a cached model
    /// independent of the policy-universe size.
    failed: BTreeMap<ObjectId, BTreeSet<E>>,
}

/// One reversible mutation performed by a tracked failure mark.
#[derive(Debug, Clone, Copy)]
enum MarkOp<E> {
    /// The edge did not exist; `new_element` records whether the element entry
    /// itself was created by this mark.
    NewEdge {
        element: E,
        risk: ObjectId,
        new_element: bool,
    },
    /// The edge existed with [`EdgeStatus::Success`] and was flipped to
    /// [`EdgeStatus::Fail`].
    Flipped { element: E, risk: ObjectId },
}

/// A journal of the mutations performed by a *tracked* augmentation
/// ([`RiskModel::mark_failed_tracked`]), sufficient to restore the model to
/// its pristine pre-augmentation state via [`RiskModel::undo_failures`].
///
/// This is what makes risk-model reuse cheap: instead of rebuilding (or even
/// cloning) the bipartite graph for every analysis, a long-lived consumer
/// keeps one pristine model, applies the failed edges of the current check,
/// reads the results, and rolls the marks back — total cost proportional to
/// the failure evidence, not the policy universe.
#[derive(Debug, Default)]
pub struct FailureMarks<E> {
    ops: Vec<MarkOp<E>>,
}

impl<E> FailureMarks<E> {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self { ops: Vec::new() }
    }

    /// Number of recorded mutations (no-op marks are not recorded).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the journal holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl<E: Ord + Copy> Default for RiskModel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Ord + Copy> RiskModel<E> {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self {
            edges: BTreeMap::new(),
            dependents: BTreeMap::new(),
            failed: BTreeMap::new(),
        }
    }

    /// Adds an element with no edges (it will never be an observation unless
    /// edges are added and marked failed).
    pub fn add_element(&mut self, element: E) {
        self.edges.entry(element).or_default();
    }

    /// Adds a success edge between `element` and `risk` (keeps an existing
    /// failed edge failed).
    pub fn add_edge(&mut self, element: E, risk: ObjectId) {
        self.edges
            .entry(element)
            .or_default()
            .entry(risk)
            .or_insert(EdgeStatus::Success);
        self.dependents.entry(risk).or_default().insert(element);
    }

    /// Marks the edge between `element` and `risk` as failed, creating it if it
    /// does not exist yet.
    pub fn mark_failed(&mut self, element: E, risk: ObjectId) {
        self.edges
            .entry(element)
            .or_default()
            .insert(risk, EdgeStatus::Fail);
        self.dependents.entry(risk).or_default().insert(element);
        self.failed.entry(risk).or_default().insert(element);
    }

    /// Like [`RiskModel::mark_failed`], but records the performed mutation in
    /// `marks` so it can be rolled back with [`RiskModel::undo_failures`].
    ///
    /// Marking an edge that is already failed records nothing (the undo must
    /// not downgrade evidence that predates the journal).
    pub fn mark_failed_tracked(&mut self, element: E, risk: ObjectId, marks: &mut FailureMarks<E>) {
        use std::collections::btree_map::Entry;
        let new_element = !self.edges.contains_key(&element);
        match self.edges.entry(element).or_default().entry(risk) {
            Entry::Vacant(slot) => {
                slot.insert(EdgeStatus::Fail);
                self.dependents.entry(risk).or_default().insert(element);
                self.failed.entry(risk).or_default().insert(element);
                marks.ops.push(MarkOp::NewEdge {
                    element,
                    risk,
                    new_element,
                });
            }
            Entry::Occupied(mut slot) => {
                if *slot.get() == EdgeStatus::Success {
                    slot.insert(EdgeStatus::Fail);
                    self.failed.entry(risk).or_default().insert(element);
                    marks.ops.push(MarkOp::Flipped { element, risk });
                }
            }
        }
    }

    /// Rolls back every mutation recorded in `marks`, restoring the model to
    /// the exact state it had before the corresponding tracked marks.
    ///
    /// Marks must be undone on the same model they were recorded against,
    /// before any other mutation; the journal is consumed so it cannot be
    /// replayed.
    pub fn undo_failures(&mut self, marks: FailureMarks<E>) {
        for op in marks.ops.into_iter().rev() {
            match op {
                MarkOp::NewEdge {
                    element,
                    risk,
                    new_element,
                } => {
                    if let Some(edge_map) = self.edges.get_mut(&element) {
                        edge_map.remove(&risk);
                        if new_element && edge_map.is_empty() {
                            self.edges.remove(&element);
                        }
                    }
                    if let Some(deps) = self.dependents.get_mut(&risk) {
                        deps.remove(&element);
                        if deps.is_empty() {
                            self.dependents.remove(&risk);
                        }
                    }
                    self.unmark_failed(element, risk);
                }
                MarkOp::Flipped { element, risk } => {
                    if let Some(edge_map) = self.edges.get_mut(&element) {
                        edge_map.insert(risk, EdgeStatus::Success);
                    }
                    self.unmark_failed(element, risk);
                }
            }
        }
    }

    /// Drops `element` from `risk`'s failed-dependent set, removing the entry
    /// when it empties.
    fn unmark_failed(&mut self, element: E, risk: ObjectId) {
        if let Some(failed) = self.failed.get_mut(&risk) {
            failed.remove(&element);
            if failed.is_empty() {
                self.failed.remove(&risk);
            }
        }
    }

    /// The sub-model induced by the current failure evidence: every risk with
    /// at least one failed edge, every element depending on such a risk, and
    /// exactly the edges between them (statuses preserved).
    ///
    /// This is the part of the model the SCOUT cover stage can ever inspect —
    /// its candidate risks are the failed risks of the observations, and both
    /// hit and coverage ratios of a candidate only involve that candidate's
    /// dependents. Running the cover stage on the subgraph therefore produces
    /// bit-identical results at a cost proportional to the failure footprint,
    /// not the policy universe.
    pub fn failure_subgraph(&self) -> RiskModel<E> {
        let mut sub = RiskModel::new();
        for (&risk, failed) in &self.failed {
            if let Some(deps) = self.dependents.get(&risk) {
                for element in deps {
                    if failed.contains(element) {
                        sub.mark_failed(*element, risk);
                    } else {
                        sub.add_edge(*element, risk);
                    }
                }
            }
        }
        sub
    }

    /// Number of elements in the model.
    pub fn element_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of shared risks in the model.
    pub fn risk_count(&self) -> usize {
        self.dependents.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    /// Iterates over all elements.
    pub fn elements(&self) -> impl Iterator<Item = &E> {
        self.edges.keys()
    }

    /// Iterates over all shared risks.
    pub fn risks(&self) -> impl Iterator<Item = &ObjectId> {
        self.dependents.keys()
    }

    /// The risks `element` depends on.
    pub fn risks_of(&self, element: &E) -> BTreeSet<ObjectId> {
        self.edges
            .get(element)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The elements depending on `risk` (the set `G_i` of the paper).
    pub fn dependents_of(&self, risk: ObjectId) -> BTreeSet<E> {
        self.dependents.get(&risk).cloned().unwrap_or_default()
    }

    /// Number of elements depending on `risk` (`|G_i|`), without cloning.
    pub fn dependent_count(&self, risk: ObjectId) -> usize {
        self.dependents.get(&risk).map_or(0, BTreeSet::len)
    }

    /// Number of elements of `risk` whose edge to it failed (`|O_i|`), without
    /// materializing the set.
    pub fn failed_dependent_count(&self, risk: ObjectId) -> usize {
        self.failed.get(&risk).map_or(0, BTreeSet::len)
    }

    /// The risks of `element` whose edge is marked failed.
    pub fn failed_risks_of(&self, element: &E) -> BTreeSet<ObjectId> {
        self.edges
            .get(element)
            .map(|m| {
                m.iter()
                    .filter(|(_, &s)| s == EdgeStatus::Fail)
                    .map(|(&r, _)| r)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The elements of `risk` whose edge to it is marked failed (the set `O_i`
    /// of the paper).
    pub fn failed_dependents_of(&self, risk: ObjectId) -> BTreeSet<E> {
        self.failed.get(&risk).cloned().unwrap_or_default()
    }

    /// Returns `true` if `element` has at least one failed edge (i.e. it is an
    /// *observation*).
    pub fn is_failed(&self, element: &E) -> bool {
        self.edges
            .get(element)
            .map(|m| m.values().any(|&s| s == EdgeStatus::Fail))
            .unwrap_or(false)
    }

    /// The failure signature: every element with at least one failed edge.
    ///
    /// Costs time proportional to the failure evidence (it reads the failed
    /// index), not the number of elements in the model.
    pub fn failure_signature(&self) -> BTreeSet<E> {
        self.failed.values().flatten().copied().collect()
    }

    /// The hit ratio of `risk`: the fraction of its dependents whose edge to it
    /// failed (`|O_i| / |G_i|`, §IV-B).
    ///
    /// Defined as 0 whenever `|G_i| = 0` — unknown risks, risks on an empty
    /// model, and risks whose dependents were all pruned — so the ratio is
    /// total (never a division by zero) and always lies in `[0, 1]`.
    pub fn hit_ratio(&self, risk: ObjectId) -> f64 {
        let total = self.dependent_count(risk);
        if total == 0 {
            return 0.0;
        }
        self.failed_dependent_count(risk) as f64 / total as f64
    }

    /// The coverage ratio of `risk` with respect to a failure signature of size
    /// `signature_size` (`|O_i| / |F|`, §IV-B).
    ///
    /// Defined as 0 for an empty signature (`|F| = 0`), mirroring
    /// [`RiskModel::hit_ratio`]'s totality convention.
    pub fn coverage_ratio(&self, risk: ObjectId, signature_size: usize) -> f64 {
        if signature_size == 0 {
            return 0.0;
        }
        self.failed_dependent_count(risk) as f64 / signature_size as f64
    }

    /// Removes a set of elements from the model (used by the pruning step of
    /// the SCOUT algorithm). Risks left without dependents are removed too.
    ///
    /// Elements not present in the model are ignored; pruning an empty set, or
    /// pruning on an empty model, is a no-op.
    pub fn prune_elements(&mut self, elements: &BTreeSet<E>) {
        for element in elements {
            if let Some(risks) = self.edges.remove(element) {
                for (risk, status) in risks {
                    if let Some(deps) = self.dependents.get_mut(&risk) {
                        deps.remove(element);
                        if deps.is_empty() {
                            self.dependents.remove(&risk);
                        }
                    }
                    if status == EdgeStatus::Fail {
                        self.unmark_failed(*element, risk);
                    }
                }
            }
        }
    }

    /// The union of the risks of a set of elements — the *suspect set* a
    /// network admin would have to examine without localization.
    pub fn suspect_set(&self, elements: &BTreeSet<E>) -> BTreeSet<ObjectId> {
        elements.iter().flat_map(|e| self.risks_of(e)).collect()
    }

    /// Merges `other` into `self`: elements, edges, and failure evidence are
    /// unioned, and an edge failed in either input stays failed.
    ///
    /// This is the combine step of the sharded model builders (see
    /// [`controller_risk_model_sharded`]): each shard derives the edges of a
    /// disjoint switch subset, and merging shards in a fixed order yields the
    /// same model as one sequential pass.
    pub fn merge(&mut self, other: RiskModel<E>) {
        for (element, edges) in other.edges {
            let slot = self.edges.entry(element).or_default();
            for (risk, status) in edges {
                if status == EdgeStatus::Fail {
                    slot.insert(risk, EdgeStatus::Fail);
                } else {
                    slot.entry(risk).or_insert(EdgeStatus::Success);
                }
            }
        }
        for (risk, deps) in other.dependents {
            self.dependents.entry(risk).or_default().extend(deps);
        }
        for (risk, failed) in other.failed {
            self.failed.entry(risk).or_default().extend(failed);
        }
    }
}

// ----------------------------------------------------------------------
// Model builders
// ----------------------------------------------------------------------

/// Builds the (un-augmented) switch risk model for `switch`.
///
/// Elements are the EPG pairs deployed on the switch; each pair has success
/// edges to every policy object it relies on (Figure 4(a) of the paper).
pub fn switch_risk_model(universe: &PolicyUniverse, switch: SwitchId) -> RiskModel<EpgPair> {
    let mut model = RiskModel::new();
    for pair in universe.pairs_on_switch(switch) {
        model.add_element(pair);
        for risk in universe.objects_for_pair(pair) {
            model.add_edge(pair, risk);
        }
    }
    model
}

/// Builds the (un-augmented) controller risk model for the whole network.
///
/// Elements are `(switch, EPG pair)` triplets; each triplet has success edges
/// to the pair's policy objects plus the switch itself (Figure 4(b)).
pub fn controller_risk_model(universe: &PolicyUniverse) -> RiskModel<SwitchEpgPair> {
    let mut model = RiskModel::new();
    for pair in universe.epg_pairs() {
        for switch in universe.switches_for_pair(pair) {
            let element = SwitchEpgPair::new(switch, pair);
            model.add_element(element);
            for risk in universe.objects_for_pair_on_switch(pair, switch) {
                model.add_edge(element, risk);
            }
        }
    }
    model
}

/// Derives the controller-model edges of one switch subset — the unit of work
/// of [`controller_risk_model_sharded`].
fn controller_risk_shard(
    universe: &PolicyUniverse,
    switches: &[SwitchId],
) -> RiskModel<SwitchEpgPair> {
    let mut model = RiskModel::new();
    for &switch in switches {
        for pair in universe.pairs_on_switch(switch) {
            let element = SwitchEpgPair::new(switch, pair);
            model.add_element(element);
            for risk in universe.objects_for_pair_on_switch(pair, switch) {
                model.add_edge(element, risk);
            }
        }
    }
    model
}

/// Like [`controller_risk_model`], but shards the derivation by switch across
/// worker threads (resolved by [`Parallelism::worker_count`], the same policy
/// the equivalence checker uses) and merges the per-shard models.
///
/// The `(switch, pair)` elements of the controller model partition cleanly by
/// switch, so shards never contend over an element and the merged model is
/// **identical** to the sequential one — the pipeline swaps freely between
/// the two (sessions pass their configured parallelism here when rebuilding
/// the model after a policy change at fabric scale).
pub fn controller_risk_model_sharded(
    universe: &PolicyUniverse,
    parallelism: Parallelism,
) -> RiskModel<SwitchEpgPair> {
    let switches: Vec<SwitchId> = universe.switches().map(|s| s.id).collect();
    let threads = parallelism.worker_count(switches.len());
    if threads <= 1 {
        return controller_risk_model(universe);
    }
    let chunk_size = switches.len().div_ceil(threads);
    let mut model = RiskModel::new();
    thread::scope(|scope| {
        let handles: Vec<_> = switches
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || controller_risk_shard(universe, chunk)))
            .collect();
        for handle in handles {
            model.merge(handle.join().expect("risk shard thread panicked"));
        }
    });
    model
}

// ----------------------------------------------------------------------
// Augmentation from missing rules
// ----------------------------------------------------------------------

/// Augments the switch risk model of `switch` with the missing rules reported
/// by the equivalence checker: for every missing rule of this switch, the edges
/// between its EPG pair and the objects in its provenance are marked failed.
///
/// Accepts any stream of rules (e.g. directly from
/// [`scout_equiv::NetworkCheckResult::missing_rules`]) so the hot reporting
/// path never has to collect into an intermediate `Vec`.
pub fn augment_switch_model<I>(model: &mut RiskModel<EpgPair>, switch: SwitchId, missing_rules: I)
where
    I: IntoIterator<Item = LogicalRule>,
{
    for rule in missing_rules.into_iter().filter(|r| r.switch == switch) {
        let pair = rule.pair();
        for risk in rule.provenance.policy_objects() {
            model.mark_failed(pair, risk);
        }
    }
}

/// Augments the controller risk model with missing rules from any switch: for
/// every missing rule, the edges between its `(switch, pair)` triplet and the
/// objects in its provenance (including the switch) are marked failed.
///
/// Accepts any stream of rules (see [`augment_switch_model`]).
pub fn augment_controller_model<I>(model: &mut RiskModel<SwitchEpgPair>, missing_rules: I)
where
    I: IntoIterator<Item = LogicalRule>,
{
    for rule in missing_rules {
        let element = SwitchEpgPair::new(rule.switch, rule.pair());
        for risk in rule.provenance.objects_with_switch(rule.switch) {
            model.mark_failed(element, risk);
        }
    }
}

/// Tracked variant of [`augment_switch_model`]: returns the journal needed to
/// roll the augmentation back with [`RiskModel::undo_failures`], so one
/// pristine switch model can serve many analyses.
pub fn augment_switch_model_tracked<I>(
    model: &mut RiskModel<EpgPair>,
    switch: SwitchId,
    missing_rules: I,
) -> FailureMarks<EpgPair>
where
    I: IntoIterator<Item = LogicalRule>,
{
    let mut marks = FailureMarks::new();
    for rule in missing_rules.into_iter().filter(|r| r.switch == switch) {
        let pair = rule.pair();
        for risk in rule.provenance.policy_objects() {
            model.mark_failed_tracked(pair, risk, &mut marks);
        }
    }
    marks
}

/// Tracked variant of [`augment_controller_model`]: returns the journal needed
/// to roll the augmentation back with [`RiskModel::undo_failures`], so one
/// pristine controller model can serve many analyses (the incremental
/// risk-model maintenance of `AnalysisSession` and the campaign engine).
pub fn augment_controller_model_tracked<I>(
    model: &mut RiskModel<SwitchEpgPair>,
    missing_rules: I,
) -> FailureMarks<SwitchEpgPair>
where
    I: IntoIterator<Item = LogicalRule>,
{
    let mut marks = FailureMarks::new();
    for rule in missing_rules {
        let element = SwitchEpgPair::new(rule.switch, rule.pair());
        for risk in rule.provenance.objects_with_switch(rule.switch) {
            model.mark_failed_tracked(element, risk, &mut marks);
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::sample;

    #[test]
    fn switch_model_for_s2_matches_figure_4a() {
        let u = sample::three_tier();
        let model = switch_risk_model(&u, sample::S2);
        // Two EPG pairs (Web-App, App-DB) and 8 shared risks (VRF, 3 EPGs,
        // 2 contracts, 2 filters).
        assert_eq!(model.element_count(), 2);
        assert_eq!(model.risk_count(), 8);
        let web_app = EpgPair::new(sample::WEB, sample::APP);
        let risks = model.risks_of(&web_app);
        assert_eq!(risks.len(), 5);
        assert!(risks.contains(&ObjectId::Vrf(sample::VRF)));
        assert!(risks.contains(&ObjectId::Contract(sample::C_WEB_APP)));
        // No switch objects in the per-switch model.
        assert!(model.risks().all(|r| !r.is_switch()));
        // Nothing failed yet.
        assert!(model.failure_signature().is_empty());
    }

    #[test]
    fn sharded_controller_model_is_bit_identical() {
        let u = sample::three_tier();
        let sequential = controller_risk_model(&u);
        for parallelism in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::Fixed(2),
            Parallelism::Fixed(3),
            Parallelism::Fixed(16),
        ] {
            assert_eq!(
                controller_risk_model_sharded(&u, parallelism),
                sequential,
                "{parallelism:?}"
            );
        }
    }

    #[test]
    fn merge_unions_edges_and_failures() {
        let mut a = RiskModel::new();
        a.add_edge(
            EpgPair::new(sample::WEB, sample::APP),
            ObjectId::Vrf(sample::VRF),
        );
        let mut b = RiskModel::new();
        b.mark_failed(
            EpgPair::new(sample::WEB, sample::APP),
            ObjectId::Vrf(sample::VRF),
        );
        b.add_edge(
            EpgPair::new(sample::APP, sample::DB),
            ObjectId::Vrf(sample::VRF),
        );
        a.merge(b);
        assert_eq!(a.element_count(), 2);
        assert_eq!(a.failed_dependent_count(ObjectId::Vrf(sample::VRF)), 1);
        assert!(a.is_failed(&EpgPair::new(sample::WEB, sample::APP)));

        // Fail on the left survives a success merge from the right.
        let mut c = RiskModel::new();
        c.add_edge(
            EpgPair::new(sample::WEB, sample::APP),
            ObjectId::Vrf(sample::VRF),
        );
        let mut failed_left = RiskModel::new();
        failed_left.mark_failed(
            EpgPair::new(sample::WEB, sample::APP),
            ObjectId::Vrf(sample::VRF),
        );
        failed_left.merge(c);
        assert!(failed_left.is_failed(&EpgPair::new(sample::WEB, sample::APP)));
    }

    #[test]
    fn controller_model_has_one_triplet_per_switch_pair() {
        let u = sample::three_tier();
        let model = controller_risk_model(&u);
        // Web-App deploys on S1 and S2; App-DB on S2 and S3 -> 4 triplets.
        assert_eq!(model.element_count(), 4);
        // Risks: 8 policy objects + 3 switches.
        assert_eq!(model.risk_count(), 11);
        let t = SwitchEpgPair::new(sample::S2, EpgPair::new(sample::WEB, sample::APP));
        assert!(model.risks_of(&t).contains(&ObjectId::Switch(sample::S2)));
    }

    #[test]
    fn hit_and_coverage_ratios_follow_definitions() {
        let u = sample::three_tier();
        let mut model = switch_risk_model(&u, sample::S2);
        let web_app = EpgPair::new(sample::WEB, sample::APP);
        // Fail the Web-App edges (as if the first rule of Figure 2 is missing).
        for risk in u.objects_for_pair(web_app) {
            model.mark_failed(web_app, risk);
        }
        let signature = model.failure_signature();
        assert_eq!(signature.len(), 1);
        // EPG:Web and Contract:Web-App are used only by Web-App -> hit 1.
        assert_eq!(model.hit_ratio(ObjectId::Epg(sample::WEB)), 1.0);
        assert_eq!(model.hit_ratio(ObjectId::Contract(sample::C_WEB_APP)), 1.0);
        // VRF and EPG:App are shared with the healthy App-DB pair -> hit 0.5.
        assert_eq!(model.hit_ratio(ObjectId::Vrf(sample::VRF)), 0.5);
        assert_eq!(model.hit_ratio(ObjectId::Epg(sample::APP)), 0.5);
        // Coverage of EPG:Web is 1/|F| = 1.
        assert_eq!(
            model.coverage_ratio(ObjectId::Epg(sample::WEB), signature.len()),
            1.0
        );
        // Unknown risk.
        assert_eq!(model.hit_ratio(ObjectId::Switch(SwitchId::new(99))), 0.0);
        assert_eq!(model.coverage_ratio(ObjectId::Epg(sample::WEB), 0), 0.0);
    }

    #[test]
    fn augmentation_from_missing_rules_marks_the_right_edges() {
        let u = sample::three_tier();
        let all_rules = scout_fabric::compile(&u);
        // Pretend the two port-700 rules on S2 are missing.
        let missing: Vec<LogicalRule> = all_rules
            .iter()
            .filter(|r| r.switch == sample::S2 && r.rule.matcher.ports.start == 700)
            .copied()
            .collect();
        assert_eq!(missing.len(), 2);

        let mut s2_model = switch_risk_model(&u, sample::S2);
        augment_switch_model(&mut s2_model, sample::S2, missing.iter().copied());
        let app_db = EpgPair::new(sample::APP, sample::DB);
        assert!(s2_model.is_failed(&app_db));
        assert!(!s2_model.is_failed(&EpgPair::new(sample::WEB, sample::APP)));
        let failed = s2_model.failed_risks_of(&app_db);
        assert!(failed.contains(&ObjectId::Filter(sample::F_700)));
        assert!(failed.contains(&ObjectId::Vrf(sample::VRF)));
        // The port-80 filter was not part of the violation.
        assert!(!failed.contains(&ObjectId::Filter(sample::F_HTTP)));

        let mut c_model = controller_risk_model(&u);
        augment_controller_model(&mut c_model, missing.iter().copied());
        let s2_app_db = SwitchEpgPair::new(sample::S2, app_db);
        let s3_app_db = SwitchEpgPair::new(sample::S3, app_db);
        assert!(c_model.is_failed(&s2_app_db));
        assert!(!c_model.is_failed(&s3_app_db));
        assert!(c_model
            .failed_risks_of(&s2_app_db)
            .contains(&ObjectId::Switch(sample::S2)));
    }

    #[test]
    fn pruning_removes_elements_and_orphan_risks() {
        let u = sample::three_tier();
        let mut model = switch_risk_model(&u, sample::S2);
        let web_app = EpgPair::new(sample::WEB, sample::APP);
        model.prune_elements(&BTreeSet::from([web_app]));
        assert_eq!(model.element_count(), 1);
        // Risks used only by Web-App are gone.
        assert!(!model
            .risks()
            .any(|&r| r == ObjectId::Contract(sample::C_WEB_APP)));
        // Shared risks remain.
        assert!(model.risks().any(|&r| r == ObjectId::Vrf(sample::VRF)));
        assert_eq!(model.dependents_of(ObjectId::Vrf(sample::VRF)).len(), 1);
    }

    #[test]
    fn suspect_set_is_union_of_risks() {
        let u = sample::three_tier();
        let model = switch_risk_model(&u, sample::S2);
        let both: BTreeSet<EpgPair> = model.elements().copied().collect();
        assert_eq!(model.suspect_set(&both).len(), 8);
        let one = BTreeSet::from([EpgPair::new(sample::WEB, sample::APP)]);
        assert_eq!(model.suspect_set(&one).len(), 5);
    }

    #[test]
    fn mark_failed_on_fresh_edge_creates_it() {
        let mut model: RiskModel<EpgPair> = RiskModel::new();
        let pair = EpgPair::new(sample::WEB, sample::APP);
        model.mark_failed(pair, ObjectId::Vrf(sample::VRF));
        assert_eq!(model.element_count(), 1);
        assert_eq!(model.risk_count(), 1);
        assert!(model.is_failed(&pair));
        assert_eq!(model.hit_ratio(ObjectId::Vrf(sample::VRF)), 1.0);
        assert_eq!(model.edge_count(), 1);
    }

    #[test]
    fn add_edge_does_not_downgrade_failed_edge() {
        let mut model: RiskModel<EpgPair> = RiskModel::new();
        let pair = EpgPair::new(sample::WEB, sample::APP);
        model.mark_failed(pair, ObjectId::Vrf(sample::VRF));
        model.add_edge(pair, ObjectId::Vrf(sample::VRF));
        assert!(model.is_failed(&pair));
    }

    #[test]
    fn ratios_are_total_on_empty_and_pruned_models() {
        // Empty model: every ratio is defined and zero — no division by zero.
        let empty: RiskModel<EpgPair> = RiskModel::new();
        let risk = ObjectId::Vrf(sample::VRF);
        assert_eq!(empty.hit_ratio(risk), 0.0);
        assert_eq!(empty.coverage_ratio(risk, 0), 0.0);
        assert_eq!(empty.coverage_ratio(risk, 5), 0.0);
        assert_eq!(empty.dependent_count(risk), 0);
        assert_eq!(empty.failed_dependent_count(risk), 0);
        assert!(empty.failure_signature().is_empty());
        assert!(empty.suspect_set(&BTreeSet::new()).is_empty());

        // A model whose only dependent was pruned behaves like the empty one.
        let u = sample::three_tier();
        let mut model = switch_risk_model(&u, sample::S2);
        let all: BTreeSet<EpgPair> = model.elements().copied().collect();
        model.prune_elements(&all);
        assert_eq!(model.element_count(), 0);
        assert_eq!(model.risk_count(), 0);
        assert_eq!(model.hit_ratio(risk), 0.0);
        // Empty-signature coverage stays zero for any risk.
        assert_eq!(
            model.coverage_ratio(risk, model.failure_signature().len()),
            0.0
        );
    }

    #[test]
    fn pruning_unknown_or_empty_sets_is_a_noop() {
        let u = sample::three_tier();
        let mut model = switch_risk_model(&u, sample::S2);
        let pristine = model.clone();
        // Empty set.
        model.prune_elements(&BTreeSet::new());
        assert_eq!(model, pristine);
        // Elements the model has never seen.
        let stranger = EpgPair::new(scout_policy::EpgId::new(900), scout_policy::EpgId::new(901));
        model.prune_elements(&BTreeSet::from([stranger]));
        assert_eq!(model, pristine);
        // Pruning on an already-empty model.
        let mut empty: RiskModel<EpgPair> = RiskModel::new();
        empty.prune_elements(&BTreeSet::from([stranger]));
        assert_eq!(empty.element_count(), 0);
    }

    #[test]
    fn tracked_marks_undo_restores_the_pristine_model() {
        let u = sample::three_tier();
        let all_rules = scout_fabric::compile(&u);
        let pristine = controller_risk_model(&u);

        // Augment with every possible missing-rule subset boundary: none, a
        // couple, and everything.
        for take in [0usize, 2, all_rules.len()] {
            let mut model = pristine.clone();
            let marks =
                augment_controller_model_tracked(&mut model, all_rules.iter().take(take).copied());
            // Tracked augmentation must agree with the untracked one.
            let mut reference = pristine.clone();
            augment_controller_model(&mut reference, all_rules.iter().take(take).copied());
            assert_eq!(model, reference, "take {take}");
            // Undo restores the pristine graph bit for bit.
            model.undo_failures(marks);
            assert_eq!(model, pristine, "take {take}");
        }
    }

    #[test]
    fn tracked_marks_do_not_undo_preexisting_failures() {
        let mut model: RiskModel<EpgPair> = RiskModel::new();
        let pair = EpgPair::new(sample::WEB, sample::APP);
        let risk = ObjectId::Vrf(sample::VRF);
        model.mark_failed(pair, risk);
        let before = model.clone();
        let mut marks = FailureMarks::new();
        model.mark_failed_tracked(pair, risk, &mut marks);
        assert!(marks.is_empty());
        model.undo_failures(marks);
        assert_eq!(model, before);
        assert!(model.is_failed(&pair));
    }

    #[test]
    fn tracked_marks_on_switch_model_roundtrip() {
        let u = sample::three_tier();
        let all_rules = scout_fabric::compile(&u);
        let missing: Vec<LogicalRule> = all_rules
            .iter()
            .filter(|r| r.switch == sample::S2)
            .copied()
            .collect();
        let pristine = switch_risk_model(&u, sample::S2);
        let mut model = pristine.clone();
        let marks = augment_switch_model_tracked(&mut model, sample::S2, missing.iter().copied());
        let mut reference = pristine.clone();
        augment_switch_model(&mut reference, sample::S2, missing.iter().copied());
        assert_eq!(model, reference);
        assert!(!marks.is_empty());
        model.undo_failures(marks);
        assert_eq!(model, pristine);
    }

    mod undo_journal_props {
        //! Property tests for the undo journal: under random interleavings of
        //! untracked `mark_failed` evidence and tracked journal episodes, an
        //! undo must restore the model — including the failed-edge index —
        //! bit for bit.

        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use scout_policy::EpgId;
        use scout_policy::FilterId;

        fn element(rng: &mut StdRng) -> EpgPair {
            EpgPair::new(
                EpgId::new(rng.gen_range(0..8)),
                EpgId::new(rng.gen_range(8..16)),
            )
        }

        fn risk(rng: &mut StdRng) -> ObjectId {
            ObjectId::Filter(FilterId::new(rng.gen_range(0..10)))
        }

        /// A random base model: some success edges, some plain elements.
        fn random_model(rng: &mut StdRng) -> RiskModel<EpgPair> {
            let mut model = RiskModel::new();
            for _ in 0..rng.gen_range(0..40) {
                let e = element(rng);
                if rng.gen_bool(0.15) {
                    model.add_element(e);
                } else {
                    model.add_edge(e, risk(rng));
                }
            }
            model
        }

        /// Recomputes the failed-edge index from the edge statuses and checks
        /// the indexed views against it — the "pristine index" the issue's
        /// property targets.
        fn assert_index_exact(model: &RiskModel<EpgPair>) {
            let mut signature = BTreeSet::new();
            let mut failed_by_risk: BTreeMap<ObjectId, BTreeSet<EpgPair>> = BTreeMap::new();
            let elements: Vec<EpgPair> = model.elements().copied().collect();
            for e in &elements {
                for r in model.risks_of(e) {
                    if model.failed_risks_of(e).contains(&r) {
                        signature.insert(*e);
                        failed_by_risk.entry(r).or_default().insert(*e);
                    }
                }
            }
            assert_eq!(model.failure_signature(), signature);
            let all_risks: Vec<ObjectId> = model.risks().copied().collect();
            for r in all_risks {
                let expected = failed_by_risk.get(&r).cloned().unwrap_or_default();
                assert_eq!(model.failed_dependents_of(r), expected, "risk {r:?}");
                assert_eq!(model.failed_dependent_count(r), expected.len());
            }
        }

        /// Interleave untracked evidence with tracked journal episodes, in
        /// random order and length; every undo must restore the exact state
        /// the journal started from.
        #[test]
        fn interleaved_tracked_marks_always_roll_back_exactly() {
            for seed in 0..60u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut model = random_model(&mut rng);
                for _round in 0..rng.gen_range(1..4) {
                    // Permanent evidence lands between journal episodes.
                    for _ in 0..rng.gen_range(0..6) {
                        model.mark_failed(element(&mut rng), risk(&mut rng));
                    }
                    let snapshot = model.clone();

                    // One tracked episode: a random mix of fresh edges,
                    // flipped edges, duplicate marks and already-failed hits.
                    let mut marks = FailureMarks::new();
                    let ops = rng.gen_range(0..20);
                    for _ in 0..ops {
                        let (e, r) = (element(&mut rng), risk(&mut rng));
                        model.mark_failed_tracked(e, r, &mut marks);
                        // Tracked marks must behave exactly like untracked
                        // ones while applied.
                        assert!(model.is_failed(&e), "seed {seed}");
                    }
                    assert_index_exact(&model);

                    model.undo_failures(marks);
                    assert_eq!(model, snapshot, "seed {seed}: undo must be exact");
                    assert_index_exact(&model);
                }
            }
        }

        /// Nested journals undone in LIFO order restore the pristine model.
        #[test]
        fn nested_journals_roll_back_in_lifo_order() {
            for seed in 0..40u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut model = random_model(&mut rng);
                let pristine = model.clone();

                let mut outer = FailureMarks::new();
                for _ in 0..rng.gen_range(1..10) {
                    model.mark_failed_tracked(element(&mut rng), risk(&mut rng), &mut outer);
                }
                let mid = model.clone();
                let mut inner = FailureMarks::new();
                for _ in 0..rng.gen_range(1..10) {
                    model.mark_failed_tracked(element(&mut rng), risk(&mut rng), &mut inner);
                }

                model.undo_failures(inner);
                assert_eq!(model, mid, "seed {seed}");
                model.undo_failures(outer);
                assert_eq!(model, pristine, "seed {seed}");
                assert_index_exact(&model);
            }
        }

        /// A tracked augmentation is observationally identical to an
        /// untracked one — the journal changes rollback ability, not results.
        #[test]
        fn tracked_and_untracked_marks_agree_while_applied() {
            for seed in 0..40u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let base = random_model(&mut rng);
                let pairs: Vec<(EpgPair, ObjectId)> = (0..rng.gen_range(0..25))
                    .map(|_| (element(&mut rng), risk(&mut rng)))
                    .collect();

                let mut tracked = base.clone();
                let mut marks = FailureMarks::new();
                for &(e, r) in &pairs {
                    tracked.mark_failed_tracked(e, r, &mut marks);
                }
                let mut untracked = base.clone();
                for &(e, r) in &pairs {
                    untracked.mark_failed(e, r);
                }
                assert_eq!(tracked, untracked, "seed {seed}");

                tracked.undo_failures(marks);
                assert_eq!(tracked, base, "seed {seed}");
            }
        }
    }

    #[test]
    fn failure_subgraph_keeps_exactly_the_relevant_slice() {
        let u = sample::three_tier();
        let mut model = switch_risk_model(&u, sample::S2);
        // Healthy model: the subgraph is empty.
        assert_eq!(model.failure_subgraph().element_count(), 0);

        let web_app = EpgPair::new(sample::WEB, sample::APP);
        let app_db = EpgPair::new(sample::APP, sample::DB);
        model.mark_failed(web_app, ObjectId::Vrf(sample::VRF));
        let sub = model.failure_subgraph();
        // The VRF is the only candidate risk; both its dependents are kept
        // (the healthy App-DB edge included, so hit ratios agree).
        assert_eq!(sub.risk_count(), 1);
        assert_eq!(sub.element_count(), 2);
        assert_eq!(
            sub.hit_ratio(ObjectId::Vrf(sample::VRF)),
            model.hit_ratio(ObjectId::Vrf(sample::VRF))
        );
        assert_eq!(
            sub.failed_dependent_count(ObjectId::Vrf(sample::VRF)),
            model.failed_dependent_count(ObjectId::Vrf(sample::VRF))
        );
        assert!(sub.is_failed(&web_app));
        assert!(!sub.is_failed(&app_db));
        // Risks with no failed edge are not in the subgraph at all.
        assert_eq!(sub.dependent_count(ObjectId::Filter(sample::F_HTTP)), 0);
    }
}
