//! Service-level gauges: lock-free counters a serving layer hangs off the
//! engine it fronts.
//!
//! The engine itself never sheds or queues — sessions are `&mut`-driven and
//! apply exactly what they are handed. Admission control lives above it (the
//! `scout-server` crate), but the *numbers* belong down here: every handle
//! cloned from the same engine shares one [`ServiceGauges`], so a fleet of
//! server threads fronting one engine reports one coherent admitted / queued
//! / shed picture, and operators can read it from any handle without knowing
//! the serving topology.
//!
//! All counters are relaxed atomics: they are monitoring data, not
//! synchronization. A reader may observe a momentarily stale snapshot during
//! concurrent updates; it never observes a torn one.
//!
//! # Example
//!
//! ```
//! use scout_core::ScoutEngine;
//!
//! let engine = ScoutEngine::new();
//! engine.gauges().record_admitted();
//! engine.gauges().record_queued();
//! engine.gauges().record_dequeued();
//! engine.gauges().record_shed();
//!
//! let stats = engine.clone().gauges().snapshot();
//! assert_eq!(stats.admitted, 1);
//! assert_eq!(stats.queued, 0);
//! assert_eq!(stats.queue_peak, 1);
//! assert_eq!(stats.shed, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared admission counters for every serving thread fronting one engine.
///
/// See the [module docs](self) for the design; obtain the instance via
/// [`ScoutEngine::gauges`](crate::ScoutEngine::gauges).
#[derive(Debug, Default)]
pub struct ServiceGauges {
    /// Batches accepted straight into a session.
    admitted: AtomicU64,
    /// Batches currently parked in per-tenant queues (a depth, not a total).
    queued: AtomicU64,
    /// High-water mark of `queued`.
    queue_peak: AtomicU64,
    /// Batches refused with a shed error.
    shed: AtomicU64,
}

impl ServiceGauges {
    /// Fresh gauges, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one batch admitted directly (no queueing).
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batch parked in a tenant queue, maintaining the peak.
    pub fn record_queued(&self) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts one parked batch leaving its queue (drained into a session or
    /// dropped with its tenant). Saturates at zero rather than wrapping, so
    /// a double-drain bug shows up as a stuck-low gauge instead of a 2^64
    /// queue depth.
    pub fn record_dequeued(&self) {
        let _ = self
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                depth.checked_sub(1)
            });
    }

    /// Counts one batch refused under overload.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A coherent-enough point-in-time copy of all four counters.
    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServiceGauges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Batches accepted straight into a session.
    pub admitted: u64,
    /// Batches parked in per-tenant queues at snapshot time.
    pub queued: u64,
    /// High-water mark of the queue depth.
    pub queue_peak: u64,
    /// Batches refused with a shed error.
    pub shed: u64,
}

impl ServiceStats {
    /// Every batch the serving layer answered, whatever the answer was.
    pub fn total_decisions(&self) -> u64 {
        self.admitted + self.queued + self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_track_peak() {
        let gauges = ServiceGauges::new();
        for _ in 0..3 {
            gauges.record_queued();
        }
        gauges.record_dequeued();
        gauges.record_queued();
        gauges.record_admitted();
        gauges.record_shed();

        let stats = gauges.snapshot();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.queued, 3);
        assert_eq!(stats.queue_peak, 3);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.total_decisions(), 5);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let gauges = ServiceGauges::new();
        gauges.record_dequeued();
        assert_eq!(gauges.snapshot().queued, 0);
        gauges.record_queued();
        gauges.record_dequeued();
        gauges.record_dequeued();
        assert_eq!(gauges.snapshot().queued, 0);
        assert_eq!(gauges.snapshot().queue_peak, 1);
    }

    #[test]
    fn gauges_are_shared_across_engine_handles() {
        let engine = crate::ScoutEngine::new();
        let clone = engine.clone();
        engine.gauges().record_shed();
        clone.gauges().record_admitted();
        let stats = engine.gauges().snapshot();
        assert_eq!((stats.admitted, stats.shed), (1, 1));
    }
}
