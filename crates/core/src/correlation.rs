//! The event correlation engine: from faulty policy objects to physical-level
//! root causes.
//!
//! Given the hypothesis produced by fault localization, the engine (§V-A of the
//! paper) looks up the change-log entries of each suspected object, selects the
//! fault-log entries that were active when those changes were made (or that are
//! still active), restricts them to the switches the object is actually
//! deployed on, and matches them against a library of known fault signatures.
//! Objects with no matching fault are tagged [`RootCause::Unknown`].

use std::collections::{BTreeMap, BTreeSet};

use scout_fabric::{ChangeLog, FaultKind, FaultLog, FaultLogEntry, Timestamp};
use scout_policy::{ObjectId, PolicyUniverse, SwitchId};

use crate::localization::{Evidence, Hypothesis};

/// A library of fault signatures the engine knows how to recognize.
///
/// Signatures are composed by network admins from domain knowledge; new ones
/// can be added at any time and the engine's ability grows with them (§V-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureLibrary {
    known: BTreeSet<FaultKind>,
}

impl Default for SignatureLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

impl SignatureLibrary {
    /// The standard library: TCAM overflow, unreachable switch, agent crash,
    /// rule eviction and channel degradation.
    pub fn standard() -> Self {
        Self {
            known: BTreeSet::from([
                FaultKind::TcamOverflow,
                FaultKind::SwitchUnreachable,
                FaultKind::AgentCrash,
                FaultKind::RuleEviction,
                FaultKind::ChannelDegraded,
            ]),
        }
    }

    /// An empty library (every fault is treated as unknown).
    pub fn empty() -> Self {
        Self {
            known: BTreeSet::new(),
        }
    }

    /// Adds a signature for `kind`.
    pub fn add(&mut self, kind: FaultKind) -> &mut Self {
        self.known.insert(kind);
        self
    }

    /// Returns `true` if the engine recognizes `kind`.
    pub fn matches(&self, kind: FaultKind) -> bool {
        self.known.contains(&kind)
    }

    /// Number of known signatures.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Returns `true` if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }
}

/// A physical-level root cause associated with a faulty policy object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootCause {
    /// A recognized physical fault.
    Physical {
        /// The matched fault class.
        kind: FaultKind,
        /// The switch the fault was reported on (`None` = controller level).
        switch: Option<SwitchId>,
        /// When the fault was raised.
        observed_at: Timestamp,
        /// The original fault-log message.
        message: String,
    },
    /// No fault log explains the object's failure (e.g. silent TCAM
    /// corruption).
    Unknown,
}

impl RootCause {
    /// The fault kind, if this is a recognized physical cause.
    pub fn kind(&self) -> Option<FaultKind> {
        match self {
            RootCause::Physical { kind, .. } => Some(*kind),
            RootCause::Unknown => None,
        }
    }
}

/// The per-object outcome of correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDiagnosis {
    /// The suspected faulty object.
    pub object: ObjectId,
    /// The physical root causes associated with it (never empty; contains
    /// [`RootCause::Unknown`] when nothing matched).
    pub causes: Vec<RootCause>,
}

impl ObjectDiagnosis {
    /// Returns `true` if no physical cause was found.
    pub fn is_unknown(&self) -> bool {
        self.causes.iter().all(|c| matches!(c, RootCause::Unknown))
    }

    /// The distinct fault kinds implicated for this object.
    pub fn fault_kinds(&self) -> BTreeSet<FaultKind> {
        self.causes.iter().filter_map(|c| c.kind()).collect()
    }
}

/// The full correlation report for one hypothesis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorrelationReport {
    /// Per-object diagnoses, in hypothesis order (crate-visible so the
    /// snapshot codec can rebuild a report).
    pub(crate) diagnoses: Vec<ObjectDiagnosis>,
}

impl CorrelationReport {
    /// Per-object diagnoses in hypothesis order.
    pub fn diagnoses(&self) -> &[ObjectDiagnosis] {
        &self.diagnoses
    }

    /// The diagnosis for a specific object, if it was part of the hypothesis.
    pub fn for_object(&self, object: ObjectId) -> Option<&ObjectDiagnosis> {
        self.diagnoses.iter().find(|d| d.object == object)
    }

    /// Objects whose failure could not be tied to any fault log.
    pub fn unknown_objects(&self) -> Vec<ObjectId> {
        self.diagnoses
            .iter()
            .filter(|d| d.is_unknown())
            .map(|d| d.object)
            .collect()
    }

    /// All fault kinds implicated across the hypothesis, with the objects they
    /// affect.
    pub fn causes_by_kind(&self) -> BTreeMap<FaultKind, BTreeSet<ObjectId>> {
        let mut map: BTreeMap<FaultKind, BTreeSet<ObjectId>> = BTreeMap::new();
        for d in &self.diagnoses {
            for kind in d.fault_kinds() {
                map.entry(kind).or_default().insert(d.object);
            }
        }
        map
    }

    /// The most likely overall root causes: fault kinds ordered by how many
    /// hypothesis objects they explain (descending).
    pub fn most_likely(&self) -> Vec<(FaultKind, usize)> {
        let mut counts: Vec<(FaultKind, usize)> = self
            .causes_by_kind()
            .into_iter()
            .map(|(k, objs)| (k, objs.len()))
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }
}

/// One candidate root cause in a [`PartialDiagnosis`], scored by confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCause {
    /// The suspected faulty object.
    pub object: ObjectId,
    /// The best matching physical cause, or [`RootCause::Unknown`] when no
    /// relevant fault log exists for the object.
    pub cause: RootCause,
    /// Confidence in `(0, 1]`. Logged causes score in `(0.5, 1]` and
    /// unlogged ones in `(0, 0.5]`, so a logged root cause always outranks
    /// an unlogged one.
    pub confidence: f64,
}

/// A ranked list of candidate root causes — the correlation engine's answer
/// when telemetry is degraded (missing or incomplete fault logs) and the
/// definitive per-object [`CorrelationReport`] would go silent.
///
/// Produced on demand by [`CorrelationEngine::rank_partial`] (or
/// [`AnalysisSession::partial_diagnosis`](crate::AnalysisSession::partial_diagnosis));
/// never stored in a [`ScoutReport`](crate::ScoutReport).
///
/// Candidates are sorted by confidence descending, ties broken by object id,
/// so the ranking is deterministic for a given report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialDiagnosis {
    candidates: Vec<RankedCause>,
}

impl PartialDiagnosis {
    /// All candidates, highest confidence first.
    pub fn candidates(&self) -> &[RankedCause] {
        &self.candidates
    }

    /// Number of ranked candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if nothing could be ranked (an empty hypothesis over
    /// a consistent fabric).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The top `n` candidates (fewer if the ranking is shorter).
    pub fn top(&self, n: usize) -> &[RankedCause] {
        &self.candidates[..n.min(self.candidates.len())]
    }

    /// The 1-based rank of `object`, if it was ranked at all.
    pub fn rank_of(&self, object: ObjectId) -> Option<usize> {
        self.candidates
            .iter()
            .position(|c| c.object == object)
            .map(|i| i + 1)
    }

    /// The best (lowest) 1-based rank across `objects` — how high the
    /// ranking places *any* member of a ground-truth set.
    pub fn rank_of_any(&self, objects: &BTreeSet<ObjectId>) -> Option<usize> {
        self.candidates
            .iter()
            .position(|c| objects.contains(&c.object))
            .map(|i| i + 1)
    }
}

/// The event correlation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelationEngine {
    signatures: SignatureLibrary,
}

impl Default for CorrelationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CorrelationEngine {
    /// Creates an engine with the standard signature library.
    pub fn new() -> Self {
        Self {
            signatures: SignatureLibrary::standard(),
        }
    }

    /// Creates an engine with a custom signature library.
    pub fn with_signatures(signatures: SignatureLibrary) -> Self {
        Self { signatures }
    }

    /// Read access to the signature library.
    pub fn signatures(&self) -> &SignatureLibrary {
        &self.signatures
    }

    /// Correlates a hypothesis with the controller change log and the device
    /// fault log, producing a per-object physical diagnosis.
    ///
    /// `universe` is used to restrict candidate fault entries to the switches
    /// an object's rules are actually deployed on.
    pub fn correlate(
        &self,
        hypothesis: &Hypothesis,
        universe: &PolicyUniverse,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> CorrelationReport {
        let mut diagnoses = Vec::new();
        for (&object, _evidence) in hypothesis.iter() {
            let relevant_switches = object_switches(universe, object);
            let change_times: Vec<Timestamp> = change_log
                .entries_for(object)
                .iter()
                .map(|e| e.time)
                .collect();

            let mut causes = Vec::new();
            for entry in fault_log.entries() {
                if !switch_relevant(entry, &relevant_switches) {
                    continue;
                }
                if !fault_relevant(entry, &change_times) {
                    continue;
                }
                if self.signatures.matches(entry.kind) {
                    causes.push(RootCause::Physical {
                        kind: entry.kind,
                        switch: entry.switch,
                        observed_at: entry.time,
                        message: entry.message.clone(),
                    });
                } else {
                    causes.push(RootCause::Unknown);
                }
            }
            if causes.is_empty() || causes.iter().all(|c| matches!(c, RootCause::Unknown)) {
                causes = vec![RootCause::Unknown];
            } else {
                causes.retain(|c| !matches!(c, RootCause::Unknown));
            }
            diagnoses.push(ObjectDiagnosis { object, causes });
        }
        CorrelationReport { diagnoses }
    }

    /// Ranks every candidate root cause by confidence — the degraded-input
    /// counterpart to [`CorrelationEngine::correlate`], for fabrics whose
    /// fault logs are missing, wiped or incomplete.
    ///
    /// Candidates are the hypothesis objects plus any risk-model suspects
    /// the greedy cover did not select (weaker, but still in play when logs
    /// cannot arbitrate). Confidence composes two signals:
    ///
    /// * the localization evidence class — full cover 1.0, recent change
    ///   0.8, score cover 0.6, unselected suspect 0.3 — and
    /// * whether a signature-matched fault log backs the object: logged
    ///   causes map to `0.55 + 0.45 × weight` (always above `0.5`),
    ///   unlogged ones to `0.5 × weight` (always at or below) — so a logged
    ///   root cause ranks above every unlogged candidate by construction.
    ///
    /// When several logs back one object the most recent wins. The ranking
    /// is never empty while the hypothesis or suspect set is non-empty, and
    /// it is deterministic: ties break on object id.
    pub fn rank_partial(
        &self,
        hypothesis: &Hypothesis,
        suspects: &BTreeSet<ObjectId>,
        universe: &PolicyUniverse,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> PartialDiagnosis {
        let mut candidates = Vec::new();
        let hypothesized = hypothesis.objects();
        let weighted = hypothesis
            .iter()
            .map(|(&object, evidence)| {
                let weight = match evidence {
                    Evidence::FullCover => 1.0,
                    Evidence::RecentChange { .. } => 0.8,
                    Evidence::ScoreCover => 0.6,
                };
                (object, weight)
            })
            .chain(
                suspects
                    .iter()
                    .filter(|o| !hypothesized.contains(o))
                    .map(|&object| (object, 0.3)),
            );
        for (object, weight) in weighted {
            let relevant_switches = object_switches(universe, object);
            let change_times: Vec<Timestamp> = change_log
                .entries_for(object)
                .iter()
                .map(|e| e.time)
                .collect();
            let backing = fault_log
                .entries()
                .iter()
                .filter(|entry| {
                    switch_relevant(entry, &relevant_switches)
                        && fault_relevant(entry, &change_times)
                        && self.signatures.matches(entry.kind)
                })
                .max_by_key(|entry| entry.time);
            let (cause, confidence) = match backing {
                Some(entry) => (
                    RootCause::Physical {
                        kind: entry.kind,
                        switch: entry.switch,
                        observed_at: entry.time,
                        message: entry.message.clone(),
                    },
                    0.55 + 0.45 * weight,
                ),
                None => (RootCause::Unknown, 0.5 * weight),
            };
            candidates.push(RankedCause {
                object,
                cause,
                confidence,
            });
        }
        candidates.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("confidences are finite")
                .then_with(|| a.object.cmp(&b.object))
        });
        PartialDiagnosis { candidates }
    }
}

/// The switches an object's rules can be deployed on — the universe's
/// build-time index, so correlating a hypothesis costs per-object lookups
/// rather than a universe sweep per suspected object.
fn object_switches(universe: &PolicyUniverse, object: ObjectId) -> BTreeSet<SwitchId> {
    universe.switches_for_object(object)
}

/// A fault entry is relevant to an object if it concerns one of the object's
/// switches (controller-level entries with no switch are always relevant).
fn switch_relevant(entry: &FaultLogEntry, switches: &BTreeSet<SwitchId>) -> bool {
    match entry.switch {
        None => true,
        Some(s) => switches.contains(&s),
    }
}

/// A fault entry is temporally relevant if it was active when one of the
/// object's changes was made, or if it is still active (not yet cleared) — the
/// "logged before the policy changes and kept alive" rule of §V-A.
fn fault_relevant(entry: &FaultLogEntry, change_times: &[Timestamp]) -> bool {
    if entry.cleared_at.is_none() {
        return true;
    }
    change_times.iter().any(|&t| entry.active_at(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localization::{scout_localize, ScoutConfig};
    use crate::risk::{augment_controller_model, controller_risk_model};
    use scout_equiv::EquivalenceChecker;
    use scout_fabric::Fabric;
    use scout_policy::sample;

    /// Deploys the 3-tier policy onto switches with tiny TCAMs so that the
    /// overflow path is exercised end to end.
    fn overflowing_fabric() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier_with_capacity(3));
        fabric.deploy();
        fabric
    }

    fn hypothesis_for(fabric: &Fabric) -> Hypothesis {
        let checker = EquivalenceChecker::new();
        let result = checker.check_network(fabric.logical_rules(), &fabric.collect_tcam());
        let mut model = controller_risk_model(fabric.universe());
        augment_controller_model(&mut model, result.missing_rules());
        scout_localize(&model, fabric.change_log(), ScoutConfig::default())
    }

    #[test]
    fn tcam_overflow_is_attributed_to_the_overflow_fault() {
        let fabric = overflowing_fabric();
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());
        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert_eq!(report.diagnoses().len(), hypothesis.len());
        let by_kind = report.causes_by_kind();
        assert!(by_kind.contains_key(&FaultKind::TcamOverflow));
        let (top_kind, _) = report.most_likely()[0];
        assert_eq!(top_kind, FaultKind::TcamOverflow);
    }

    #[test]
    fn unreachable_switch_is_attributed_to_disconnect_fault() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());
        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert!(report
            .causes_by_kind()
            .contains_key(&FaultKind::SwitchUnreachable));
    }

    #[test]
    fn silent_corruption_yields_unknown_cause() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
            .corrupt_tcam(sample::S1, 0, scout_fabric::CorruptionKind::DstEpgBit)
            .unwrap();
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());
        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        // No fault log exists, so every hypothesis object is tagged unknown.
        assert_eq!(report.unknown_objects().len(), hypothesis.len());
        assert!(report.causes_by_kind().is_empty());
        assert!(report.most_likely().is_empty());
    }

    #[test]
    fn empty_signature_library_reports_unknown() {
        let fabric = overflowing_fabric();
        let hypothesis = hypothesis_for(&fabric);
        let engine = CorrelationEngine::with_signatures(SignatureLibrary::empty());
        assert!(engine.signatures().is_empty());
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert_eq!(report.unknown_objects().len(), hypothesis.len());
    }

    #[test]
    fn faults_on_unrelated_switches_are_ignored() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // Fault on S3, but the missing rule (and hypothesis) concerns only the
        // Web-App pair which never touches S3.
        fabric.disconnect_switch(sample::S3);
        fabric.remove_tcam_rules_where(sample::S1, |_| true);
        fabric.remove_tcam_rules_where(sample::S2, |r| {
            r.pair() == scout_policy::EpgPair::new(sample::WEB, sample::APP)
        });
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());
        // The hypothesis should not involve S3 objects.
        assert!(!hypothesis.contains(ObjectId::Switch(sample::S3)));
        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        // Web-App only objects (e.g. the Web EPG or the Web-App contract) must
        // not be blamed on the S3 disconnect.
        for diag in report.diagnoses() {
            if diag.object == ObjectId::Epg(sample::WEB)
                || diag.object == ObjectId::Contract(sample::C_WEB_APP)
            {
                assert!(
                    !diag.fault_kinds().contains(&FaultKind::SwitchUnreachable)
                        || diag.causes.iter().all(|c| match c {
                            RootCause::Physical { switch, .. } => *switch != Some(sample::S3),
                            RootCause::Unknown => true,
                        })
                );
            }
        }
    }

    /// Every loggable fault kind of the standard signature library, injected
    /// through its natural scenario, is mapped back to the expected physical
    /// diagnosis by the engine.
    #[test]
    fn every_standard_fault_kind_maps_to_its_diagnosis() {
        let scenarios: Vec<(FaultKind, Box<dyn Fn() -> Fabric>)> = vec![
            (
                FaultKind::TcamOverflow,
                Box::new(|| {
                    let mut f = Fabric::new(sample::three_tier_with_capacity(3));
                    f.deploy();
                    f
                }),
            ),
            (
                FaultKind::SwitchUnreachable,
                Box::new(|| {
                    let mut f = Fabric::new(sample::three_tier());
                    f.disconnect_switch(sample::S2);
                    f.deploy();
                    f
                }),
            ),
            (
                FaultKind::AgentCrash,
                Box::new(|| {
                    let mut f = Fabric::new(sample::three_tier());
                    f.crash_agent(sample::S2);
                    f.deploy();
                    f
                }),
            ),
            (
                FaultKind::RuleEviction,
                Box::new(|| {
                    let mut f = Fabric::new(sample::three_tier());
                    f.deploy();
                    // A *logged* eviction: the agent reports the fault.
                    f.evict_tcam(sample::S2, 2, true);
                    f
                }),
            ),
            (
                FaultKind::ChannelDegraded,
                Box::new(|| {
                    let mut f = Fabric::new(sample::three_tier());
                    // Every second instruction towards S2 is dropped.
                    f.degrade_channel(sample::S2, 2);
                    f.deploy();
                    f
                }),
            ),
        ];
        for (kind, build) in scenarios {
            let fabric = build();
            let hypothesis = hypothesis_for(&fabric);
            assert!(!hypothesis.is_empty(), "{kind}: nothing localized");
            let engine = CorrelationEngine::new();
            let report = engine.correlate(
                &hypothesis,
                fabric.universe(),
                fabric.change_log(),
                fabric.fault_log(),
            );
            assert!(
                report.causes_by_kind().contains_key(&kind),
                "{kind}: expected diagnosis missing, got {:?}",
                report.causes_by_kind().keys().collect::<Vec<_>>()
            );
            assert_eq!(report.most_likely()[0].0, kind, "{kind} must rank first");
        }
    }

    /// Conflicting logs: two different faults are active on the same switch
    /// when the divergence appears. The engine must surface *both* candidate
    /// causes rather than picking one arbitrarily, and rank them by how many
    /// hypothesis objects each explains.
    #[test]
    fn conflicting_logs_surface_every_candidate_cause() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.crash_agent(sample::S2);
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());

        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        let by_kind = report.causes_by_kind();
        assert!(by_kind.contains_key(&FaultKind::AgentCrash), "{by_kind:?}");
        assert!(
            by_kind.contains_key(&FaultKind::SwitchUnreachable),
            "{by_kind:?}"
        );
        // Both faults cover the same switch, so they explain the same objects
        // and the ranking falls back to the deterministic kind order.
        let ranked = report.most_likely();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].1, ranked[1].1, "equal coverage");
        // No implicated object is left unknown: something explains each.
        assert!(report.unknown_objects().is_empty());
    }

    /// The repair audit events emitted by the fabric's repair hooks are
    /// pre-cleared and must never show up as root causes, even though
    /// `FaultKind::Repair` entries sit in the same log.
    #[test]
    fn repair_audit_events_are_never_root_causes() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // A repaired-then-rebroken switch: the old repair event must not be
        // blamed for the new divergence.
        fabric.evict_tcam(sample::S2, 1, false);
        fabric.repair_switch(sample::S2);
        assert!(!fabric
            .fault_log()
            .entries_of_kind(FaultKind::Repair)
            .is_empty());
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());
        let engine = CorrelationEngine::new();
        let report = engine.correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert!(!report.causes_by_kind().contains_key(&FaultKind::Repair));
        // The silent removal has no log at all: every object is unknown.
        assert_eq!(report.unknown_objects().len(), hypothesis.len());
    }

    /// An extended library recognizes a fault kind the standard one treats as
    /// unknown — the mechanism that lets admins grow the engine's coverage.
    #[test]
    fn extended_library_attributes_what_standard_cannot() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
            .corrupt_tcam(sample::S2, 0, scout_fabric::CorruptionKind::VrfBit)
            .unwrap();
        // Suppose a hardware scrubber *did* log the corruption this time.
        let t = fabric.now();
        fabric.fault_log_mut().raise(
            t,
            Some(sample::S2),
            FaultKind::TcamCorruption,
            scout_fabric::Severity::Warning,
            "parity error reported by scrubber",
        );
        let hypothesis = hypothesis_for(&fabric);
        assert!(!hypothesis.is_empty());

        // Standard library: the kind has no signature, objects stay unknown.
        let standard = CorrelationEngine::new().correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert!(!standard
            .causes_by_kind()
            .contains_key(&FaultKind::TcamCorruption));
        assert_eq!(standard.unknown_objects().len(), hypothesis.len());

        // Extended library: the same log entry becomes the diagnosis.
        let mut lib = SignatureLibrary::standard();
        lib.add(FaultKind::TcamCorruption);
        let extended = CorrelationEngine::with_signatures(lib).correlate(
            &hypothesis,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        assert!(extended
            .causes_by_kind()
            .contains_key(&FaultKind::TcamCorruption));
        assert!(extended.unknown_objects().is_empty());
    }

    #[test]
    fn signature_library_can_be_extended() {
        let mut lib = SignatureLibrary::empty();
        lib.add(FaultKind::TcamCorruption);
        assert!(lib.matches(FaultKind::TcamCorruption));
        assert!(!lib.matches(FaultKind::TcamOverflow));
        assert_eq!(lib.len(), 1);
        assert_eq!(SignatureLibrary::standard().len(), 5);
    }

    #[test]
    fn root_cause_kind_accessor() {
        let cause = RootCause::Physical {
            kind: FaultKind::AgentCrash,
            switch: Some(sample::S1),
            observed_at: Timestamp::new(5),
            message: "crash".to_string(),
        };
        assert_eq!(cause.kind(), Some(FaultKind::AgentCrash));
        assert_eq!(RootCause::Unknown.kind(), None);
    }
}
