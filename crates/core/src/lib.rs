//! # scout-core
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! The primary contribution of *Fault Localization in Large-Scale Network
//! Policy Deployment* (Tammana et al., ICDCS 2018): risk models for network
//! policies, the SCOUT fault-localization algorithm, the SCORE baseline it is
//! evaluated against, the event-correlation engine that maps faulty policy
//! objects to physical-level root causes, and the long-lived [`ScoutEngine`]
//! service facade with its delta-driven [`AnalysisSession`]s.
//!
//! ## Pipeline
//!
//! 1. **Detect** — the L–T equivalence checker (`scout-equiv`) compares the
//!    logical rules compiled from the policy with the TCAM rules collected
//!    from switches and emits the set of missing rules.
//! 2. **Model** — the missing rules annotate a bipartite [`RiskModel`]
//!    (switch-level or controller-level) between EPG pairs and the policy
//!    objects they rely on (§III of the paper).
//! 3. **Localize** — [`scout_localize`] greedily picks the fully-failed risks
//!    with maximal coverage and falls back to the controller change log for
//!    partially-failed objects (Algorithms 1 and 2). [`score_localize`]
//!    implements the SCORE baseline.
//! 4. **Diagnose** — the [`CorrelationEngine`] matches the hypothesis against
//!    device fault logs through a signature library and reports the most
//!    likely physical root causes (TCAM overflow, unreachable switch, …).
//!
//! ## Service API
//!
//! [`ScoutEngine`] is the single front door: one-shot analyses go through
//! [`ScoutEngine::analyze`], continuous monitoring opens an
//! [`AnalysisSession`] and streams typed
//! [`FabricEvent`](scout_fabric::FabricEvent) batches into it, receiving a
//! [`ReportDelta`] per epoch. Both routes share the same four stages, so a
//! session's [`AnalysisSession::full_report`] is bit-identical to a
//! from-scratch analysis of the same fabric state.
//!
//! # Example
//!
//! ```
//! use scout_core::ScoutEngine;
//! use scout_fabric::Fabric;
//! use scout_policy::{sample, ObjectId};
//!
//! // Deploy the 3-tier example policy, then silently lose the port-700 rules.
//! let mut fabric = Fabric::new(sample::three_tier());
//! fabric.deploy();
//! for switch in [sample::S2, sample::S3] {
//!     fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
//! }
//!
//! let report = ScoutEngine::new().analyze(&fabric);
//! assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod engine;
pub mod gauges;
pub mod localization;
pub mod risk;
pub mod session;
pub mod snapshot;

pub use correlation::{
    CorrelationEngine, CorrelationReport, ObjectDiagnosis, PartialDiagnosis, RankedCause,
    RootCause, SignatureLibrary,
};
pub use engine::{
    EngineBuildError, EngineConfig, OracleCadence, ScoutEngine, ScoutEngineBuilder, ScoutReport,
    SessionId, SessionInfo, DEFAULT_REGISTRY_SHARDS,
};
pub use gauges::{ServiceGauges, ServiceStats};
pub use localization::{score_localize, scout_localize, Evidence, Hypothesis, ScoutConfig};
pub use risk::{
    augment_controller_model, augment_controller_model_tracked, augment_switch_model,
    augment_switch_model_tracked, controller_risk_model, controller_risk_model_sharded,
    switch_risk_model, EdgeStatus, FailureMarks, RiskModel,
};
pub use session::{AnalysisSession, ReportDelta, ResyncRequest, SessionError, SessionStats};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use scout_fabric::ChangeLog;
    use scout_policy::{EpgId, EpgPair, FilterId, ObjectId};
    use std::collections::BTreeSet;

    /// A random bipartite model description: element index -> (risk index,
    /// failed?) edges.
    fn random_model_desc(rng: &mut StdRng) -> Vec<Vec<(u32, bool)>> {
        let elements = rng.gen_range(1usize..12);
        (0..elements)
            .map(|_| {
                let edges = rng.gen_range(1usize..6);
                (0..edges)
                    .map(|_| (rng.gen_range(0u32..8), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect()
    }

    fn build_model(desc: &[Vec<(u32, bool)>]) -> RiskModel<EpgPair> {
        let mut model = RiskModel::new();
        for (i, edges) in desc.iter().enumerate() {
            let element = EpgPair::new(EpgId::new(i as u32 * 2), EpgId::new(i as u32 * 2 + 1));
            model.add_element(element);
            for &(risk, failed) in edges {
                let risk = ObjectId::Filter(FilterId::new(risk));
                if failed {
                    model.mark_failed(element, risk);
                } else {
                    model.add_edge(element, risk);
                }
            }
        }
        model
    }

    /// SCOUT's cover stage plus change-log stage never report more
    /// observations than exist, and the hypothesis only contains risks of the
    /// model.
    #[test]
    fn scout_hypothesis_is_well_formed() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = build_model(&random_model_desc(&mut rng));
            let log = ChangeLog::new();
            let h = scout_localize(&model, &log, ScoutConfig::default());
            let signature = model.failure_signature();
            assert_eq!(h.observations, signature.len(), "seed {seed}");
            assert_eq!(
                h.explained_by_cover + h.explained_by_changelog + h.unexplained,
                signature.len(),
                "seed {seed}"
            );
            let all_risks: BTreeSet<ObjectId> = model.risks().copied().collect();
            for obj in h.objects() {
                assert!(all_risks.contains(&obj), "seed {seed}");
            }
        }
    }

    /// Every observation explained by the cover stage really is covered by
    /// some hypothesis object whose dependents all failed.
    #[test]
    fn scout_cover_objects_fully_failed() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = build_model(&random_model_desc(&mut rng));
            let log = ChangeLog::new();
            let h = scout_localize(&model, &log, ScoutConfig::default());
            for (obj, evidence) in h.iter() {
                if matches!(evidence, Evidence::FullCover) {
                    // In the original (un-pruned) model the object's failed
                    // dependents are non-empty.
                    assert!(!model.failed_dependents_of(*obj).is_empty(), "seed {seed}");
                }
            }
        }
    }

    /// SCORE with threshold 0 explains every observation (it degenerates to
    /// unconstrained greedy set cover over failed edges).
    #[test]
    fn score_threshold_zero_explains_everything() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = build_model(&random_model_desc(&mut rng));
            let h = score_localize(&model, 0.0);
            assert_eq!(h.unexplained, 0, "seed {seed}");
        }
    }

    /// SCORE's hypothesis size never exceeds the number of observations (each
    /// greedy pick explains at least one new observation).
    #[test]
    fn score_hypothesis_bounded_by_observations() {
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = build_model(&random_model_desc(&mut rng));
            let h = score_localize(&model, 1.0);
            assert!(h.len() <= h.observations, "seed {seed}");
        }
    }

    /// Ranked partial diagnoses under randomly conflicting evidence — logged
    /// evictions next to silent removals, with coin-flip fault-log wipes —
    /// are deterministic across engine parallelism, never empty while
    /// missing rules exist, and always rank a logged root cause above every
    /// unlogged candidate.
    #[test]
    fn ranked_partial_diagnoses_are_stable_and_ordered() {
        use scout_equiv::Parallelism;
        use scout_fabric::{Fabric, FaultLog};
        use scout_policy::sample;

        let rank = |engine: &ScoutEngine, fabric: &Fabric| {
            let report = engine.analyze(fabric);
            let ranked = engine.correlation().rank_partial(
                &report.hypothesis,
                &report.suspect_objects,
                fabric.universe(),
                fabric.change_log(),
                fabric.fault_log(),
            );
            (report, ranked)
        };

        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut fabric = Fabric::new(sample::three_tier());
            fabric.deploy();
            let switches = [sample::S1, sample::S2, sample::S3];
            for _ in 0..rng.gen_range(1usize..4) {
                let switch = switches[rng.gen_range(0..switches.len())];
                if rng.gen_bool(0.5) {
                    fabric.evict_tcam(switch, rng.gen_range(1usize..3), true);
                } else {
                    fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
                }
            }
            if rng.gen_bool(0.3) {
                *fabric.fault_log_mut() = FaultLog::new();
            }

            let sequential = ScoutEngine::builder()
                .parallelism(Parallelism::Sequential)
                .build()
                .unwrap();
            let threaded = ScoutEngine::builder()
                .parallelism(Parallelism::Fixed(4))
                .build()
                .unwrap();
            let (report, ranked) = rank(&sequential, &fabric);
            let (_, reranked) = rank(&sequential, &fabric);
            assert_eq!(ranked, reranked, "seed {seed}: ranking must be stable");
            let (_, ranked_threaded) = rank(&threaded, &fabric);
            assert_eq!(
                ranked, ranked_threaded,
                "seed {seed}: ranking must not depend on thread count"
            );

            if report.check.missing_rules().next().is_some() {
                assert!(
                    !ranked.is_empty(),
                    "seed {seed}: missing rules demand a non-empty ranking"
                );
            }

            let mut saw_unlogged = false;
            for candidate in ranked.candidates() {
                assert!(
                    candidate.confidence > 0.0 && candidate.confidence <= 1.0,
                    "seed {seed}: confidence out of range"
                );
                match candidate.cause {
                    RootCause::Unknown => {
                        assert!(candidate.confidence <= 0.5, "seed {seed}");
                        saw_unlogged = true;
                    }
                    RootCause::Physical { .. } => {
                        assert!(candidate.confidence > 0.5, "seed {seed}");
                        assert!(
                            !saw_unlogged,
                            "seed {seed}: a logged cause ranked below an unlogged one"
                        );
                    }
                }
            }
        }
    }
}
