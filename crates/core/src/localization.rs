//! Fault localization algorithms: SCOUT (the paper's contribution, Algorithms
//! 1 and 2) and the SCORE baseline it is compared against.
//!
//! Both algorithms consume an augmented [`RiskModel`] and output a
//! [`Hypothesis`]: a small set of policy objects that explains the observed
//! failures. SCOUT additionally consults the controller's change log to
//! attribute observations that no fully-failed risk explains (the
//! "recently-modified object" heuristic of §IV-C).

use std::collections::{BTreeMap, BTreeSet};

use scout_fabric::{ChangeLog, Timestamp};
use scout_policy::ObjectId;

use crate::risk::RiskModel;

/// How an object ended up in the hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Evidence {
    /// Selected by the greedy cover stage: every dependent of the object in the
    /// (pruned) risk model had a failed edge (hit ratio 1) and the object had
    /// maximal coverage.
    FullCover,
    /// Selected by the change-log stage: the object was the most recently
    /// modified among the failed risks of an otherwise unexplained observation.
    RecentChange {
        /// Time of the change-log entry that implicated the object.
        changed_at: Timestamp,
    },
    /// Selected by the SCORE baseline (hit ratio above its threshold and
    /// maximal residual coverage).
    ScoreCover,
}

/// The output of a localization run: the hypothesis (suspected faulty objects)
/// plus bookkeeping about how well it explains the failure signature.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hypothesis {
    /// The suspected objects and the evidence that put them here
    /// (crate-visible so the snapshot codec can rebuild a hypothesis).
    pub(crate) objects: BTreeMap<ObjectId, Evidence>,
    /// Number of observations in the failure signature.
    pub observations: usize,
    /// Number of observations explained by the cover stage.
    pub explained_by_cover: usize,
    /// Number of observations attributed through the change log.
    pub explained_by_changelog: usize,
    /// Number of observations left unexplained.
    pub unexplained: usize,
}

impl Hypothesis {
    /// The suspected faulty objects.
    pub fn objects(&self) -> BTreeSet<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// The evidence recorded for `object`, if it is part of the hypothesis.
    pub fn evidence(&self, object: ObjectId) -> Option<Evidence> {
        self.objects.get(&object).copied()
    }

    /// Number of objects in the hypothesis.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the hypothesis is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns `true` if `object` is part of the hypothesis.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.objects.contains_key(&object)
    }

    /// Iterates over `(object, evidence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &Evidence)> {
        self.objects.iter()
    }

    fn insert(&mut self, object: ObjectId, evidence: Evidence) {
        self.objects.entry(object).or_insert(evidence);
    }
}

/// Configuration of the SCOUT algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoutConfig {
    /// Change-log stage "recency" window, in simulated ticks.
    ///
    /// For an unexplained observation the stage looks at the failed risks of
    /// that observation, finds the one changed most recently, and selects
    /// every candidate whose latest change falls within this window of that
    /// time. `None` selects only the strictly most recently changed
    /// candidate(s). The default of 16 ticks comfortably groups the entries of
    /// one policy-update batch while excluding the much older initial
    /// deployment entries.
    pub recent_window: Option<u64>,
}

impl ScoutConfig {
    /// Default recency window (in ticks) of the change-log stage.
    pub const DEFAULT_RECENT_WINDOW: u64 = 16;
}

impl Default for ScoutConfig {
    fn default() -> Self {
        Self {
            recent_window: Some(Self::DEFAULT_RECENT_WINDOW),
        }
    }
}

/// Runs the SCOUT fault localization algorithm (Algorithm 1 + 2 of the paper).
///
/// Stage 1 repeatedly picks the shared risks whose hit ratio is 1 and whose
/// coverage over the still-unexplained observations is maximal, prunes every
/// element depending on them, and adds them to the hypothesis. Stage 2
/// attributes any remaining observation to the most recently changed object
/// among its failed risks, using the controller change log.
///
/// The cover stage operates on the model's
/// [failure subgraph](RiskModel::failure_subgraph) rather than a full working
/// clone: the stage's candidates are always failed risks of (still
/// unexplained) observations, and every count it consults — dependents,
/// failed dependents — involves only those risks, so the projection is
/// behavior-preserving while keeping the per-run cost proportional to the
/// failure footprint instead of the policy universe.
pub fn scout_localize<E: Ord + Copy>(
    model: &RiskModel<E>,
    change_log: &ChangeLog,
    config: ScoutConfig,
) -> Hypothesis {
    let signature = model.failure_signature();
    let mut hypothesis = Hypothesis {
        observations: signature.len(),
        ..Hypothesis::default()
    };
    if signature.is_empty() {
        return hypothesis;
    }

    let mut work = model.failure_subgraph();
    let mut unexplained: BTreeSet<E> = signature;

    // Stage 1: greedy cover with hit-ratio-1 candidates (Algorithm 2).
    loop {
        if unexplained.is_empty() {
            break;
        }
        // Shared risks implicated by the remaining observations.
        let candidates: BTreeSet<ObjectId> = unexplained
            .iter()
            .flat_map(|o| work.failed_risks_of(o))
            .collect();

        // hitSet: candidates whose every dependent (in the pruned model) failed.
        let hit_set: Vec<ObjectId> = candidates
            .into_iter()
            .filter(|&risk| {
                let total = work.dependent_count(risk);
                total > 0 && work.failed_dependent_count(risk) == total
            })
            .collect();
        if hit_set.is_empty() {
            break;
        }

        // getMaxCovSet: keep the risks with the highest coverage.
        let best_coverage = hit_set
            .iter()
            .map(|&risk| work.failed_dependent_count(risk))
            .max()
            .unwrap_or(0);
        if best_coverage == 0 {
            break;
        }
        let faulty_set: Vec<ObjectId> = hit_set
            .into_iter()
            .filter(|&risk| work.failed_dependent_count(risk) == best_coverage)
            .collect();

        // Prune every element depending on a selected risk and account for the
        // observations that are now explained.
        let mut affected: BTreeSet<E> = BTreeSet::new();
        for &risk in &faulty_set {
            affected.extend(work.dependents_of(risk));
        }
        let newly_explained = unexplained.iter().filter(|o| affected.contains(o)).count();
        hypothesis.explained_by_cover += newly_explained;
        unexplained.retain(|o| !affected.contains(o));
        work.prune_elements(&affected);
        for risk in faulty_set {
            hypothesis.insert(risk, Evidence::FullCover);
        }
    }

    // Stage 2: change-log heuristic for the leftover observations.
    let mut still_unexplained = 0usize;
    if !unexplained.is_empty() {
        for observation in &unexplained {
            let failed_risks = model.failed_risks_of(observation);
            let recent = most_recent_changes(&failed_risks, change_log, config.recent_window);
            if recent.is_empty() {
                still_unexplained += 1;
            } else {
                hypothesis.explained_by_changelog += 1;
                for (object, changed_at) in recent {
                    hypothesis.insert(object, Evidence::RecentChange { changed_at });
                }
            }
        }
    }
    hypothesis.unexplained = still_unexplained;
    hypothesis
}

/// Among `candidates`, returns the recently-changed objects: every candidate
/// whose latest change-log entry lies within `window` ticks of the most
/// recently changed candidate. With `window = None` only the strictly latest
/// candidate(s) are returned. Candidates with no change entry never qualify.
fn most_recent_changes(
    candidates: &BTreeSet<ObjectId>,
    change_log: &ChangeLog,
    window: Option<u64>,
) -> Vec<(ObjectId, Timestamp)> {
    let last_changes: Vec<(ObjectId, Timestamp)> = candidates
        .iter()
        .filter_map(|&object| {
            change_log
                .last_entry_for(object)
                .map(|entry| (object, entry.time))
        })
        .collect();
    let Some(&newest) = last_changes.iter().map(|(_, t)| t).max() else {
        return Vec::new();
    };
    let window = window.unwrap_or(0);
    last_changes
        .into_iter()
        .filter(|(_, t)| newest.since(*t) <= window)
        .collect()
}

/// Runs the SCORE baseline algorithm (Kompella et al., used as the comparison
/// point in §VI of the paper).
///
/// Candidate risks are those whose hit ratio is at least `threshold` (computed
/// on the full, un-pruned model); the algorithm then greedily picks the
/// candidate covering the most still-unexplained observations until no
/// candidate covers anything new.
pub fn score_localize<E: Ord + Copy>(model: &RiskModel<E>, threshold: f64) -> Hypothesis {
    let signature = model.failure_signature();
    let mut hypothesis = Hypothesis {
        observations: signature.len(),
        ..Hypothesis::default()
    };
    if signature.is_empty() {
        return hypothesis;
    }

    let candidates: Vec<ObjectId> = model
        .risks()
        .copied()
        .filter(|&risk| model.hit_ratio(risk) + f64::EPSILON >= threshold)
        .collect();

    let mut unexplained: BTreeSet<E> = signature;
    loop {
        let mut best: Option<(ObjectId, usize)> = None;
        for &candidate in &candidates {
            if hypothesis.contains(candidate) {
                continue;
            }
            let covered = model
                .failed_dependents_of(candidate)
                .intersection(&unexplained)
                .count();
            if covered == 0 {
                continue;
            }
            match best {
                Some((_, best_covered)) if best_covered >= covered => {}
                _ => best = Some((candidate, covered)),
            }
        }
        let Some((chosen, _)) = best else {
            break;
        };
        let covered: BTreeSet<E> = model
            .failed_dependents_of(chosen)
            .intersection(&unexplained)
            .copied()
            .collect();
        hypothesis.explained_by_cover += covered.len();
        unexplained.retain(|o| !covered.contains(o));
        hypothesis.insert(chosen, Evidence::ScoreCover);
        if unexplained.is_empty() {
            break;
        }
    }
    hypothesis.unexplained = unexplained.len();
    hypothesis
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::ChangeAction;
    use scout_policy::{ContractId, EpgId, EpgPair, FilterId};

    fn pair(a: u32, b: u32) -> EpgPair {
        EpgPair::new(EpgId::new(a), EpgId::new(b))
    }

    fn filter(i: u32) -> ObjectId {
        ObjectId::Filter(FilterId::new(i))
    }

    fn contract(i: u32) -> ObjectId {
        ObjectId::Contract(ContractId::new(i))
    }

    /// Builds the risk model of Figure 5 of the paper.
    ///
    /// Elements E1-E2 … E6-E7; risks C1, F1, F2, C2, C3, F3. The failed
    /// observations are E1-E2, E2-E3, E3-E4, E4-E5 (all covered by F2) and
    /// E6-E7 (covered only partially by C3/F3).
    fn figure5_model() -> RiskModel<EpgPair> {
        let mut m: RiskModel<EpgPair> = RiskModel::new();
        let e12 = pair(1, 2);
        let e23 = pair(2, 3);
        let e34 = pair(3, 4);
        let e45 = pair(4, 5);
        let e56 = pair(5, 6);
        let e67 = pair(6, 7);

        // C1: only a success edge to E1-E2 (hit 0, coverage 0).
        m.add_edge(e12, contract(1));
        // F1: fully failed, covers E1-E2 and E2-E3 (hit 1, coverage 0.4).
        m.mark_failed(e12, filter(1));
        m.mark_failed(e23, filter(1));
        // F2: fully failed, covers the first four pairs (hit 1, coverage 0.8).
        for e in [e12, e23, e34, e45] {
            m.mark_failed(e, filter(2));
        }
        // C2: fully failed, covers E3-E4 and E4-E5 (hit 1, coverage 0.4).
        m.mark_failed(e34, contract(2));
        m.mark_failed(e45, contract(2));
        // C3 and F3: three dependents each, only E6-E7 failed (hit ~0.3).
        for e in [e45, e56, e67] {
            m.add_edge(e, contract(3));
            m.add_edge(e, filter(3));
        }
        m.mark_failed(e67, contract(3));
        m.mark_failed(e67, filter(3));
        m
    }

    fn figure5_change_log() -> ChangeLog {
        let mut log = ChangeLog::new();
        // Old creation entries for every object.
        for (i, obj) in [contract(1), filter(1), filter(2), contract(2), contract(3)]
            .into_iter()
            .enumerate()
        {
            log.record(
                Timestamp::new(i as u64 + 1),
                obj,
                ChangeAction::Create,
                None,
                "initial",
            );
        }
        log.record(
            Timestamp::new(6),
            filter(3),
            ChangeAction::Create,
            None,
            "initial",
        );
        // F3 was modified recently.
        log.record(
            Timestamp::new(100),
            filter(3),
            ChangeAction::Modify,
            None,
            "filter entries changed",
        );
        log
    }

    #[test]
    fn fig5_example_scout_picks_f2_then_f3() {
        let model = figure5_model();
        let log = figure5_change_log();
        let hypothesis = scout_localize(&model, &log, ScoutConfig::default());
        assert_eq!(hypothesis.objects(), BTreeSet::from([filter(2), filter(3)]));
        assert_eq!(hypothesis.evidence(filter(2)), Some(Evidence::FullCover));
        assert_eq!(
            hypothesis.evidence(filter(3)),
            Some(Evidence::RecentChange {
                changed_at: Timestamp::new(100)
            })
        );
        assert_eq!(hypothesis.observations, 5);
        assert_eq!(hypothesis.explained_by_cover, 4);
        assert_eq!(hypothesis.explained_by_changelog, 1);
        assert_eq!(hypothesis.unexplained, 0);
    }

    #[test]
    fn fig5_example_score_misses_the_partial_fault() {
        let model = figure5_model();
        let hypothesis = score_localize(&model, 1.0);
        // SCORE finds F2 but not F3 (hit ratio 1/3 is below the threshold).
        assert_eq!(hypothesis.objects(), BTreeSet::from([filter(2)]));
        assert_eq!(hypothesis.unexplained, 1);
    }

    #[test]
    fn score_with_lower_threshold_still_prefers_high_coverage() {
        let model = figure5_model();
        let hypothesis = score_localize(&model, 0.3);
        // With threshold 0.3, C3/F3 qualify and one of them is picked to cover
        // E6-E7 after F2 explains the rest.
        assert!(hypothesis.contains(filter(2)));
        assert!(hypothesis.contains(filter(3)) || hypothesis.contains(contract(3)));
        assert_eq!(hypothesis.unexplained, 0);
    }

    #[test]
    fn empty_signature_yields_empty_hypothesis() {
        let mut m: RiskModel<EpgPair> = RiskModel::new();
        m.add_edge(pair(1, 2), filter(1));
        let log = ChangeLog::new();
        let h = scout_localize(&m, &log, ScoutConfig::default());
        assert!(h.is_empty());
        assert_eq!(h.observations, 0);
        let s = score_localize(&m, 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn scout_without_change_log_leaves_partial_faults_unexplained() {
        let model = figure5_model();
        let empty_log = ChangeLog::new();
        let h = scout_localize(&model, &empty_log, ScoutConfig::default());
        assert_eq!(h.objects(), BTreeSet::from([filter(2)]));
        assert_eq!(h.unexplained, 1);
    }

    #[test]
    fn scout_respects_recent_window() {
        let model = figure5_model();
        let mut log = figure5_change_log();
        // C3 was also touched, but well before F3's recent modification.
        log.record(
            Timestamp::new(20),
            contract(3),
            ChangeAction::Modify,
            None,
            "old change",
        );
        // Tight window: only the most recent candidate (F3) qualifies.
        let tight = ScoutConfig {
            recent_window: Some(50),
        };
        let h = scout_localize(&model, &log, tight);
        assert_eq!(h.objects(), BTreeSet::from([filter(2), filter(3)]));
        // Wide window: C3's older change also falls inside and is reported.
        let wide = ScoutConfig {
            recent_window: Some(200),
        };
        let h = scout_localize(&model, &log, wide);
        assert_eq!(
            h.objects(),
            BTreeSet::from([filter(2), filter(3), contract(3)])
        );
        // `None` keeps only the strictly latest candidate.
        let strict = ScoutConfig {
            recent_window: None,
        };
        let h = scout_localize(&model, &log, strict);
        assert_eq!(h.objects(), BTreeSet::from([filter(2), filter(3)]));
    }

    #[test]
    fn scout_handles_multiple_simultaneous_full_faults() {
        // Two disjoint fully-failed risks must both be reported.
        let mut m: RiskModel<EpgPair> = RiskModel::new();
        for i in 0..4 {
            m.mark_failed(pair(i, i + 1), filter(1));
        }
        for i in 10..12 {
            m.mark_failed(pair(i, i + 1), filter(2));
        }
        // A broad risk shared by everything but with one healthy dependent.
        for i in 0..4 {
            m.add_edge(pair(i, i + 1), contract(9));
        }
        for i in 10..12 {
            m.add_edge(pair(i, i + 1), contract(9));
        }
        m.add_edge(pair(50, 51), contract(9));
        let log = ChangeLog::new();
        let h = scout_localize(&m, &log, ScoutConfig::default());
        assert_eq!(h.objects(), BTreeSet::from([filter(1), filter(2)]));
        assert_eq!(h.unexplained, 0);
    }

    #[test]
    fn tied_coverage_selects_all_tied_risks() {
        // Two risks each fully failed over the same single observation.
        let mut m: RiskModel<EpgPair> = RiskModel::new();
        m.mark_failed(pair(1, 2), filter(1));
        m.mark_failed(pair(1, 2), contract(1));
        let log = ChangeLog::new();
        let h = scout_localize(&m, &log, ScoutConfig::default());
        assert_eq!(h.objects(), BTreeSet::from([filter(1), contract(1)]));
    }

    #[test]
    fn hypothesis_accessors() {
        let model = figure5_model();
        let log = figure5_change_log();
        let h = scout_localize(&model, &log, ScoutConfig::default());
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert!(h.contains(filter(2)));
        assert!(!h.contains(contract(1)));
        assert_eq!(h.iter().count(), 2);
        assert_eq!(h.evidence(contract(1)), None);
    }

    #[test]
    fn score_threshold_zero_behaves_like_pure_set_cover() {
        let model = figure5_model();
        let h = score_localize(&model, 0.0);
        // Everything is a candidate; greedy cover explains all observations.
        assert_eq!(h.unexplained, 0);
        assert!(h.contains(filter(2)));
    }

    /// The historical formulation of the cover stage: clone the whole model
    /// and prune it in place. Kept here as the reference the projected
    /// (failure-subgraph) implementation must agree with bit for bit.
    fn reference_scout_localize<E: Ord + Copy>(
        model: &RiskModel<E>,
        change_log: &ChangeLog,
        config: ScoutConfig,
    ) -> Hypothesis {
        let signature = model.failure_signature();
        let mut hypothesis = Hypothesis {
            observations: signature.len(),
            ..Hypothesis::default()
        };
        if signature.is_empty() {
            return hypothesis;
        }
        let mut work = model.clone();
        let mut unexplained: BTreeSet<E> = signature;
        loop {
            if unexplained.is_empty() {
                break;
            }
            let candidates: BTreeSet<ObjectId> = unexplained
                .iter()
                .flat_map(|o| work.failed_risks_of(o))
                .collect();
            let hit_set: Vec<ObjectId> = candidates
                .into_iter()
                .filter(|&risk| {
                    let total = work.dependent_count(risk);
                    total > 0 && work.failed_dependent_count(risk) == total
                })
                .collect();
            if hit_set.is_empty() {
                break;
            }
            let best_coverage = hit_set
                .iter()
                .map(|&risk| work.failed_dependent_count(risk))
                .max()
                .unwrap_or(0);
            if best_coverage == 0 {
                break;
            }
            let faulty_set: Vec<ObjectId> = hit_set
                .into_iter()
                .filter(|&risk| work.failed_dependent_count(risk) == best_coverage)
                .collect();
            let mut affected: BTreeSet<E> = BTreeSet::new();
            for &risk in &faulty_set {
                affected.extend(work.dependents_of(risk));
            }
            let newly_explained = unexplained.iter().filter(|o| affected.contains(o)).count();
            hypothesis.explained_by_cover += newly_explained;
            unexplained.retain(|o| !affected.contains(o));
            work.prune_elements(&affected);
            for risk in faulty_set {
                hypothesis.insert(risk, Evidence::FullCover);
            }
        }
        let mut still_unexplained = 0usize;
        if !unexplained.is_empty() {
            for observation in &unexplained {
                let failed_risks = model.failed_risks_of(observation);
                let recent = most_recent_changes(&failed_risks, change_log, config.recent_window);
                if recent.is_empty() {
                    still_unexplained += 1;
                } else {
                    hypothesis.explained_by_changelog += 1;
                    for (object, changed_at) in recent {
                        hypothesis.insert(object, Evidence::RecentChange { changed_at });
                    }
                }
            }
        }
        hypothesis.unexplained = still_unexplained;
        hypothesis
    }

    /// The projected cover stage must agree with the full-clone reference on
    /// random bipartite models with mixed healthy/failed edges.
    #[test]
    fn projected_localize_matches_full_clone_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model: RiskModel<EpgPair> = RiskModel::new();
            let elements = rng.gen_range(1usize..14);
            for i in 0..elements {
                let e = pair(i as u32 * 2, i as u32 * 2 + 1);
                model.add_element(e);
                for _ in 0..rng.gen_range(0usize..6) {
                    let risk = if rng.gen_bool(0.5) {
                        filter(rng.gen_range(0u32..9))
                    } else {
                        contract(rng.gen_range(0u32..9))
                    };
                    if rng.gen_bool(0.4) {
                        model.mark_failed(e, risk);
                    } else {
                        model.add_edge(e, risk);
                    }
                }
            }
            let mut log = ChangeLog::new();
            for i in 0..rng.gen_range(0usize..6) {
                let obj = if rng.gen_bool(0.5) {
                    filter(rng.gen_range(0u32..9))
                } else {
                    contract(rng.gen_range(0u32..9))
                };
                log.record(
                    Timestamp::new(i as u64 * 7 + 1),
                    obj,
                    ChangeAction::Modify,
                    None,
                    "random change",
                );
            }
            let config = ScoutConfig::default();
            assert_eq!(
                scout_localize(&model, &log, config),
                reference_scout_localize(&model, &log, config),
                "seed {seed}"
            );
        }
    }
}
