//! The end-to-end SCOUT system (Figure 6 of the paper).
//!
//! [`ScoutSystem`] chains the four components together:
//!
//! 1. the L–T equivalence checker produces the missing rules,
//! 2. the controller risk model is built from the policy and augmented with
//!    the missing rules,
//! 3. the SCOUT localization algorithm produces the hypothesis (faulty policy
//!    objects), and
//! 4. the event correlation engine maps the hypothesis to physical-level root
//!    causes using the change and fault logs.

use std::collections::{BTreeMap, BTreeSet};

use scout_equiv::{EquivalenceChecker, NetworkCheckResult, SwitchCheckResult};
use scout_fabric::{ChangeLog, Fabric, FaultLog};
use scout_policy::{LogicalRule, ObjectId, PolicyUniverse, SwitchEpgPair, SwitchId, TcamRule};

use crate::correlation::{CorrelationEngine, CorrelationReport};
use crate::localization::{scout_localize, Hypothesis, ScoutConfig};
use crate::risk::{
    augment_controller_model, augment_controller_model_tracked, augment_switch_model,
    controller_risk_model, switch_risk_model, RiskModel,
};

/// Configuration of the end-to-end system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemConfig {
    /// Configuration forwarded to the SCOUT localization algorithm.
    pub scout: ScoutConfig,
}

/// The complete output of one end-to-end analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoutReport {
    /// The per-switch equivalence check results.
    pub check: NetworkCheckResult,
    /// The observations: `(switch, EPG pair)` triplets with missing rules.
    pub observations: BTreeSet<SwitchEpgPair>,
    /// Every object the failed elements depend on — what an admin would have
    /// to examine without fault localization.
    pub suspect_objects: BTreeSet<ObjectId>,
    /// The localization output: the suspected faulty objects.
    pub hypothesis: Hypothesis,
    /// Physical-level root causes per hypothesis object.
    pub diagnosis: CorrelationReport,
}

impl ScoutReport {
    /// `true` if the deployed state matches the policy everywhere.
    pub fn is_consistent(&self) -> bool {
        self.check.is_consistent()
    }

    /// Total number of missing rules across the network.
    pub fn missing_rule_count(&self) -> usize {
        self.check.missing_count()
    }

    /// The suspect-set reduction ratio γ = |hypothesis| / |suspect objects|
    /// (§VI of the paper). Returns 0 when there is nothing to suspect.
    pub fn gamma(&self) -> f64 {
        if self.suspect_objects.is_empty() {
            0.0
        } else {
            self.hypothesis.len() as f64 / self.suspect_objects.len() as f64
        }
    }
}

/// The end-to-end SCOUT system.
///
/// # Example
///
/// ```
/// use scout_core::ScoutSystem;
/// use scout_fabric::Fabric;
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// // Drop the port-700 rules from S2 behind the controller's back.
/// fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
///
/// let system = ScoutSystem::new();
/// let report = system.analyze_fabric(&fabric);
/// assert!(!report.is_consistent());
/// assert!(report.hypothesis.len() <= report.suspect_objects.len());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoutSystem {
    checker: EquivalenceChecker,
    correlation: CorrelationEngine,
    config: SystemConfig,
    /// Cached equivalence check for incremental re-analysis, keyed by fabric
    /// identity and epoch (see [`ScoutSystem::analyze_fabric_incremental`]).
    cache: Option<CheckCache>,
    /// Cached pristine controller risk model, keyed by the fabric's policy
    /// universe version (see [`ScoutSystem::analyze_fabric_incremental`]):
    /// as long as the policy is unchanged, each run only applies (and rolls
    /// back) the failed edges of the current check instead of rebuilding the
    /// bipartite graph.
    model_cache: Option<ModelCache>,
}

/// The state [`ScoutSystem::analyze_fabric_incremental`] carries between runs.
#[derive(Debug, Clone)]
struct CheckCache {
    fabric_id: u64,
    epoch: u64,
    check: NetworkCheckResult,
}

/// The cached pristine (un-augmented) controller risk model.
#[derive(Debug, Clone)]
struct ModelCache {
    universe_version: u64,
    model: RiskModel<SwitchEpgPair>,
}

/// A reusable snapshot of a reference fabric: its full equivalence check plus
/// its pristine controller risk model.
///
/// Produced by [`ScoutSystem::baseline`] and consumed by
/// [`ScoutSystem::analyze_derived`]; clone one per worker thread for parallel
/// campaigns (the snapshot is immutable apart from the transient augmentation
/// journal, which is always rolled back before returning).
#[derive(Debug, Clone)]
pub struct FabricBaseline {
    fabric_id: u64,
    universe_version: u64,
    epoch: u64,
    check: NetworkCheckResult,
    model: RiskModel<SwitchEpgPair>,
}

impl FabricBaseline {
    /// The id of the snapshotted fabric.
    pub fn fabric_id(&self) -> u64 {
        self.fabric_id
    }

    /// The fabric epoch at snapshot time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshotted equivalence check.
    pub fn check(&self) -> &NetworkCheckResult {
        &self.check
    }

    /// `true` if the snapshotted fabric was consistent with its policy.
    pub fn is_consistent(&self) -> bool {
        self.check.is_consistent()
    }

    /// Returns `true` if this baseline's check can be reused incrementally
    /// for `fabric`: the fabric is the snapshotted one itself, or a clone
    /// taken from it at or after the snapshot epoch (every divergence then
    /// shows up in [`Fabric::dirty_switches_since`] relative to that epoch).
    pub fn covers(&self, fabric: &Fabric) -> bool {
        fabric.id() == self.fabric_id
            || (fabric.parent_id() == Some(self.fabric_id)
                && fabric.parent_epoch().is_some_and(|e| e >= self.epoch))
    }

    /// Runs `f` against the controller risk model augmented with the missing
    /// rules of `check`, re-deriving only the failed edges when the fabric
    /// still holds the snapshotted policy (and rebuilding the model from the
    /// fabric's universe otherwise). The cached model is always restored to
    /// its pristine state before returning.
    pub fn with_augmented_model<T>(
        &mut self,
        fabric: &Fabric,
        check: &NetworkCheckResult,
        f: impl FnOnce(&RiskModel<SwitchEpgPair>) -> T,
    ) -> T {
        if fabric.universe_version() == self.universe_version {
            let marks = augment_controller_model_tracked(&mut self.model, check.missing_rules());
            let out = f(&self.model);
            self.model.undo_failures(marks);
            out
        } else {
            let mut model = controller_risk_model(fabric.universe());
            augment_controller_model(&mut model, check.missing_rules());
            f(&model)
        }
    }
}

impl ScoutSystem {
    /// Creates a system with the default configuration and the standard fault
    /// signature library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a system with an explicit configuration.
    pub fn with_config(config: SystemConfig) -> Self {
        Self {
            checker: EquivalenceChecker::new(),
            correlation: CorrelationEngine::new(),
            config,
            cache: None,
            model_cache: None,
        }
    }

    /// Creates a system with a custom correlation engine (e.g. an extended
    /// signature library).
    pub fn with_correlation(config: SystemConfig, correlation: CorrelationEngine) -> Self {
        Self {
            checker: EquivalenceChecker::new(),
            correlation,
            config,
            cache: None,
            model_cache: None,
        }
    }

    /// Convenience entry point: analyzes a simulated [`Fabric`] directly.
    pub fn analyze_fabric(&self, fabric: &Fabric) -> ScoutReport {
        self.analyze(
            fabric.universe(),
            fabric.logical_rules(),
            &fabric.collect_tcam(),
            fabric.change_log(),
            fabric.fault_log(),
        )
    }

    /// Analyzes a fabric *incrementally*: only the switches whose TCAM or
    /// logical rule set changed since this system's previous call are
    /// re-checked; clean switches reuse the cached result.
    ///
    /// The check cache is keyed on [`Fabric::id`] and [`Fabric::epoch`], so
    /// the first call for a given fabric (or a fabric clone, which gets a
    /// fresh id) falls back to a full check transparently. The controller
    /// risk model is cached too, keyed on [`Fabric::universe_version`]: while
    /// the policy is unchanged, each run re-derives only the failed edges of
    /// the current check (and rolls them back afterwards) instead of
    /// rebuilding the bipartite graph. The produced report is identical to
    /// [`ScoutSystem::analyze_fabric`]; only the cost differs — proportional
    /// to the change, not the network or the policy universe.
    pub fn analyze_fabric_incremental(&mut self, fabric: &Fabric) -> ScoutReport {
        let check = match &self.cache {
            Some(cache) if cache.fabric_id == fabric.id() => {
                // Warm path: fetch TCAM snapshots only for re-checked
                // switches, so a cycle with k dirty switches copies k
                // switches' rules — zero for a no-change cycle.
                let dirty = fabric.dirty_switches_since(cache.epoch);
                let current: BTreeSet<SwitchId> =
                    fabric.universe().switch_ids().into_iter().collect();
                self.checker.recheck_dirty_with(
                    &cache.check,
                    fabric.logical_rules(),
                    &current,
                    &dirty,
                    |s| fabric.tcam_rules(s),
                )
            }
            _ => self
                .checker
                .check_network(fabric.logical_rules(), &fabric.collect_tcam()),
        };
        self.cache = Some(CheckCache {
            fabric_id: fabric.id(),
            epoch: fabric.epoch(),
            check: check.clone(),
        });

        // Risk-model maintenance: reuse the pristine controller model while
        // the policy universe is unchanged.
        let version = fabric.universe_version();
        let mut cached = match self.model_cache.take() {
            Some(cached) if cached.universe_version == version => cached,
            _ => ModelCache {
                universe_version: version,
                model: controller_risk_model(fabric.universe()),
            },
        };
        let marks = augment_controller_model_tracked(&mut cached.model, check.missing_rules());
        let report = self.report_from_model(
            check,
            &cached.model,
            fabric.universe(),
            fabric.change_log(),
            fabric.fault_log(),
        );
        cached.model.undo_failures(marks);
        self.model_cache = Some(cached);
        report
    }

    /// Runs the full pipeline from the four raw artifacts: the policy
    /// (universe), the logical rules, the collected TCAM rules, and the two
    /// logs.
    pub fn analyze(
        &self,
        universe: &PolicyUniverse,
        logical_rules: &[LogicalRule],
        tcam: &BTreeMap<SwitchId, Vec<TcamRule>>,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> ScoutReport {
        let check = self.checker.check_network(logical_rules, tcam);
        self.report_from_check(check, universe, change_log, fault_log)
    }

    /// Builds the localization/diagnosis stages of a report from an
    /// already-computed equivalence check.
    fn report_from_check(
        &self,
        check: NetworkCheckResult,
        universe: &PolicyUniverse,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> ScoutReport {
        let mut model = controller_risk_model(universe);
        augment_controller_model(&mut model, check.missing_rules());
        self.report_from_model(check, &model, universe, change_log, fault_log)
    }

    /// Builds the localization/diagnosis stages of a report from an equivalence
    /// check and an *already augmented* controller risk model.
    fn report_from_model(
        &self,
        check: NetworkCheckResult,
        model: &RiskModel<SwitchEpgPair>,
        universe: &PolicyUniverse,
        change_log: &ChangeLog,
        fault_log: &FaultLog,
    ) -> ScoutReport {
        let observations = model.failure_signature();
        let suspect_objects = model.suspect_set(&observations);

        let hypothesis = scout_localize(model, change_log, self.config.scout);
        let diagnosis = self
            .correlation
            .correlate(&hypothesis, universe, change_log, fault_log);

        ScoutReport {
            check,
            observations,
            suspect_objects,
            hypothesis,
            diagnosis,
        }
    }

    /// Snapshots a reference fabric for repeated derived analyses: the full
    /// equivalence check plus the pristine controller risk model.
    ///
    /// A baseline is the unit of reuse of the campaign engine: snapshot a
    /// healthy deployed fabric once, then call
    /// [`ScoutSystem::analyze_derived`] for every mutated clone — each
    /// analysis re-checks only the switches the clone actually touched and
    /// re-derives only the failed edges of its check, instead of rebuilding
    /// the world per scenario.
    pub fn baseline(&self, fabric: &Fabric) -> FabricBaseline {
        FabricBaseline {
            fabric_id: fabric.id(),
            universe_version: fabric.universe_version(),
            epoch: fabric.epoch(),
            check: self
                .checker
                .check_network(fabric.logical_rules(), &fabric.collect_tcam()),
            model: controller_risk_model(fabric.universe()),
        }
    }

    /// Analyzes a fabric against a [`FabricBaseline`], reusing the baseline's
    /// check for clean switches and its pristine risk model for localization.
    ///
    /// The produced report is bit-identical to
    /// [`ScoutSystem::analyze_fabric`] on the same fabric. The fast paths
    /// engage when the fabric is the baselined fabric itself or a clone taken
    /// from it at or after the snapshot (see [`FabricBaseline::covers`]) and,
    /// for the risk model, when the policy universe is unchanged; otherwise
    /// the method transparently falls back to the from-scratch pipeline for
    /// the affected stage.
    pub fn analyze_derived(&self, baseline: &mut FabricBaseline, fabric: &Fabric) -> ScoutReport {
        self.analyze_derived_with(baseline, fabric, |_| ()).0
    }

    /// Like [`ScoutSystem::analyze_derived`], but additionally runs `extra`
    /// against the same augmented controller risk model — e.g. a baseline
    /// algorithm being compared on identical evidence — so the model is
    /// augmented (and rolled back) once per analysis instead of once per
    /// consumer.
    pub fn analyze_derived_with<T>(
        &self,
        baseline: &mut FabricBaseline,
        fabric: &Fabric,
        extra: impl FnOnce(&RiskModel<SwitchEpgPair>) -> T,
    ) -> (ScoutReport, T) {
        let check = if baseline.covers(fabric) {
            let dirty = fabric.dirty_switches_since(baseline.epoch);
            let current: BTreeSet<SwitchId> = fabric.universe().switch_ids().into_iter().collect();
            self.checker.recheck_dirty_with(
                &baseline.check,
                fabric.logical_rules(),
                &current,
                &dirty,
                |s| fabric.tcam_rules(s),
            )
        } else {
            self.checker
                .check_network(fabric.logical_rules(), &fabric.collect_tcam())
        };
        let (observations, suspect_objects, hypothesis, diagnosis, extra_out) = baseline
            .with_augmented_model(fabric, &check, |model| {
                let observations = model.failure_signature();
                let suspect_objects = model.suspect_set(&observations);
                let hypothesis = scout_localize(model, fabric.change_log(), self.config.scout);
                let diagnosis = self.correlation.correlate(
                    &hypothesis,
                    fabric.universe(),
                    fabric.change_log(),
                    fabric.fault_log(),
                );
                (
                    observations,
                    suspect_objects,
                    hypothesis,
                    diagnosis,
                    extra(model),
                )
            });
        (
            ScoutReport {
                check,
                observations,
                suspect_objects,
                hypothesis,
                diagnosis,
            },
            extra_out,
        )
    }

    /// Runs the equivalence check and localization against the *switch risk
    /// model* of a single switch, as an admin debugging one device would.
    pub fn analyze_switch(
        &self,
        universe: &PolicyUniverse,
        switch: SwitchId,
        logical_rules: &[LogicalRule],
        tcam: &[TcamRule],
        change_log: &ChangeLog,
    ) -> (
        SwitchCheckResult,
        RiskModel<scout_policy::EpgPair>,
        Hypothesis,
    ) {
        let check = self.checker.check_switch(switch, logical_rules, tcam);
        let mut model = switch_risk_model(universe, switch);
        augment_switch_model(&mut model, switch, check.missing_rules.iter().copied());
        let hypothesis = scout_localize(&model, change_log, self.config.scout);
        (check, model, hypothesis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_fabric::FaultKind;
    use scout_policy::{sample, EpgPair};

    #[test]
    fn consistent_network_produces_empty_report() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let system = ScoutSystem::new();
        let report = system.analyze_fabric(&fabric);
        assert!(report.is_consistent());
        assert_eq!(report.missing_rule_count(), 0);
        assert!(report.observations.is_empty());
        assert!(report.hypothesis.is_empty());
        assert_eq!(report.gamma(), 0.0);
        assert!(report.diagnosis.diagnoses().is_empty());
    }

    #[test]
    fn filter_fault_is_localized_and_gamma_is_small() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        // Drop every rule derived from the port-700 filter, on every switch.
        for switch in [sample::S2, sample::S3] {
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let system = ScoutSystem::new();
        let report = system.analyze_fabric(&fabric);
        assert!(!report.is_consistent());
        assert_eq!(report.missing_rule_count(), 4);
        // The App-DB pair on S2 and S3 is observed as failed.
        assert_eq!(report.observations.len(), 2);
        assert!(report.hypothesis.contains(ObjectId::Filter(sample::F_700)));
        // Hypothesis is much smaller than the suspect set.
        assert!(report.hypothesis.len() < report.suspect_objects.len());
        assert!(report.gamma() > 0.0 && report.gamma() < 1.0);
    }

    #[test]
    fn unresponsive_switch_story_matches_paper_use_case() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        let system = ScoutSystem::new();
        let report = system.analyze_fabric(&fabric);
        assert!(!report.is_consistent());
        // The switch itself is the most economical explanation.
        assert!(report.hypothesis.contains(ObjectId::Switch(sample::S2)));
        // And the correlation engine ties it to the unreachable-switch fault.
        let by_kind = report.diagnosis.causes_by_kind();
        assert!(by_kind.contains_key(&FaultKind::SwitchUnreachable));
    }

    #[test]
    fn analyze_switch_uses_the_switch_risk_model() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |r| {
            r.pair() == EpgPair::new(sample::WEB, sample::APP)
        });
        let system = ScoutSystem::new();
        let (check, model, hypothesis) = system.analyze_switch(
            fabric.universe(),
            sample::S2,
            fabric.logical_rules(),
            &fabric.tcam_rules(sample::S2),
            fabric.change_log(),
        );
        assert!(!check.equivalent);
        assert_eq!(model.element_count(), 2);
        // Per Figure 4(a): EPG:Web and Contract:Web-App explain the failure.
        assert!(hypothesis.contains(ObjectId::Epg(sample::WEB)));
        assert!(hypothesis.contains(ObjectId::Contract(sample::C_WEB_APP)));
        assert!(!hypothesis.contains(ObjectId::Vrf(sample::VRF)));
        assert!(!hypothesis.contains(ObjectId::Epg(sample::APP)));
    }

    #[test]
    fn incremental_analysis_matches_full_analysis() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let mut system = ScoutSystem::new();

        // Warm run on the healthy fabric.
        let warm = system.analyze_fabric_incremental(&fabric);
        assert!(warm.is_consistent());

        // Mutate one switch; the incremental report must match a full one.
        for switch in [sample::S2, sample::S3] {
            fabric.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let incremental = system.analyze_fabric_incremental(&fabric);
        let full = ScoutSystem::new().analyze_fabric(&fabric);
        assert_eq!(incremental, full);
        assert!(incremental
            .hypothesis
            .contains(ObjectId::Filter(sample::F_700)));

        // A further no-op round trips the cache (nothing dirty).
        let again = system.analyze_fabric_incremental(&fabric);
        assert_eq!(again, full);
    }

    #[test]
    fn incremental_analysis_survives_fabric_swap() {
        let mut a = Fabric::new(sample::three_tier());
        a.deploy();
        let mut b = a.clone();
        b.remove_tcam_rules_where(sample::S2, |_| true);

        let mut system = ScoutSystem::new();
        let _ = system.analyze_fabric_incremental(&a);
        // Switching to a different fabric (fresh id) must not reuse a's cache.
        let report_b = system.analyze_fabric_incremental(&b);
        assert_eq!(report_b, ScoutSystem::new().analyze_fabric(&b));
        assert!(!report_b.is_consistent());
    }

    #[test]
    fn derived_analysis_matches_full_analysis() {
        let mut base = Fabric::new(sample::three_tier());
        base.deploy();
        let system = ScoutSystem::new();
        let mut baseline = system.baseline(&base);
        assert!(baseline.is_consistent());
        assert_eq!(baseline.fabric_id(), base.id());
        assert_eq!(baseline.check().missing_count(), 0);

        // A mutated clone: only S2/S3 are dirty relative to the baseline.
        let mut clone = base.clone();
        assert!(baseline.covers(&clone));
        for switch in [sample::S2, sample::S3] {
            clone.remove_tcam_rules_where(switch, |r| r.matcher.ports.start == 700);
        }
        let derived = system.analyze_derived(&mut baseline, &clone);
        let full = ScoutSystem::new().analyze_fabric(&clone);
        assert_eq!(derived, full);
        assert!(derived.hypothesis.contains(ObjectId::Filter(sample::F_700)));

        // The baseline stays reusable: a second, different clone agrees too.
        let mut other = base.clone();
        other.disconnect_switch(sample::S2);
        other.remove_tcam_rules_where(sample::S2, |_| true);
        let derived = system.analyze_derived(&mut baseline, &other);
        assert_eq!(derived, ScoutSystem::new().analyze_fabric(&other));
    }

    #[test]
    fn derived_analysis_survives_policy_updates() {
        use scout_policy::{Contract, Filter, FilterEntry, FilterId, PortRange, Protocol};
        let mut base = Fabric::new(sample::three_tier());
        base.deploy();
        let system = ScoutSystem::new();
        let mut baseline = system.baseline(&base);

        // The clone's policy diverges: the risk-model fast path must yield to
        // a from-scratch model while the check stays incremental.
        let mut clone = base.clone();
        let universe = clone.universe();
        let mut b = scout_policy::PolicyUniverse::builder();
        for t in universe.tenants() {
            b.tenant(t.clone());
        }
        for v in universe.vrfs() {
            b.vrf(v.clone());
        }
        for e in universe.epgs() {
            b.epg(e.clone());
        }
        for s in universe.switches() {
            b.switch(s.clone());
        }
        for ep in universe.endpoints() {
            b.endpoint(ep.clone());
        }
        for f in universe.filters() {
            b.filter(f.clone());
        }
        b.filter(Filter::new(
            FilterId::new(60),
            "port-9443",
            vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(9443))],
        ));
        for c in universe.contracts() {
            if c.id == sample::C_APP_DB {
                let mut filters = c.filters.clone();
                filters.push(FilterId::new(60));
                b.contract(Contract::new(c.id, c.name.clone(), filters));
            } else {
                b.contract(c.clone());
            }
        }
        for binding in universe.bindings() {
            b.bind(*binding);
        }
        let updated = b.build().unwrap();

        clone.disconnect_switch(sample::S3);
        clone.update_policy(updated);
        let derived = system.analyze_derived(&mut baseline, &clone);
        let full = ScoutSystem::new().analyze_fabric(&clone);
        assert_eq!(derived, full);
        assert!(!derived.is_consistent());
    }

    #[test]
    fn baseline_does_not_cover_stale_clones() {
        let mut base = Fabric::new(sample::three_tier());
        base.deploy();
        let system = ScoutSystem::new();

        // Clone first, snapshot later: the clone misses the post-clone
        // mutation, so the baseline must refuse the incremental path…
        let stale = base.clone();
        base.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let mut baseline = system.baseline(&base);
        assert!(!baseline.covers(&stale));
        // …and still produce the correct (full-check) report for it.
        let report = system.analyze_derived(&mut baseline, &stale);
        assert_eq!(report, ScoutSystem::new().analyze_fabric(&stale));
        assert!(report.is_consistent());
    }

    #[test]
    fn report_accessors_are_consistent() {
        let mut fabric = Fabric::new(sample::three_tier_with_capacity(3));
        fabric.deploy();
        let system = ScoutSystem::with_config(SystemConfig::default());
        let report = system.analyze_fabric(&fabric);
        assert_eq!(report.missing_rule_count(), report.check.missing_count());
        assert_eq!(report.diagnosis.diagnoses().len(), report.hypothesis.len());
        assert!(report.gamma() <= 1.0);
    }
}
