//! Typed fabric telemetry: the event stream a continuously-running monitor
//! ingests instead of whole-fabric snapshots.
//!
//! The paper describes SCOUT as a *service*: the controller streams policy
//! changes into it and switches stream their TCAM and fault state, while the
//! monitor keeps its own view of the deployment current. This module models
//! that stream:
//!
//! * [`FabricEvent`] — one typed delta: a policy-universe installation (which
//!   also carries switch churn, since switches are universe objects), a TCAM
//!   snapshot collected from one switch, appended controller change-log
//!   entries, or raised/cleared device fault-log entries.
//! * [`EventBatch`] — the unit of ingestion: the events of one epoch, with an
//!   explicit epoch number so consumers can enforce ordered, gap-free
//!   delivery.
//! * [`FabricView`] — the monitor-side mirror: exactly the five artifacts an
//!   analysis consumes (universe, compiled logical rules, per-switch TCAM,
//!   change log, fault log), kept current by [`FabricView::apply`].
//! * [`FabricProbe`] — the telemetry source for a simulated [`Fabric`]: it
//!   remembers what was last observed and diffs the live fabric into the
//!   minimal event batch ([`FabricProbe::observe`]).
//! * [`FullSync`] — the recovery payload: a complete snapshot of the fabric's
//!   artifacts, produced by [`FabricProbe::full_resync`] when a consumer
//!   reports lost deltas and delta repair is impossible (an append-only log
//!   stream cannot re-express entries whose delivery window has passed).
//!
//! The contract tying these together: a view kept current with a probe's
//! observations holds artifacts bit-identical to the observed fabric's, so an
//! analysis of the view is bit-identical to an analysis of the fabric. When
//! batches are lost in transit the probe's cursors have still advanced, so the
//! stream alone can never catch the consumer up again — recovery goes through
//! [`FabricProbe::full_resync`], after which the incremental contract holds
//! from the resync point onward.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use scout_policy::{LogicalRule, PolicyUniverse, SwitchId, TcamRule};

use crate::clock::Timestamp;
use crate::compiler;
use crate::fabric::Fabric;
use crate::logs::{ChangeLog, ChangeLogEntry, FaultLog, FaultLogEntry};

/// One typed delta of the fabric-telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricEvent {
    /// The controller installed a new policy universe (edits, and switch
    /// churn — switches joining or leaving are universe changes). `version`
    /// is the controller's universe version (see
    /// [`Fabric::universe_version`]); consumers key policy-derived caches on
    /// it.
    PolicyUpdate {
        /// The new policy-universe version.
        version: u64,
        /// The new policy universe (boxed: a universe with its dependency
        /// indexes dwarfs every other event variant).
        universe: Box<PolicyUniverse>,
    },
    /// Telemetry from one switch: the full TCAM contents as collected. Sent
    /// for every switch whose deployed state may have changed since the last
    /// batch.
    TcamSync {
        /// The reporting switch.
        switch: SwitchId,
        /// Its complete TCAM contents, in table order.
        rules: Vec<TcamRule>,
    },
    /// Controller change-log entries appended since the last batch, in log
    /// order.
    ChangeEvents(Vec<ChangeLogEntry>),
    /// Device/controller fault-log activity since the last batch.
    FaultEvents {
        /// Entries appended since the last batch (carried verbatim; an entry
        /// both raised and cleared between batches arrives pre-cleared).
        raised: Vec<FaultLogEntry>,
        /// `(index, time)` pairs for previously-delivered entries that have
        /// since been cleared.
        cleared: Vec<(usize, Timestamp)>,
    },
}

impl FabricEvent {
    /// Constructs a deliberately *torn* [`FabricEvent::TcamSync`] for
    /// `switch`: the first `fresh` entries come from `current` (the live
    /// table) and the remainder from `stale` (an earlier read of the same
    /// table) — the inconsistent snapshot a real poller takes when it walks a
    /// TCAM page by page while an update lands mid-read.
    ///
    /// The hostile-telemetry scenario suite uses this to feed a monitor a
    /// mid-update read and verify the analysis settles once a clean re-read
    /// arrives; it has no role in faithful telemetry.
    pub fn torn_tcam_sync(
        switch: SwitchId,
        current: &[TcamRule],
        stale: &[TcamRule],
        fresh: usize,
    ) -> Self {
        if fresh >= current.len() {
            // The update landed before the walk reached it: a clean read.
            return FabricEvent::TcamSync {
                switch,
                rules: current.to_vec(),
            };
        }
        let mut rules: Vec<TcamRule> = current[..fresh].to_vec();
        if stale.len() > fresh {
            rules.extend_from_slice(&stale[fresh..]);
        }
        FabricEvent::TcamSync { switch, rules }
    }
}

/// The events of one epoch, with an explicit epoch number.
///
/// Epoch numbers exist so a consumer can enforce ordered, gap-free delivery:
/// a delta stream is only meaningful if every batch is applied exactly once,
/// in order.
///
/// # Example
///
/// ```
/// use scout_fabric::{EventBatch, FabricEvent};
/// use scout_policy::sample;
///
/// let heartbeat = EventBatch::empty(1);
/// assert!(heartbeat.is_empty());
///
/// let batch = EventBatch::new(
///     2,
///     vec![FabricEvent::TcamSync {
///         switch: sample::S1,
///         rules: Vec::new(),
///     }],
/// );
/// assert_eq!(batch.epoch, 2);
/// assert_eq!(batch.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventBatch {
    /// The epoch this batch advances the consumer to.
    pub epoch: u64,
    /// The typed deltas of the epoch, in application order.
    pub events: Vec<FabricEvent>,
}

impl EventBatch {
    /// A batch of `events` for `epoch`.
    pub fn new(epoch: u64, events: Vec<FabricEvent>) -> Self {
        Self { epoch, events }
    }

    /// An empty batch for `epoch` — a heartbeat: nothing changed.
    pub fn empty(epoch: u64) -> Self {
        Self::new(epoch, Vec::new())
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Why an event could not be applied to a [`FabricView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A [`FabricEvent::TcamSync`] referenced a switch the current policy
    /// universe does not contain.
    UnknownSwitch(SwitchId),
    /// A [`FabricEvent::FaultEvents`] clear referenced an entry index beyond
    /// the mirrored fault log.
    FaultIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The mirrored log's length at that point of the batch.
        len: usize,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::UnknownSwitch(switch) => {
                write!(f, "event references unknown switch {switch}")
            }
            ApplyError::FaultIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "fault clear index {index} out of range (log has {len} entries)"
                )
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// The monitor-side mirror of a fabric: the five artifacts an analysis
/// consumes, kept current by applying [`FabricEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricView {
    universe_version: u64,
    universe: PolicyUniverse,
    /// Switch ids of `universe`, cached for O(log n) membership checks.
    switches: BTreeSet<SwitchId>,
    logical_rules: Vec<LogicalRule>,
    tcam: BTreeMap<SwitchId, Vec<TcamRule>>,
    change_log: ChangeLog,
    fault_log: FaultLog,
}

impl FabricView {
    /// Snapshots `fabric` into a view (the session-open path: full state once,
    /// deltas thereafter).
    pub fn of(fabric: &Fabric) -> Self {
        Self {
            universe_version: fabric.universe_version(),
            universe: fabric.universe().clone(),
            switches: fabric.universe().switch_ids().into_iter().collect(),
            logical_rules: fabric.logical_rules().to_vec(),
            tcam: fabric.collect_tcam(),
            change_log: fabric.change_log().clone(),
            fault_log: fabric.fault_log().clone(),
        }
    }

    /// Rebuilds a view from its primary artifacts (the wire-decode path).
    ///
    /// The switch set and compiled logical rules are derived from the
    /// universe, exactly as [`FabricView::apply`] derives them on a policy
    /// update, so a view decoded from an encoded one compares equal to it.
    pub(crate) fn from_parts(
        universe_version: u64,
        universe: PolicyUniverse,
        tcam: BTreeMap<SwitchId, Vec<TcamRule>>,
        change_log: ChangeLog,
        fault_log: FaultLog,
    ) -> Self {
        Self {
            universe_version,
            switches: universe.switch_ids().into_iter().collect(),
            logical_rules: compiler::compile(&universe),
            universe,
            tcam,
            change_log,
            fault_log,
        }
    }

    /// The mirrored policy universe.
    pub fn universe(&self) -> &PolicyUniverse {
        &self.universe
    }

    /// The mirrored policy-universe version (see
    /// [`Fabric::universe_version`]).
    pub fn universe_version(&self) -> u64 {
        self.universe_version
    }

    /// The compiled logical rules of the mirrored universe.
    pub fn logical_rules(&self) -> &[LogicalRule] {
        &self.logical_rules
    }

    /// The switches of the mirrored universe.
    pub fn switch_set(&self) -> &BTreeSet<SwitchId> {
        &self.switches
    }

    /// The mirrored TCAM contents, keyed by switch.
    pub fn tcam(&self) -> &BTreeMap<SwitchId, Vec<TcamRule>> {
        &self.tcam
    }

    /// The mirrored TCAM contents of one switch (empty if never synced).
    pub fn tcam_of(&self, switch: SwitchId) -> Vec<TcamRule> {
        self.tcam.get(&switch).cloned().unwrap_or_default()
    }

    /// The mirrored controller change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// The mirrored device/controller fault log.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Returns `true` if the view's artifacts are bit-identical to `fabric`'s
    /// — the invariant a faithfully-delivered event stream maintains.
    pub fn matches(&self, fabric: &Fabric) -> bool {
        self.universe_version == fabric.universe_version()
            && self.universe == *fabric.universe()
            && self.logical_rules == fabric.logical_rules()
            && self.tcam == fabric.collect_tcam()
            && self.change_log == *fabric.change_log()
            && self.fault_log == *fabric.fault_log()
    }

    /// Checks that every event of `events` would apply cleanly, without
    /// mutating the view — the all-or-nothing guard: a consumer validates the
    /// whole batch first so a mid-batch error never leaves a half-applied
    /// mirror.
    pub fn validate(&self, events: &[FabricEvent]) -> Result<(), ApplyError> {
        let mut switches = self.switches.clone();
        let mut fault_len = self.fault_log.len();
        for event in events {
            match event {
                FabricEvent::PolicyUpdate { universe, .. } => {
                    switches = universe.switch_ids().into_iter().collect();
                }
                FabricEvent::TcamSync { switch, .. } => {
                    if !switches.contains(switch) {
                        return Err(ApplyError::UnknownSwitch(*switch));
                    }
                }
                FabricEvent::ChangeEvents(_) => {}
                FabricEvent::FaultEvents { raised, cleared } => {
                    fault_len += raised.len();
                    for &(index, _) in cleared {
                        if index >= fault_len {
                            return Err(ApplyError::FaultIndexOutOfRange {
                                index,
                                len: fault_len,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies one event and returns the switches whose checked state
    /// (expected rules or TCAM contents) it dirtied.
    ///
    /// Callers applying a batch should [`FabricView::validate`] it first;
    /// `apply` re-checks and fails on the same conditions, but by then earlier
    /// events of the batch have already mutated the view.
    pub fn apply(&mut self, event: &FabricEvent) -> Result<BTreeSet<SwitchId>, ApplyError> {
        let mut dirty = BTreeSet::new();
        match event {
            FabricEvent::PolicyUpdate { version, universe } => {
                let old_rules: BTreeSet<LogicalRule> = self.logical_rules.iter().copied().collect();
                let new_rules_vec = compiler::compile(universe);
                let new_rules: BTreeSet<LogicalRule> = new_rules_vec.iter().copied().collect();
                let new_switches: BTreeSet<SwitchId> = universe.switch_ids().into_iter().collect();
                // A switch needs re-checking iff its expected rule set
                // changed; switches that left the network drop out of the
                // current set instead.
                dirty = old_rules
                    .symmetric_difference(&new_rules)
                    .map(|r| r.switch)
                    .filter(|s| new_switches.contains(s))
                    .collect();
                self.tcam.retain(|s, _| new_switches.contains(s));
                for &switch in &new_switches {
                    self.tcam.entry(switch).or_default();
                }
                self.universe_version = *version;
                self.universe = (**universe).clone();
                self.switches = new_switches;
                self.logical_rules = new_rules_vec;
            }
            FabricEvent::TcamSync { switch, rules } => {
                if !self.switches.contains(switch) {
                    return Err(ApplyError::UnknownSwitch(*switch));
                }
                self.tcam.insert(*switch, rules.clone());
                dirty.insert(*switch);
            }
            FabricEvent::ChangeEvents(entries) => {
                for entry in entries {
                    self.change_log.push(entry.clone());
                }
            }
            FabricEvent::FaultEvents { raised, cleared } => {
                for entry in raised {
                    self.fault_log.push(entry.clone());
                }
                for &(index, t) in cleared {
                    if index >= self.fault_log.len() {
                        return Err(ApplyError::FaultIndexOutOfRange {
                            index,
                            len: self.fault_log.len(),
                        });
                    }
                    self.fault_log.clear(index, t);
                }
            }
        }
        Ok(dirty)
    }
}

/// A full-state synchronization: the complete set of artifacts a monitor
/// needs to rebuild its mirror from scratch.
///
/// Delta streams cannot recover from loss — a dropped [`EventBatch`] carried
/// log entries and TCAM diffs the probe's cursors have already moved past —
/// so a consumer that detects an epoch gap requests one of these instead
/// (see [`FabricProbe::full_resync`]). Conceptually it is "a fresh
/// [`FabricView::of`] snapshot shipped over the wire": applying it wholesale
/// restores the bit-identical-mirror invariant regardless of what was lost.
///
/// # Example
///
/// ```
/// use scout_fabric::{Fabric, FabricProbe, FabricView};
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let mut view = FabricView::of(&fabric);
/// let mut probe = FabricProbe::new(&fabric);
///
/// // A batch is produced but lost in transit: the view is now stale and no
/// // later delta can repair it.
/// fabric.evict_tcam(sample::S2, 1, true);
/// let _lost = probe.observe(&fabric);
/// assert!(!view.matches(&fabric));
///
/// // Full resync: replace the view wholesale and continue incrementally.
/// let sync = probe.full_resync(&fabric);
/// view = sync.into_view();
/// assert!(view.matches(&fabric));
/// assert!(probe.observe(&fabric).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FullSync {
    view: FabricView,
}

impl FullSync {
    /// Snapshots `fabric` into a full synchronization.
    pub fn of(fabric: &Fabric) -> Self {
        Self {
            view: FabricView::of(fabric),
        }
    }

    /// Wraps an already-built view as a full synchronization — the decode
    /// path of the wire codec, and the constructor a serving layer uses when
    /// the fresh read arrives from a remote probe rather than a local
    /// [`Fabric`].
    pub fn from_view(view: FabricView) -> Self {
        Self { view }
    }

    /// The snapshotted artifacts.
    pub fn view(&self) -> &FabricView {
        &self.view
    }

    /// Consumes the sync into the view a monitor installs as its new mirror.
    pub fn into_view(self) -> FabricView {
        self.view
    }
}

/// The telemetry source for a simulated [`Fabric`]: diffs the live fabric
/// against what was last observed into the minimal [`FabricEvent`] batch.
///
/// In production the controller and the switches *push* these deltas; in the
/// simulator the probe plays both roles by reading the fabric's epoch/dirty
/// tracking and log cursors.
///
/// # Example
///
/// ```
/// use scout_fabric::{Fabric, FabricProbe, FabricView};
/// use scout_policy::sample;
///
/// let mut fabric = Fabric::new(sample::three_tier());
/// fabric.deploy();
/// let mut view = FabricView::of(&fabric);
/// let mut probe = FabricProbe::new(&fabric);
///
/// // The fabric drifts; one observation catches the view up exactly.
/// fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
/// for event in probe.observe(&fabric) {
///     view.apply(&event).unwrap();
/// }
/// assert!(view.matches(&fabric));
/// // Nothing further changed: the next observation is empty.
/// assert!(probe.observe(&fabric).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FabricProbe {
    fabric_id: u64,
    epoch: u64,
    universe_version: u64,
    change_len: usize,
    /// Cleared-state of every fault entry at the last observation.
    fault_cleared: Vec<bool>,
}

impl FabricProbe {
    /// Creates a probe that considers the current state of `fabric` already
    /// observed (pair it with a [`FabricView::of`] snapshot taken at the same
    /// moment).
    pub fn new(fabric: &Fabric) -> Self {
        Self {
            fabric_id: fabric.id(),
            epoch: fabric.epoch(),
            universe_version: fabric.universe_version(),
            change_len: fabric.change_log().len(),
            fault_cleared: fabric
                .fault_log()
                .entries()
                .iter()
                .map(|e| e.cleared_at.is_some())
                .collect(),
        }
    }

    /// Diffs `fabric` against the last observation into an event batch and
    /// advances the observation cursors. Returns an empty vector when nothing
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if `fabric` is not the fabric the probe was created on (clones
    /// have fresh identities and their own histories).
    pub fn observe(&mut self, fabric: &Fabric) -> Vec<FabricEvent> {
        assert_eq!(
            fabric.id(),
            self.fabric_id,
            "a probe observes only the fabric it was created on"
        );
        let mut events = Vec::new();

        if fabric.universe_version() != self.universe_version {
            self.universe_version = fabric.universe_version();
            events.push(FabricEvent::PolicyUpdate {
                version: self.universe_version,
                universe: Box::new(fabric.universe().clone()),
            });
        }

        for switch in fabric.dirty_switches_since(self.epoch) {
            events.push(FabricEvent::TcamSync {
                switch,
                rules: fabric.tcam_rules(switch),
            });
        }
        self.epoch = fabric.epoch();

        let changes = fabric.change_log().entries();
        if changes.len() > self.change_len {
            events.push(FabricEvent::ChangeEvents(
                changes[self.change_len..].to_vec(),
            ));
            self.change_len = changes.len();
        }

        let faults = fabric.fault_log().entries();
        let mut raised = Vec::new();
        let mut cleared = Vec::new();
        for (index, entry) in faults.iter().enumerate() {
            if index >= self.fault_cleared.len() {
                raised.push(entry.clone());
            } else if !self.fault_cleared[index] {
                if let Some(t) = entry.cleared_at {
                    cleared.push((index, t));
                }
            }
        }
        self.fault_cleared = faults.iter().map(|e| e.cleared_at.is_some()).collect();
        if !raised.is_empty() || !cleared.is_empty() {
            events.push(FabricEvent::FaultEvents { raised, cleared });
        }

        events
    }

    /// Like [`FabricProbe::observe`], but packages the events as an
    /// [`EventBatch`] for `epoch` — and returns `None` when nothing changed,
    /// so an idle poll emits *no batch at all* rather than an empty
    /// heartbeat. A producer using this must only advance its batch counter
    /// when a batch is actually emitted, or consumers will see phantom gaps.
    ///
    /// # Panics
    ///
    /// Panics if `fabric` is not the fabric the probe was created on.
    pub fn observe_batch(&mut self, fabric: &Fabric, epoch: u64) -> Option<EventBatch> {
        let events = self.observe(fabric);
        if events.is_empty() {
            None
        } else {
            Some(EventBatch::new(epoch, events))
        }
    }

    /// Produces a [`FullSync`] of `fabric` and resets every observation
    /// cursor to its current state — the recovery path a consumer takes after
    /// detecting an epoch gap (lost deltas).
    ///
    /// After this call the probe behaves exactly like a freshly-created one:
    /// the next [`FabricProbe::observe`] diffs against the synced state, so
    /// the incremental contract holds from the resync point onward.
    ///
    /// # Panics
    ///
    /// Panics if `fabric` is not the fabric the probe was created on.
    pub fn full_resync(&mut self, fabric: &Fabric) -> FullSync {
        assert_eq!(
            fabric.id(),
            self.fabric_id,
            "a probe resyncs only the fabric it was created on"
        );
        self.epoch = fabric.epoch();
        self.universe_version = fabric.universe_version();
        self.change_len = fabric.change_log().len();
        self.fault_cleared = fabric
            .fault_log()
            .entries()
            .iter()
            .map(|e| e.cleared_at.is_some())
            .collect();
        FullSync::of(fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::diff_universes;
    use crate::logs::{ChangeAction, FaultKind};
    use crate::tcam::CorruptionKind;
    use scout_policy::sample;

    fn deployed() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    fn replay(view: &mut FabricView, probe: &mut FabricProbe, fabric: &Fabric) -> usize {
        let events = probe.observe(fabric);
        view.validate(&events).unwrap();
        let mut dirtied = BTreeSet::new();
        for event in &events {
            dirtied.extend(view.apply(event).unwrap());
        }
        dirtied.len()
    }

    #[test]
    fn view_snapshot_matches_the_fabric() {
        let fabric = deployed();
        let view = FabricView::of(&fabric);
        assert!(view.matches(&fabric));
        assert_eq!(view.logical_rules().len(), 12);
        assert_eq!(view.tcam_of(sample::S2).len(), 6);
        assert_eq!(view.tcam_of(SwitchId::new(999)).len(), 0);
        assert_eq!(view.switch_set().len(), 3);
    }

    #[test]
    fn probe_tracks_every_mutation_class() {
        let mut fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        // Silent TCAM loss, corruption, eviction.
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric
            .corrupt_tcam(sample::S1, 0, CorruptionKind::VrfBit)
            .unwrap();
        fabric.evict_tcam(sample::S3, 1, true);
        assert!(replay(&mut view, &mut probe, &fabric) >= 3);
        assert!(view.matches(&fabric));

        // Control-plane fault + repair.
        fabric.disconnect_switch(sample::S2);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
        assert_eq!(
            view.fault_log()
                .entries_of_kind(FaultKind::SwitchUnreachable)
                .len(),
            1
        );
        fabric.repair_switch(sample::S2);
        fabric.repair_switch(sample::S1);
        fabric.repair_switch(sample::S3);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
        assert!(view.fault_log().active_at(fabric.now()).is_empty());

        // Nothing changed: empty observation.
        assert!(probe.observe(&fabric).is_empty());
    }

    #[test]
    fn policy_update_recompiles_and_prunes_removed_switches() {
        use scout_policy::{Contract, Filter, FilterEntry, FilterId, PortRange, Protocol};
        let mut fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        // Grow the policy: the App-DB contract gains a port-8443 filter.
        let base = fabric.universe().clone();
        let mut b = PolicyUniverse::builder();
        for t in base.tenants() {
            b.tenant(t.clone());
        }
        for v in base.vrfs() {
            b.vrf(v.clone());
        }
        for e in base.epgs() {
            b.epg(e.clone());
        }
        for s in base.switches() {
            b.switch(s.clone());
        }
        for ep in base.endpoints() {
            b.endpoint(ep.clone());
        }
        for f in base.filters() {
            b.filter(f.clone());
        }
        b.filter(Filter::new(
            FilterId::new(50),
            "port-8443",
            vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(8443))],
        ));
        for c in base.contracts() {
            if c.id == sample::C_APP_DB {
                let mut filters = c.filters.clone();
                filters.push(FilterId::new(50));
                b.contract(Contract::new(c.id, c.name.clone(), filters));
            } else {
                b.contract(c.clone());
            }
        }
        for binding in base.bindings() {
            b.bind(*binding);
        }
        let grown = b.build().unwrap();
        assert!(!diff_universes(&base, &grown).is_empty());

        fabric.update_policy(grown);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
        assert!(view
            .change_log()
            .entries()
            .iter()
            .any(|e| e.action == ChangeAction::Modify));
    }

    #[test]
    fn unknown_switch_and_bad_fault_index_are_rejected() {
        let fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let stray = SwitchId::new(99);
        let bad_sync = FabricEvent::TcamSync {
            switch: stray,
            rules: Vec::new(),
        };
        assert_eq!(
            view.validate(std::slice::from_ref(&bad_sync)),
            Err(ApplyError::UnknownSwitch(stray))
        );
        let before = view.clone();
        assert_eq!(view.apply(&bad_sync), Err(ApplyError::UnknownSwitch(stray)));
        assert_eq!(view, before, "a rejected event leaves the view untouched");

        let bad_clear = FabricEvent::FaultEvents {
            raised: Vec::new(),
            cleared: vec![(7, Timestamp::new(1))],
        };
        assert!(matches!(
            view.validate(std::slice::from_ref(&bad_clear)),
            Err(ApplyError::FaultIndexOutOfRange { index: 7, .. })
        ));
        // Error rendering is stable enough to grep in logs.
        let err = view.apply(&bad_clear).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn validate_accounts_for_raises_earlier_in_the_batch() {
        let fabric = deployed();
        let view = FabricView::of(&fabric);
        let t = Timestamp::new(5);
        let entry = FaultLogEntry {
            time: t,
            switch: Some(sample::S1),
            kind: FaultKind::RuleEviction,
            severity: crate::logs::Severity::Warning,
            cleared_at: None,
            message: "evicted".to_string(),
        };
        // The clear targets the entry raised in the same batch: valid.
        let batch = vec![FabricEvent::FaultEvents {
            raised: vec![entry],
            cleared: vec![(view.fault_log().len(), t)],
        }];
        assert_eq!(view.validate(&batch), Ok(()));
    }

    #[test]
    fn idle_probe_emits_no_batch_not_an_empty_one() {
        let mut fabric = deployed();
        let mut probe = FabricProbe::new(&fabric);
        // Nothing changed: no batch at all (an empty heartbeat would burn an
        // epoch number the consumer then expects to be contiguous).
        assert_eq!(probe.observe_batch(&fabric, 1), None);
        assert_eq!(probe.observe_batch(&fabric, 1), None);

        // Real drift produces a batch carrying the requested epoch…
        fabric.evict_tcam(sample::S2, 1, true);
        let batch = probe
            .observe_batch(&fabric, 1)
            .expect("drift emits a batch");
        assert_eq!(batch.epoch, 1);
        assert!(!batch.is_empty());
        // …and the cursors advanced: the follow-up poll is silent again.
        assert_eq!(probe.observe_batch(&fabric, 2), None);
    }

    #[test]
    fn probe_tracks_a_repair_cycle_exactly() {
        let mut fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        fabric.evict_tcam(sample::S2, 2, true);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));

        // The repair restores the rules, clears the eviction fault and
        // appends pre-cleared audit entries; one observation must carry the
        // TCAM restoration, the clears and the new entries together.
        fabric.repair_switch(sample::S2);
        let dirtied = replay(&mut view, &mut probe, &fabric);
        assert!(dirtied >= 1, "the repaired switch is re-synced");
        assert!(view.matches(&fabric));
        assert!(view.fault_log().active_at(fabric.now()).is_empty());
        assert!(!view
            .fault_log()
            .entries_of_kind(FaultKind::Repair)
            .is_empty());
        assert!(probe.observe(&fabric).is_empty());
    }

    #[test]
    fn probe_survives_a_universe_version_bump() {
        let mut fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let mut probe = FabricProbe::new(&fabric);
        let before = fabric.universe_version();

        // Re-deploying the same universe bumps the version: the probe must
        // emit the policy update (and the view track the new version) even
        // though no rule changed.
        fabric.update_policy(fabric.universe().clone());
        assert!(fabric.universe_version() > before);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
        assert_eq!(view.universe_version(), fabric.universe_version());

        // Drift *after* the bump is still observed incrementally.
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
        assert!(probe.observe(&fabric).is_empty());
    }

    #[test]
    fn full_resync_recovers_from_lost_batches() {
        let mut fabric = deployed();
        let mut view = FabricView::of(&fabric);
        let mut probe = FabricProbe::new(&fabric);

        // Two rounds of drift whose batches are lost in transit: the probe's
        // cursors advance, so the stream alone can never repair the view.
        fabric.evict_tcam(sample::S2, 1, true);
        let _lost = probe.observe(&fabric);
        fabric.disconnect_switch(sample::S3);
        fabric.remove_tcam_rules_where(sample::S3, |_| true);
        let _also_lost = probe.observe(&fabric);
        assert!(!view.matches(&fabric));
        assert!(
            probe.observe(&fabric).is_empty(),
            "nothing new to observe: the lost content is unrecoverable as deltas"
        );

        // Full resync restores the mirror invariant…
        let sync = probe.full_resync(&fabric);
        assert!(sync.view().matches(&fabric));
        view = sync.into_view();
        assert!(view.matches(&fabric));

        // …and the probe continues incrementally from the synced state.
        fabric.repair_switch(sample::S2);
        replay(&mut view, &mut probe, &fabric);
        assert!(view.matches(&fabric));
    }

    #[test]
    fn torn_tcam_sync_mixes_fresh_and_stale_pages() {
        let mut fabric = deployed();
        let stale = fabric.tcam_rules(sample::S2);
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        let live = fabric.tcam_rules(sample::S2);
        assert!(live.len() < stale.len());

        // fresh = 2: the first two entries are live, the tail is the stale
        // read — a mid-update page walk.
        let torn = FabricEvent::torn_tcam_sync(sample::S2, &live, &stale, 2);
        let FabricEvent::TcamSync { switch, rules } = &torn else {
            panic!("torn read is a TcamSync");
        };
        assert_eq!(*switch, sample::S2);
        assert_eq!(rules[..2], live[..2]);
        assert_eq!(rules[2..], stale[2..]);
        assert_ne!(rules, &live, "the torn read misrepresents the live table");

        // Degenerate tears stay well-formed: fully fresh and fully stale.
        assert_eq!(
            FabricEvent::torn_tcam_sync(sample::S2, &live, &stale, live.len() + 10),
            FabricEvent::TcamSync {
                switch: sample::S2,
                rules: live.clone(),
            }
        );
        assert_eq!(
            FabricEvent::torn_tcam_sync(sample::S2, &live, &stale, 0),
            FabricEvent::TcamSync {
                switch: sample::S2,
                rules: stale.clone(),
            }
        );
    }

    #[test]
    fn probe_panics_on_a_foreign_fabric() {
        let fabric = deployed();
        let clone = fabric.clone();
        let mut probe = FabricProbe::new(&fabric);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            probe.observe(&clone);
        }));
        assert!(result.is_err(), "clones have fresh identities");
    }
}
