//! The TCAM table of a simulated switch.
//!
//! The table models the failure-relevant aspects of real switch TCAM hardware
//! (§II-B of the paper): finite capacity (overflow makes installs fail),
//! silent bit corruption of installed entries, and eviction of entries behind
//! the controller's back.

use std::error::Error as StdError;
use std::fmt;

use scout_policy::{Action, EpgId, TcamRule, VrfId};

/// Error returned when a rule cannot be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcamError {
    /// The table is full; the rule was not installed.
    Overflow {
        /// The capacity of the table.
        capacity: usize,
    },
}

impl fmt::Display for TcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcamError::Overflow { capacity } => {
                write!(f, "tcam overflow: capacity of {capacity} entries exhausted")
            }
        }
    }
}

impl StdError for TcamError {}

/// The specific field targeted by a simulated TCAM bit corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Flip the low bit of the VRF identifier.
    VrfBit,
    /// Flip the low bit of the source EPG class id.
    SrcEpgBit,
    /// Flip the low bit of the destination EPG class id.
    DstEpgBit,
    /// Flip the low bit of the port range start.
    PortBit,
    /// Flip the action (allow ↔ deny).
    ActionFlip,
}

impl CorruptionKind {
    /// All corruption kinds, for randomized fault injection.
    pub const ALL: [CorruptionKind; 5] = [
        CorruptionKind::VrfBit,
        CorruptionKind::SrcEpgBit,
        CorruptionKind::DstEpgBit,
        CorruptionKind::PortBit,
        CorruptionKind::ActionFlip,
    ];

    /// Applies the corruption to a rule, returning the corrupted copy.
    pub fn apply(self, rule: &TcamRule) -> TcamRule {
        let mut corrupted = *rule;
        match self {
            CorruptionKind::VrfBit => {
                corrupted.matcher.vrf = VrfId::new(rule.matcher.vrf.raw() ^ 1);
            }
            CorruptionKind::SrcEpgBit => {
                corrupted.matcher.src_epg = EpgId::new(rule.matcher.src_epg.raw() ^ 1);
            }
            CorruptionKind::DstEpgBit => {
                corrupted.matcher.dst_epg = EpgId::new(rule.matcher.dst_epg.raw() ^ 1);
            }
            CorruptionKind::PortBit => {
                let mut ports = rule.matcher.ports;
                ports.start ^= 1;
                if ports.start > ports.end {
                    ports.end = ports.start;
                }
                corrupted.matcher.ports = ports;
            }
            CorruptionKind::ActionFlip => {
                corrupted.action = match rule.action {
                    Action::Allow => Action::Deny,
                    Action::Deny => Action::Allow,
                };
            }
        }
        corrupted
    }
}

/// A fixed-capacity TCAM table holding [`TcamRule`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcamTable {
    capacity: usize,
    entries: Vec<TcamRule>,
}

impl TcamTable {
    /// Creates an empty table with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of capacity in use (`0.0..=1.0`).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.entries.len() as f64 / self.capacity as f64
        }
    }

    /// Returns `true` if an identical rule is already installed.
    pub fn contains(&self, rule: &TcamRule) -> bool {
        self.entries.contains(rule)
    }

    /// The installed rules in installation order.
    pub fn rules(&self) -> &[TcamRule] {
        &self.entries
    }

    /// Installs a rule.
    ///
    /// Installing a rule that is already present is a no-op and succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`TcamError::Overflow`] if the table is full.
    pub fn install(&mut self, rule: TcamRule) -> Result<(), TcamError> {
        if self.contains(&rule) {
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(TcamError::Overflow {
                capacity: self.capacity,
            });
        }
        self.entries.push(rule);
        Ok(())
    }

    /// Removes an identical rule if present; returns `true` if one was removed.
    pub fn remove(&mut self, rule: &TcamRule) -> bool {
        if let Some(pos) = self.entries.iter().position(|r| r == rule) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes every rule matching `predicate`, returning the removed rules.
    pub fn remove_where<F: FnMut(&TcamRule) -> bool>(&mut self, mut predicate: F) -> Vec<TcamRule> {
        let mut removed = Vec::new();
        self.entries.retain(|r| {
            if predicate(r) {
                removed.push(*r);
                false
            } else {
                true
            }
        });
        removed
    }

    /// Evicts up to `n` entries from the front of the table (oldest first),
    /// mimicking a local rule-eviction mechanism the controller is unaware of.
    pub fn evict_oldest(&mut self, n: usize) -> Vec<TcamRule> {
        let n = n.min(self.entries.len());
        self.entries.drain(0..n).collect()
    }

    /// Corrupts the entry at `index`, returning `(original, corrupted)`.
    ///
    /// Returns `None` if `index` is out of bounds. The corrupted entry replaces
    /// the original in place, exactly as a hardware bit error would.
    pub fn corrupt(&mut self, index: usize, kind: CorruptionKind) -> Option<(TcamRule, TcamRule)> {
        let original = *self.entries.get(index)?;
        let corrupted = kind.apply(&original);
        self.entries[index] = corrupted;
        Some((original, corrupted))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{PortRange, Protocol, RuleMatch};

    fn rule(port: u16) -> TcamRule {
        TcamRule::allow(RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::single(port),
        ))
    }

    #[test]
    fn install_and_remove() {
        let mut t = TcamTable::new(4);
        assert!(t.is_empty());
        t.install(rule(80)).unwrap();
        t.install(rule(443)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.contains(&rule(80)));
        assert!(t.remove(&rule(80)));
        assert!(!t.remove(&rule(80)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let mut t = TcamTable::new(2);
        t.install(rule(80)).unwrap();
        t.install(rule(80)).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn overflow_is_reported_and_rule_not_installed() {
        let mut t = TcamTable::new(2);
        t.install(rule(1)).unwrap();
        t.install(rule(2)).unwrap();
        let err = t.install(rule(3)).unwrap_err();
        assert_eq!(err, TcamError::Overflow { capacity: 2 });
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&rule(3)));
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut t = TcamTable::new(4);
        assert_eq!(t.utilization(), 0.0);
        t.install(rule(1)).unwrap();
        t.install(rule(2)).unwrap();
        assert_eq!(t.utilization(), 0.5);
        assert_eq!(TcamTable::new(0).utilization(), 1.0);
    }

    #[test]
    fn eviction_removes_oldest_first() {
        let mut t = TcamTable::new(8);
        for p in 1..=5 {
            t.install(rule(p)).unwrap();
        }
        let evicted = t.evict_oldest(2);
        assert_eq!(evicted, vec![rule(1), rule(2)]);
        assert_eq!(t.len(), 3);
        assert!(!t.contains(&rule(1)));
        // Evicting more than present drains the table.
        let evicted = t.evict_oldest(10);
        assert_eq!(evicted.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn remove_where_filters_in_place() {
        let mut t = TcamTable::new(8);
        for p in 1..=6 {
            t.install(rule(p)).unwrap();
        }
        let removed = t.remove_where(|r| r.matcher.ports.start % 2 == 0);
        assert_eq!(removed.len(), 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn corruption_changes_exactly_one_field() {
        let mut t = TcamTable::new(4);
        t.install(rule(80)).unwrap();
        let (orig, corrupted) = t.corrupt(0, CorruptionKind::VrfBit).unwrap();
        assert_eq!(orig, rule(80));
        assert_ne!(corrupted, orig);
        assert_eq!(corrupted.matcher.vrf, VrfId::new(100));
        assert_eq!(corrupted.matcher.src_epg, orig.matcher.src_epg);
        assert!(t.contains(&corrupted));
        assert!(!t.contains(&orig));
        assert!(t.corrupt(5, CorruptionKind::VrfBit).is_none());
    }

    #[test]
    fn every_corruption_kind_changes_the_rule() {
        let r = rule(80);
        for kind in CorruptionKind::ALL {
            let c = kind.apply(&r);
            assert_ne!(c, r, "corruption {kind:?} must alter the rule");
        }
    }

    #[test]
    fn action_flip_round_trips() {
        let r = rule(80);
        let flipped = CorruptionKind::ActionFlip.apply(&r);
        assert_eq!(flipped.action, Action::Deny);
        let back = CorruptionKind::ActionFlip.apply(&flipped);
        assert_eq!(back.action, Action::Allow);
    }

    #[test]
    fn port_corruption_keeps_range_valid() {
        // Port 0 flips to 1; port 1 flips to 0; either way start <= end.
        for p in [0u16, 1, 80, 65535] {
            let c = CorruptionKind::PortBit.apply(&rule(p));
            assert!(c.matcher.ports.start <= c.matcher.ports.end);
        }
    }

    #[test]
    fn clear_empties_table() {
        let mut t = TcamTable::new(4);
        t.install(rule(80)).unwrap();
        t.clear();
        assert!(t.is_empty());
    }
}
