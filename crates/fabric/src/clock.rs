//! Deterministic simulated time.
//!
//! The paper correlates controller change logs with device fault logs through
//! timestamps. Wall-clock time would make experiments non-reproducible, so the
//! fabric uses a monotonically increasing tick counter instead; only relative
//! ordering and windows matter for correlation.

use std::fmt;

/// A point in simulated time (a tick count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The origin of simulated time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw tick count.
    pub const fn new(ticks: u64) -> Self {
        Self(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The timestamp `delta` ticks later.
    pub fn plus(self, delta: u64) -> Timestamp {
        Timestamp(self.0 + delta)
    }

    /// Saturating difference in ticks (`self - earlier`).
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A monotonically increasing simulated clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock by one tick and returns the new time.
    pub fn tick(&mut self) -> Timestamp {
        self.advance(1)
    }

    /// Advances the clock by `delta` ticks and returns the new time.
    pub fn advance(&mut self, delta: u64) -> Timestamp {
        self.now = self.now.plus(delta);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Timestamp::ZERO);
        assert_eq!(clock.tick(), Timestamp::new(1));
        assert_eq!(clock.advance(10), Timestamp::new(11));
        assert_eq!(clock.now().ticks(), 11);
    }

    #[test]
    fn timestamps_are_ordered() {
        assert!(Timestamp::new(3) < Timestamp::new(5));
        assert_eq!(Timestamp::new(5).since(Timestamp::new(3)), 2);
        assert_eq!(Timestamp::new(3).since(Timestamp::new(5)), 0);
        assert_eq!(Timestamp::new(3).plus(4), Timestamp::new(7));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Timestamp::new(42).to_string(), "t42");
    }
}
