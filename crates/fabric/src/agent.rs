//! The switch agent: receives instructions, maintains a local logical view and
//! renders rules into the switch TCAM.
//!
//! The agent models the switch-side failure modes of §II-B: crashing in the
//! middle of a batch of updates (only a prefix of the instructions is applied),
//! and TCAM overflow when rendering rules into a full table.

use scout_policy::{LogicalRule, SwitchId, TcamRule};

use crate::clock::Timestamp;
use crate::instruction::{Instruction, InstructionOp};
use crate::logs::{FaultKind, FaultLog, Severity};
use crate::tcam::TcamTable;

/// The health of a switch agent process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentHealth {
    /// The agent processes instructions normally.
    Healthy,
    /// The agent has crashed and ignores all further instructions.
    Crashed,
}

/// The result of handing one instruction to an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The instruction was fully applied (logical view and TCAM updated).
    Applied,
    /// The logical view was updated but the TCAM install failed (overflow).
    TcamRejected,
    /// The agent is crashed and ignored the instruction.
    IgnoredCrashed,
}

/// A simulated switch agent together with its TCAM table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchAgent {
    switch: SwitchId,
    health: AgentHealth,
    /// Crash after applying this many more instructions, if set.
    crash_after: Option<u64>,
    logical_view: Vec<LogicalRule>,
    tcam: TcamTable,
    overflow_logged: bool,
}

impl SwitchAgent {
    /// Creates a healthy agent with an empty TCAM of the given capacity.
    pub fn new(switch: SwitchId, tcam_capacity: usize) -> Self {
        Self {
            switch,
            health: AgentHealth::Healthy,
            crash_after: None,
            logical_view: Vec::new(),
            tcam: TcamTable::new(tcam_capacity),
            overflow_logged: false,
        }
    }

    /// The switch this agent runs on.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }

    /// Current health.
    pub fn health(&self) -> AgentHealth {
        self.health
    }

    /// Returns `true` if the agent has crashed.
    pub fn is_crashed(&self) -> bool {
        self.health == AgentHealth::Crashed
    }

    /// Crashes the agent immediately.
    pub fn crash(&mut self) {
        self.health = AgentHealth::Crashed;
    }

    /// Makes the agent crash after applying `n` more instructions, simulating a
    /// crash in the middle of a rule-update batch.
    pub fn crash_after(&mut self, n: u64) {
        self.crash_after = Some(n);
    }

    /// Restarts a crashed agent (its logical view and TCAM are preserved).
    pub fn restart(&mut self) {
        self.health = AgentHealth::Healthy;
        self.crash_after = None;
    }

    /// The agent's local logical view of the policy (the rules it believes it
    /// should render).
    pub fn logical_view(&self) -> &[LogicalRule] {
        &self.logical_view
    }

    /// Read access to the TCAM table.
    pub fn tcam(&self) -> &TcamTable {
        &self.tcam
    }

    /// Mutable access to the TCAM table — used only by fault injection
    /// (corruption, eviction, silent rule removal).
    pub fn tcam_mut(&mut self) -> &mut TcamTable {
        &mut self.tcam
    }

    /// The rules currently rendered in hardware (T-type rules).
    pub fn tcam_rules(&self) -> Vec<TcamRule> {
        self.tcam.rules().to_vec()
    }

    /// Applies one instruction at simulated time `now`, reporting hardware
    /// faults into `fault_log`.
    pub fn apply(
        &mut self,
        instruction: Instruction,
        now: Timestamp,
        fault_log: &mut FaultLog,
    ) -> ApplyOutcome {
        if self.is_crashed() {
            return ApplyOutcome::IgnoredCrashed;
        }
        let outcome = match instruction.op {
            InstructionOp::Install => self.apply_install(instruction.rule, now, fault_log),
            InstructionOp::Remove => {
                self.logical_view.retain(|r| r != &instruction.rule);
                self.tcam.remove(&instruction.rule.rule);
                ApplyOutcome::Applied
            }
        };
        if let Some(remaining) = self.crash_after.as_mut() {
            *remaining = remaining.saturating_sub(1);
            if *remaining == 0 {
                self.health = AgentHealth::Crashed;
                self.crash_after = None;
                fault_log.raise(
                    now,
                    Some(self.switch),
                    FaultKind::AgentCrash,
                    Severity::Critical,
                    format!("agent on {} crashed during rule updates", self.switch),
                );
            }
        }
        outcome
    }

    fn apply_install(
        &mut self,
        rule: LogicalRule,
        now: Timestamp,
        fault_log: &mut FaultLog,
    ) -> ApplyOutcome {
        if !self.logical_view.contains(&rule) {
            self.logical_view.push(rule);
        }
        match self.tcam.install(rule.rule) {
            Ok(()) => ApplyOutcome::Applied,
            Err(_) => {
                if !self.overflow_logged {
                    // One fault entry per overflow episode is enough for
                    // correlation; real switches also rate-limit these logs.
                    fault_log.raise(
                        now,
                        Some(self.switch),
                        FaultKind::TcamOverflow,
                        Severity::Critical,
                        format!(
                            "tcam overflow on {}: utilization {:.0}%, install dropped",
                            self.switch,
                            self.tcam.utilization() * 100.0
                        ),
                    );
                    self.overflow_logged = true;
                }
                ApplyOutcome::TcamRejected
            }
        }
    }

    /// Clears the "overflow already logged" latch, e.g. after capacity grows.
    pub fn reset_overflow_latch(&mut self) {
        self.overflow_logged = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{
        ContractId, EpgId, FilterId, PortRange, Protocol, RuleMatch, RuleProvenance, VrfId,
    };

    fn logical(port: u16) -> LogicalRule {
        let matcher = RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::single(port),
        );
        LogicalRule::new(
            SwitchId::new(7),
            TcamRule::allow(matcher),
            RuleProvenance::new(
                VrfId::new(101),
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
                FilterId::new(1),
            ),
        )
    }

    #[test]
    fn install_updates_view_and_tcam() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        let out = agent.apply(
            Instruction::install(logical(80)),
            Timestamp::new(1),
            &mut faults,
        );
        assert_eq!(out, ApplyOutcome::Applied);
        assert_eq!(agent.logical_view().len(), 1);
        assert_eq!(agent.tcam().len(), 1);
        assert!(faults.is_empty());
    }

    #[test]
    fn remove_undoes_install() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        agent.apply(
            Instruction::install(logical(80)),
            Timestamp::new(1),
            &mut faults,
        );
        agent.apply(
            Instruction::remove(logical(80)),
            Timestamp::new(2),
            &mut faults,
        );
        assert!(agent.logical_view().is_empty());
        assert!(agent.tcam().is_empty());
    }

    #[test]
    fn overflow_rejects_and_raises_one_fault() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 2);
        let mut faults = FaultLog::new();
        for port in 1..=4 {
            agent.apply(
                Instruction::install(logical(port)),
                Timestamp::new(u64::from(port)),
                &mut faults,
            );
        }
        assert_eq!(agent.tcam().len(), 2);
        // Logical view still learned all four rules.
        assert_eq!(agent.logical_view().len(), 4);
        let overflow_faults = faults.entries_of_kind(FaultKind::TcamOverflow);
        assert_eq!(overflow_faults.len(), 1);
        assert_eq!(overflow_faults[0].switch, Some(SwitchId::new(7)));
    }

    #[test]
    fn crashed_agent_ignores_instructions() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        agent.crash();
        let out = agent.apply(
            Instruction::install(logical(80)),
            Timestamp::new(1),
            &mut faults,
        );
        assert_eq!(out, ApplyOutcome::IgnoredCrashed);
        assert!(agent.tcam().is_empty());
        assert!(agent.logical_view().is_empty());
    }

    #[test]
    fn crash_after_applies_prefix_then_stops() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        agent.crash_after(2);
        for port in 1..=5 {
            agent.apply(
                Instruction::install(logical(port)),
                Timestamp::new(u64::from(port)),
                &mut faults,
            );
        }
        // Only the first two instructions landed.
        assert_eq!(agent.tcam().len(), 2);
        assert!(agent.is_crashed());
        assert_eq!(faults.entries_of_kind(FaultKind::AgentCrash).len(), 1);
    }

    #[test]
    fn restart_resumes_processing() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        agent.crash();
        agent.restart();
        assert!(!agent.is_crashed());
        let out = agent.apply(
            Instruction::install(logical(80)),
            Timestamp::new(1),
            &mut faults,
        );
        assert_eq!(out, ApplyOutcome::Applied);
    }

    #[test]
    fn duplicate_install_does_not_duplicate_view() {
        let mut agent = SwitchAgent::new(SwitchId::new(7), 16);
        let mut faults = FaultLog::new();
        for _ in 0..3 {
            agent.apply(
                Instruction::install(logical(80)),
                Timestamp::new(1),
                &mut faults,
            );
        }
        assert_eq!(agent.logical_view().len(), 1);
        assert_eq!(agent.tcam().len(), 1);
    }
}
