//! The policy compiler: network policy → per-switch logical (L-type) rules.
//!
//! The compiler performs the controller-side translation described in §II-A of
//! the paper: for every contract binding it expands the contract's filters into
//! directional allow rules between the consumer and provider EPGs, and assigns
//! each rule to every switch that hosts at least one endpoint of either EPG
//! (e.g. switch S2 in Figure 1 receives the rules of both the Web–App and
//! App–DB pairs).

use std::collections::BTreeSet;

use scout_policy::{
    Action, EpgId, LogicalRule, PolicyUniverse, RuleMatch, RuleProvenance, SwitchId, TcamRule,
};

/// Compiles the whole universe into logical rules for every switch.
///
/// The output is deterministic: rules are ordered by switch, then binding,
/// then filter, then entry, then direction.
pub fn compile(universe: &PolicyUniverse) -> Vec<LogicalRule> {
    let mut rules = Vec::new();
    for switch in universe.switch_ids() {
        rules.extend(compile_for_switch(universe, switch));
    }
    rules
}

/// Compiles the logical rules that must be present on one switch.
pub fn compile_for_switch(universe: &PolicyUniverse, switch: SwitchId) -> Vec<LogicalRule> {
    let local_epgs: BTreeSet<EpgId> = universe.epgs_on_switch(switch);
    let mut rules = Vec::new();
    for binding in universe.bindings() {
        if !local_epgs.contains(&binding.consumer) && !local_epgs.contains(&binding.provider) {
            continue;
        }
        let Some(consumer_epg) = universe.epg(binding.consumer) else {
            continue;
        };
        let vrf = consumer_epg.vrf;
        let Some(contract) = universe.contract(binding.contract) else {
            continue;
        };
        for &filter_id in &contract.filters {
            let Some(filter) = universe.filter(filter_id) else {
                continue;
            };
            for entry in &filter.entries {
                if entry.action != Action::Allow {
                    // Whitelisting model: deny entries add nothing beyond the
                    // implicit default deny and are skipped by the compiler.
                    continue;
                }
                let provenance = RuleProvenance::new(
                    vrf,
                    binding.consumer,
                    binding.provider,
                    binding.contract,
                    filter_id,
                );
                for (src, dst) in [
                    (binding.consumer, binding.provider),
                    (binding.provider, binding.consumer),
                ] {
                    let matcher = RuleMatch::new(vrf, src, dst, entry.protocol, entry.ports);
                    rules.push(LogicalRule::new(
                        switch,
                        TcamRule::allow(matcher),
                        provenance,
                    ));
                }
            }
        }
    }
    rules
}

/// Number of TCAM entries the full policy requires on `switch`.
pub fn rule_count_for_switch(universe: &PolicyUniverse, switch: SwitchId) -> usize {
    compile_for_switch(universe, switch).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{sample, EpgPair, ObjectId, PortRange, Protocol};

    #[test]
    fn three_tier_s2_gets_six_rules_like_figure_2() {
        // Figure 2: S2 holds six allow rules (Web<->App on 80, App<->DB on 80
        // and 700) plus the implicit deny-all.
        let u = sample::three_tier();
        let rules = compile_for_switch(&u, sample::S2);
        assert_eq!(rules.len(), 6);
        let ports: BTreeSet<u16> = rules.iter().map(|r| r.rule.matcher.ports.start).collect();
        assert_eq!(ports, BTreeSet::from([80, 700]));
        // Every rule is scoped to VRF 101 and is an allow.
        assert!(rules.iter().all(|r| r.rule.matcher.vrf == sample::VRF));
        assert!(rules.iter().all(|r| r.rule.action == Action::Allow));
    }

    #[test]
    fn s1_and_s3_get_only_their_pair() {
        let u = sample::three_tier();
        let s1 = compile_for_switch(&u, sample::S1);
        assert_eq!(s1.len(), 2); // Web<->App on port 80
        assert!(s1
            .iter()
            .all(|r| r.pair() == EpgPair::new(sample::WEB, sample::APP)));
        let s3 = compile_for_switch(&u, sample::S3);
        assert_eq!(s3.len(), 4); // App<->DB on ports 80 and 700
        assert!(s3
            .iter()
            .all(|r| r.pair() == EpgPair::new(sample::APP, sample::DB)));
    }

    #[test]
    fn full_compile_is_union_of_per_switch() {
        let u = sample::three_tier();
        let all = compile(&u);
        assert_eq!(all.len(), 2 + 6 + 4);
        assert_eq!(rule_count_for_switch(&u, sample::S2), 6);
    }

    #[test]
    fn directional_rules_cover_both_directions() {
        let u = sample::three_tier();
        let rules = compile_for_switch(&u, sample::S1);
        let dirs: BTreeSet<(u32, u32)> = rules
            .iter()
            .map(|r| (r.rule.matcher.src_epg.raw(), r.rule.matcher.dst_epg.raw()))
            .collect();
        assert_eq!(dirs.len(), 2);
        assert!(dirs.contains(&(sample::WEB.raw(), sample::APP.raw())));
        assert!(dirs.contains(&(sample::APP.raw(), sample::WEB.raw())));
    }

    #[test]
    fn provenance_references_the_deriving_objects() {
        let u = sample::three_tier();
        let rules = compile_for_switch(&u, sample::S3);
        for r in &rules {
            assert_eq!(r.provenance.vrf, sample::VRF);
            assert_eq!(r.provenance.contract, sample::C_APP_DB);
            let objs = r.objects();
            assert!(objs.contains(&ObjectId::Switch(sample::S3)));
            assert!(objs.contains(&ObjectId::Contract(sample::C_APP_DB)));
        }
        // One of the S3 rules must come from the port-700 filter.
        assert!(rules.iter().any(|r| r.provenance.filter == sample::F_700
            && r.rule.matcher.ports == PortRange::single(700)
            && r.rule.matcher.protocol == Protocol::Tcp));
    }

    #[test]
    fn compile_is_deterministic() {
        let u = sample::three_tier();
        assert_eq!(compile(&u), compile(&u));
    }

    #[test]
    fn switch_without_endpoints_gets_no_rules() {
        use scout_policy::{Contract, ContractBinding, Endpoint, Epg, Filter, Switch, Tenant};
        use scout_policy::{ContractId, EndpointId, EpgId, FilterId, SwitchId, TenantId, VrfId};
        let mut b = PolicyUniverse::builder();
        b.tenant(Tenant::new(TenantId::new(0), "t"))
            .vrf(scout_policy::Vrf::new(VrfId::new(1), "v", TenantId::new(0)))
            .epg(Epg::new(EpgId::new(1), "a", VrfId::new(1)))
            .epg(Epg::new(EpgId::new(2), "b", VrfId::new(1)))
            .switch(Switch::new(SwitchId::new(1), "s1"))
            .switch(Switch::new(SwitchId::new(2), "s2-empty"))
            .endpoint(Endpoint::new(
                EndpointId::new(1),
                "ep1",
                EpgId::new(1),
                SwitchId::new(1),
            ))
            .endpoint(Endpoint::new(
                EndpointId::new(2),
                "ep2",
                EpgId::new(2),
                SwitchId::new(1),
            ))
            .filter(Filter::tcp_port(FilterId::new(1), "http", 80))
            .contract(Contract::new(
                ContractId::new(1),
                "c",
                vec![FilterId::new(1)],
            ))
            .bind(ContractBinding::new(
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
            ));
        let u = b.build().unwrap();
        assert_eq!(compile_for_switch(&u, SwitchId::new(2)).len(), 0);
        assert_eq!(compile_for_switch(&u, SwitchId::new(1)).len(), 2);
    }
}
