//! Instructions flowing from the controller to switch agents.

use std::fmt;

use scout_policy::LogicalRule;

/// The operation requested by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstructionOp {
    /// Render and install the rule in the switch TCAM.
    Install,
    /// Remove the rule from the logical view and the TCAM.
    Remove,
}

impl fmt::Display for InstructionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstructionOp::Install => f.write_str("install"),
            InstructionOp::Remove => f.write_str("remove"),
        }
    }
}

/// A single controller→switch instruction about one logical rule.
///
/// Real controllers ship object-level updates; the simulator ships the
/// already-expanded rule together with its provenance, which is equivalent for
/// the purposes of fault localization (the provenance carries the object ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// The requested operation.
    pub op: InstructionOp,
    /// The logical rule the operation applies to.
    pub rule: LogicalRule,
}

impl Instruction {
    /// Creates an install instruction.
    pub fn install(rule: LogicalRule) -> Self {
        Self {
            op: InstructionOp::Install,
            rule,
        }
    }

    /// Creates a remove instruction.
    pub fn remove(rule: LogicalRule) -> Self {
        Self {
            op: InstructionOp::Remove,
            rule,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.op, self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{
        ContractId, EpgId, FilterId, PortRange, Protocol, RuleMatch, RuleProvenance, SwitchId,
        TcamRule, VrfId,
    };

    fn rule() -> LogicalRule {
        let matcher = RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::single(80),
        );
        LogicalRule::new(
            SwitchId::new(1),
            TcamRule::allow(matcher),
            RuleProvenance::new(
                VrfId::new(101),
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
                FilterId::new(1),
            ),
        )
    }

    #[test]
    fn constructors_set_op() {
        assert_eq!(Instruction::install(rule()).op, InstructionOp::Install);
        assert_eq!(Instruction::remove(rule()).op, InstructionOp::Remove);
    }

    #[test]
    fn display_contains_op() {
        let text = Instruction::install(rule()).to_string();
        assert!(text.starts_with("install"));
        assert!(text.contains("switch-1"));
    }
}
