//! The control channel between the controller and one switch agent.
//!
//! The channel models the failure modes of the controller→switch leg of policy
//! deployment (§II-B): a full disconnect (all instructions lost) and a degraded
//! link that silently drops a deterministic subset of instructions.

use crate::instruction::Instruction;

/// The state of a control channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Instructions are delivered.
    Connected,
    /// No instructions are delivered.
    Disconnected,
    /// Every `drop_modulo`-th instruction (1-indexed) is silently dropped.
    Degraded {
        /// Drop every n-th instruction; must be at least 1 (1 drops all).
        drop_modulo: u64,
    },
}

/// The controller-side view of the channel towards one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlChannel {
    state: LinkState,
    sent: u64,
    delivered: u64,
    dropped: u64,
}

impl Default for ControlChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlChannel {
    /// Creates a connected channel.
    pub fn new() -> Self {
        Self {
            state: LinkState::Connected,
            sent: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Current link state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Returns `true` if the channel is fully connected.
    pub fn is_connected(&self) -> bool {
        self.state == LinkState::Connected
    }

    /// Sets the link state.
    pub fn set_state(&mut self, state: LinkState) {
        self.state = state;
    }

    /// Number of instructions the controller attempted to send.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of instructions actually delivered to the agent.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of instructions lost in the channel.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Attempts to transmit one instruction. Returns `Some(instruction)` if it
    /// reaches the agent and `None` if the channel loses it.
    pub fn transmit(&mut self, instruction: Instruction) -> Option<Instruction> {
        self.sent += 1;
        let deliver = match self.state {
            LinkState::Connected => true,
            LinkState::Disconnected => false,
            LinkState::Degraded { drop_modulo } => {
                let modulo = drop_modulo.max(1);
                !self.sent.is_multiple_of(modulo)
            }
        };
        if deliver {
            self.delivered += 1;
            Some(instruction)
        } else {
            self.dropped += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{
        ContractId, EpgId, FilterId, LogicalRule, PortRange, Protocol, RuleMatch, RuleProvenance,
        SwitchId, TcamRule, VrfId,
    };

    fn instruction(port: u16) -> Instruction {
        let matcher = RuleMatch::new(
            VrfId::new(101),
            EpgId::new(1),
            EpgId::new(2),
            Protocol::Tcp,
            PortRange::single(port),
        );
        Instruction::install(LogicalRule::new(
            SwitchId::new(1),
            TcamRule::allow(matcher),
            RuleProvenance::new(
                VrfId::new(101),
                EpgId::new(1),
                EpgId::new(2),
                ContractId::new(1),
                FilterId::new(1),
            ),
        ))
    }

    #[test]
    fn connected_channel_delivers_everything() {
        let mut ch = ControlChannel::new();
        assert!(ch.is_connected());
        for p in 0..10 {
            assert!(ch.transmit(instruction(p)).is_some());
        }
        assert_eq!(ch.sent(), 10);
        assert_eq!(ch.delivered(), 10);
        assert_eq!(ch.dropped(), 0);
    }

    #[test]
    fn disconnected_channel_drops_everything() {
        let mut ch = ControlChannel::new();
        ch.set_state(LinkState::Disconnected);
        for p in 0..5 {
            assert!(ch.transmit(instruction(p)).is_none());
        }
        assert_eq!(ch.dropped(), 5);
        assert_eq!(ch.delivered(), 0);
        assert!(!ch.is_connected());
    }

    #[test]
    fn degraded_channel_drops_every_nth() {
        let mut ch = ControlChannel::new();
        ch.set_state(LinkState::Degraded { drop_modulo: 3 });
        let outcomes: Vec<bool> = (0..9)
            .map(|p| ch.transmit(instruction(p)).is_some())
            .collect();
        // 1-indexed sends: every 3rd is dropped.
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(ch.dropped(), 3);
        assert_eq!(ch.delivered(), 6);
    }

    #[test]
    fn degraded_modulo_one_drops_all() {
        let mut ch = ControlChannel::new();
        ch.set_state(LinkState::Degraded { drop_modulo: 1 });
        assert!(ch.transmit(instruction(1)).is_none());
        assert!(ch.transmit(instruction(2)).is_none());
        assert_eq!(ch.dropped(), 2);
    }

    #[test]
    fn reconnect_resumes_delivery() {
        let mut ch = ControlChannel::new();
        ch.set_state(LinkState::Disconnected);
        assert!(ch.transmit(instruction(1)).is_none());
        ch.set_state(LinkState::Connected);
        assert!(ch.transmit(instruction(2)).is_some());
    }
}
