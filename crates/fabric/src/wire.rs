//! The in-house wire format: a compact, versionable byte encoding for fabric
//! telemetry and monitor state.
//!
//! The build environment is registry-free, so durable state (engine
//! checkpoints, replayable event logs) cannot lean on serde. This module is
//! the repo's own encoder, in the same spirit as the `rand` shim: a small
//! [`Wire`] trait with hand-written, deterministic implementations for every
//! type that crosses a durability boundary —
//!
//! * the policy layer ([`PolicyUniverse`] and everything inside it),
//! * the telemetry stream ([`FabricEvent`], [`EventBatch`]), so a checkpoint
//!   can carry a *replay tail* of post-checkpoint batches, and
//! * the monitor mirror ([`FabricView`]), the durable core of an analysis
//!   session.
//!
//! # Format
//!
//! The encoding is little-endian and length-prefixed: integers are
//! fixed-width, collections are a `u64` element count followed by the
//! elements, enums are a one-byte tag followed by the variant's fields.
//! There is no self-description — both sides must agree on the type — which
//! is why consumers (e.g. `scout-core`'s `Snapshot`) prepend a magic/version
//! header and refuse to decode anything else.
//!
//! Encoding is total; decoding is validated: truncated input, unknown enum
//! tags, malformed UTF-8 and semantically invalid payloads (a policy universe
//! that fails referential-integrity checks) all surface as typed
//! [`WireError`]s, never as panics.
//!
//! Decoding is also *canonical* and *resource-bounded*, because these bytes
//! cross trust boundaries (see `ARCHITECTURE.md`, "Untrusted input
//! boundary"):
//!
//! * every accepted input re-encodes to exactly the bytes it arrived as —
//!   out-of-order or duplicate sorted-collection elements, denormalized
//!   pairs and unsorted universe object lists are rejected as
//!   [`WireError::NonCanonical`] instead of being silently repaired;
//! * length prefixes never drive pre-allocation beyond the bytes actually
//!   present (`Vec::with_capacity` is clamped by the reader's remaining
//!   input), and nesting beyond [`WireReader::MAX_DEPTH`] is rejected as
//!   [`WireError::TooDeep`] rather than overflowing the stack.
//!
//! # Example
//!
//! ```
//! use scout_fabric::wire::{Wire, WireReader, WireWriter};
//! use scout_fabric::{EventBatch, FabricEvent};
//! use scout_policy::sample;
//!
//! let batch = EventBatch::new(
//!     7,
//!     vec![FabricEvent::TcamSync {
//!         switch: sample::S2,
//!         rules: Vec::new(),
//!     }],
//! );
//! let mut writer = WireWriter::new();
//! batch.encode(&mut writer);
//! let bytes = writer.into_bytes();
//!
//! let mut reader = WireReader::new(&bytes);
//! let decoded = EventBatch::decode(&mut reader).unwrap();
//! reader.finish().unwrap();
//! assert_eq!(decoded, batch);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use scout_policy::{
    Action, Contract, ContractBinding, ContractId, Endpoint, EndpointId, Epg, EpgId, EpgPair,
    Filter, FilterEntry, FilterId, LogicalRule, ObjectId, PolicyUniverse, PortRange, Protocol,
    RuleMatch, RuleProvenance, Switch, SwitchEpgPair, SwitchId, TcamRule, Tenant, TenantId, Vrf,
    VrfId,
};

use crate::clock::Timestamp;
use crate::event::{EventBatch, FabricEvent, FabricView, FullSync};
use crate::logs::{
    ChangeAction, ChangeLog, ChangeLogEntry, FaultKind, FaultLog, FaultLogEntry, Severity,
};

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes the decoder needed.
        needed: usize,
        /// How many bytes were left.
        remaining: usize,
    },
    /// An enum field carried a tag no known variant uses — the bytes are from
    /// a different (or newer) schema, or corrupted.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadString,
    /// The bytes decoded structurally but the value failed semantic
    /// validation (e.g. a policy universe with dangling references).
    Invalid {
        /// The type being decoded.
        what: &'static str,
    },
    /// The bytes decoded into a valid value, but were not the value's
    /// canonical encoding (out-of-order or duplicate collection elements, a
    /// denormalized pair, …). Accepting them would break the
    /// decode→encode→decode fixpoint: the decoded value would re-encode to
    /// *different* bytes, so two byte strings an attacker controls would
    /// silently alias the same state.
    NonCanonical {
        /// The type being decoded.
        what: &'static str,
    },
    /// Decoding nested deeper than [`WireReader::MAX_DEPTH`] — the payload
    /// is trying to exhaust the decoder's stack, not describe a value.
    TooDeep {
        /// The depth limit that was hit.
        limit: usize,
    },
    /// Decoding finished but bytes were left over — almost certainly a
    /// framing bug on the encoding side.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} more bytes, {remaining} left"
                )
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {what}")
            }
            WireError::BadString => f.write_str("length-prefixed string is not valid UTF-8"),
            WireError::Invalid { what } => write!(f, "decoded {what} failed validation"),
            WireError::NonCanonical { what } => {
                write!(f, "{what} payload is not a canonical encoding")
            }
            WireError::TooDeep { limit } => {
                write!(f, "payload nests deeper than the {limit}-level limit")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit on every host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> WireReader<'a> {
    /// The maximum nesting depth [`WireReader::nested`] permits before
    /// rejecting the payload with [`WireError::TooDeep`].
    ///
    /// Decoding is type-directed, so for today's non-recursive wire types the
    /// static nesting (a snapshot's report → hypothesis → object map → …) is
    /// around a dozen levels; 64 leaves ample headroom while keeping a future
    /// recursive type from turning a short hostile payload into a stack
    /// overflow.
    pub const MAX_DEPTH: usize = 64;

    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            depth: 0,
        }
    }

    /// Runs `f` one nesting level deeper, rejecting the payload with
    /// [`WireError::TooDeep`] once [`WireReader::MAX_DEPTH`] levels are open.
    ///
    /// Every container or variant decoder that recurses into child values
    /// (`Vec`, `BTreeSet`, `BTreeMap`, `Option`, struct fields, enum
    /// payloads) goes through this, so decoder stack depth is bounded by the
    /// limit rather than by the input.
    pub fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        if self.depth >= Self::MAX_DEPTH {
            return Err(WireError::TooDeep {
                limit: Self::MAX_DEPTH,
            });
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    /// Number of unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `bool` (any non-zero byte is rejected rather than coerced).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid { what: "usize" })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    /// Asserts the whole input was consumed — call after decoding a
    /// top-level value to catch framing bugs.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// A type with a deterministic byte encoding.
///
/// `decode(encode(x)) == x` for every value, and `encode` is a pure function
/// of the value — two equal values always produce identical bytes, so encoded
/// forms can be compared or hashed for change detection.
pub trait Wire: Sized {
    /// Appends the value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes one value from the reader's current position.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from `bytes`, requiring every byte to be consumed.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Primitives and containers
// ---------------------------------------------------------------------------

macro_rules! wire_uint {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    };
}

wire_uint!(u8, put_u8, get_u8);
wire_uint!(u16, put_u16, get_u16);
wire_uint!(u32, put_u32, get_u32);
wire_uint!(u64, put_u64, get_u64);
wire_uint!(usize, put_usize, get_usize);
wire_uint!(bool, put_bool, get_bool);

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(r.nested(T::decode)?)),
            tag => Err(WireError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_usize()?;
        // Guard against corrupted length prefixes: never pre-allocate more
        // elements than the remaining input could possibly hold (an element
        // takes at least one byte).
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(r.nested(T::decode)?);
        }
        Ok(items)
    }
}

/// Sorted collections decode **canonically**: elements must arrive in the
/// strictly ascending order `encode` produces. Out-of-order or duplicate
/// elements are rejected with [`WireError::NonCanonical`] instead of being
/// silently re-sorted/collapsed — otherwise a hostile buffer could decode
/// into a value that re-encodes to different bytes (and a duplicate key could
/// alias two payloads onto one entry).
impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_usize()?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            let item = r.nested(T::decode)?;
            if let Some(max) = set.last() {
                if *max >= item {
                    return Err(WireError::NonCanonical { what: "BTreeSet" });
                }
            }
            set.insert(item);
        }
        Ok(set)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.get_usize()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = r.nested(K::decode)?;
            if let Some((max, _)) = map.last_key_value() {
                if *max >= k {
                    return Err(WireError::NonCanonical { what: "BTreeMap" });
                }
            }
            let v = r.nested(V::decode)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((r.nested(A::decode)?, r.nested(B::decode)?))
    }
}

// ---------------------------------------------------------------------------
// Policy-layer types
// ---------------------------------------------------------------------------

macro_rules! wire_id {
    ($($ty:ident),*) => {
        $(
            impl Wire for $ty {
                fn encode(&self, w: &mut WireWriter) {
                    w.put_u32(self.raw());
                }
                fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                    Ok($ty::new(r.get_u32()?))
                }
            }
        )*
    };
}

wire_id!(TenantId, VrfId, EpgId, EndpointId, ContractId, FilterId, SwitchId);

macro_rules! wire_tagged {
    ($ty:ident { $($tag:literal => $variant:ident),* $(,)? }) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                let tag: u8 = match self {
                    $($ty::$variant => $tag,)*
                };
                w.put_u8(tag);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                match r.get_u8()? {
                    $($tag => Ok($ty::$variant),)*
                    tag => Err(WireError::InvalidTag {
                        what: stringify!($ty),
                        tag,
                    }),
                }
            }
        }
    };
}

wire_tagged!(Protocol { 0 => Any, 1 => Tcp, 2 => Udp, 3 => Icmp });
wire_tagged!(Action { 0 => Allow, 1 => Deny });
wire_tagged!(ChangeAction { 0 => Create, 1 => Modify, 2 => Delete });
wire_tagged!(Severity { 0 => Info, 1 => Warning, 2 => Critical });
wire_tagged!(FaultKind {
    0 => TcamOverflow,
    1 => SwitchUnreachable,
    2 => AgentCrash,
    3 => TcamCorruption,
    4 => RuleEviction,
    5 => ChannelDegraded,
    6 => Repair,
    7 => Unknown,
});

impl Wire for ObjectId {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ObjectId::Vrf(id) => {
                w.put_u8(0);
                id.encode(w);
            }
            ObjectId::Epg(id) => {
                w.put_u8(1);
                id.encode(w);
            }
            ObjectId::Contract(id) => {
                w.put_u8(2);
                id.encode(w);
            }
            ObjectId::Filter(id) => {
                w.put_u8(3);
                id.encode(w);
            }
            ObjectId::Switch(id) => {
                w.put_u8(4);
                id.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ObjectId::Vrf(r.nested(VrfId::decode)?)),
            1 => Ok(ObjectId::Epg(r.nested(EpgId::decode)?)),
            2 => Ok(ObjectId::Contract(r.nested(ContractId::decode)?)),
            3 => Ok(ObjectId::Filter(r.nested(FilterId::decode)?)),
            4 => Ok(ObjectId::Switch(r.nested(SwitchId::decode)?)),
            tag => Err(WireError::InvalidTag {
                what: "ObjectId",
                tag,
            }),
        }
    }
}

impl Wire for PortRange {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u16(self.start);
        w.put_u16(self.end);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let start = r.get_u16()?;
        let end = r.get_u16()?;
        if start > end {
            return Err(WireError::Invalid { what: "PortRange" });
        }
        Ok(PortRange::new(start, end))
    }
}

impl Wire for EpgPair {
    fn encode(&self, w: &mut WireWriter) {
        self.a.encode(w);
        self.b.encode(w);
    }
    /// An [`EpgPair`] is normalized (`a <= b`) by construction, so its
    /// canonical encoding always carries the smaller id first. A payload with
    /// the members swapped is rejected rather than silently re-normalized:
    /// re-normalizing would make two distinct byte strings decode to the same
    /// value, breaking the decode→encode→decode fixpoint.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let a = EpgId::decode(r)?;
        let b = EpgId::decode(r)?;
        if a > b {
            return Err(WireError::NonCanonical { what: "EpgPair" });
        }
        Ok(EpgPair::new(a, b))
    }
}

impl Wire for SwitchEpgPair {
    fn encode(&self, w: &mut WireWriter) {
        self.switch.encode(w);
        self.pair.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let switch = SwitchId::decode(r)?;
        let pair = r.nested(EpgPair::decode)?;
        Ok(SwitchEpgPair::new(switch, pair))
    }
}

macro_rules! wire_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                $(self.$field.encode(w);)*
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.nested(|r| {
                    Ok($ty {
                        $($field: Wire::decode(r)?,)*
                    })
                })
            }
        }
    };
}

wire_struct!(RuleMatch {
    vrf,
    src_epg,
    dst_epg,
    protocol,
    ports
});
wire_struct!(TcamRule {
    matcher,
    action,
    priority
});
wire_struct!(RuleProvenance {
    vrf,
    consumer,
    provider,
    contract,
    filter
});
wire_struct!(LogicalRule {
    switch,
    rule,
    provenance
});
wire_struct!(FilterEntry {
    protocol,
    ports,
    action
});
wire_struct!(Tenant { id, name });
wire_struct!(Vrf { id, name, tenant });
wire_struct!(Epg { id, name, vrf });
wire_struct!(Endpoint {
    id,
    name,
    epg,
    switch
});
wire_struct!(Switch {
    id,
    name,
    tcam_capacity
});
wire_struct!(Filter { id, name, entries });
wire_struct!(Contract { id, name, filters });
wire_struct!(ContractBinding {
    consumer,
    provider,
    contract
});

/// Rejects a decoded object list whose `key` projection is not strictly
/// ascending.
///
/// [`PolicyUniverse`] stores objects in id-keyed `BTreeMap`s and bindings in a
/// sorted, deduplicated `Vec`, so [`PolicyUniverse::encode`] always emits each
/// list strictly ascending. Accepting any other order (or duplicates, which
/// the builder would silently collapse) would let two distinct byte strings
/// decode to the same universe, breaking the decode→encode→decode fixpoint.
fn require_ascending<T, K: Ord>(
    items: &[T],
    key: impl Fn(&T) -> K,
    what: &'static str,
) -> Result<(), WireError> {
    if items.windows(2).all(|w| key(&w[0]) < key(&w[1])) {
        Ok(())
    } else {
        Err(WireError::NonCanonical { what })
    }
}

impl Wire for PolicyUniverse {
    fn encode(&self, w: &mut WireWriter) {
        self.tenants().cloned().collect::<Vec<_>>().encode(w);
        self.vrfs().cloned().collect::<Vec<_>>().encode(w);
        self.epgs().cloned().collect::<Vec<_>>().encode(w);
        self.endpoints().cloned().collect::<Vec<_>>().encode(w);
        self.switches().cloned().collect::<Vec<_>>().encode(w);
        self.contracts().cloned().collect::<Vec<_>>().encode(w);
        self.filters().cloned().collect::<Vec<_>>().encode(w);
        self.bindings().to_vec().encode(w);
    }

    /// Decodes the object lists and re-validates them through
    /// [`PolicyUniverse::builder`], so a decoded universe upholds the same
    /// referential-integrity invariants as a freshly built one.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tenants = Vec::<Tenant>::decode(r)?;
        let vrfs = Vec::<Vrf>::decode(r)?;
        let epgs = Vec::<Epg>::decode(r)?;
        let endpoints = Vec::<Endpoint>::decode(r)?;
        let switches = Vec::<Switch>::decode(r)?;
        let contracts = Vec::<Contract>::decode(r)?;
        let filters = Vec::<Filter>::decode(r)?;
        let bindings = Vec::<ContractBinding>::decode(r)?;

        require_ascending(&tenants, |t| t.id, "PolicyUniverse.tenants")?;
        require_ascending(&vrfs, |v| v.id, "PolicyUniverse.vrfs")?;
        require_ascending(&epgs, |e| e.id, "PolicyUniverse.epgs")?;
        require_ascending(&endpoints, |e| e.id, "PolicyUniverse.endpoints")?;
        require_ascending(&switches, |s| s.id, "PolicyUniverse.switches")?;
        require_ascending(&contracts, |c| c.id, "PolicyUniverse.contracts")?;
        require_ascending(&filters, |f| f.id, "PolicyUniverse.filters")?;
        require_ascending(&bindings, |b| *b, "PolicyUniverse.bindings")?;

        let mut builder = PolicyUniverse::builder();
        for t in tenants {
            builder.tenant(t);
        }
        for v in vrfs {
            builder.vrf(v);
        }
        for e in epgs {
            builder.epg(e);
        }
        for ep in endpoints {
            builder.endpoint(ep);
        }
        for s in switches {
            builder.switch(s);
        }
        for c in contracts {
            builder.contract(c);
        }
        for f in filters {
            builder.filter(f);
        }
        for b in bindings {
            builder.bind(b);
        }
        builder.build().map_err(|_| WireError::Invalid {
            what: "PolicyUniverse",
        })
    }
}

// ---------------------------------------------------------------------------
// Fabric-layer types
// ---------------------------------------------------------------------------

impl Wire for Timestamp {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.ticks());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp::new(r.get_u64()?))
    }
}

wire_struct!(ChangeLogEntry {
    time,
    object,
    action,
    switch,
    detail
});
wire_struct!(FaultLogEntry {
    time,
    switch,
    kind,
    severity,
    cleared_at,
    message
});

impl Wire for ChangeLog {
    fn encode(&self, w: &mut WireWriter) {
        self.entries().to_vec().encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let entries = Vec::<ChangeLogEntry>::decode(r)?;
        let mut log = ChangeLog::new();
        for entry in entries {
            log.push(entry);
        }
        Ok(log)
    }
}

impl Wire for FaultLog {
    fn encode(&self, w: &mut WireWriter) {
        self.entries().to_vec().encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let entries = Vec::<FaultLogEntry>::decode(r)?;
        let mut log = FaultLog::new();
        for entry in entries {
            log.push(entry);
        }
        Ok(log)
    }
}

impl Wire for FabricEvent {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            FabricEvent::PolicyUpdate { version, universe } => {
                w.put_u8(0);
                version.encode(w);
                universe.encode(w);
            }
            FabricEvent::TcamSync { switch, rules } => {
                w.put_u8(1);
                switch.encode(w);
                rules.encode(w);
            }
            FabricEvent::ChangeEvents(entries) => {
                w.put_u8(2);
                entries.encode(w);
            }
            FabricEvent::FaultEvents { raised, cleared } => {
                w.put_u8(3);
                raised.encode(w);
                cleared.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(FabricEvent::PolicyUpdate {
                version: u64::decode(r)?,
                universe: Box::new(PolicyUniverse::decode(r)?),
            }),
            1 => Ok(FabricEvent::TcamSync {
                switch: SwitchId::decode(r)?,
                rules: Vec::decode(r)?,
            }),
            2 => Ok(FabricEvent::ChangeEvents(Vec::decode(r)?)),
            3 => Ok(FabricEvent::FaultEvents {
                raised: Vec::decode(r)?,
                cleared: Vec::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                what: "FabricEvent",
                tag,
            }),
        }
    }
}

wire_struct!(EventBatch { epoch, events });

impl Wire for FabricView {
    /// Encodes the view's five artifacts. The compiled logical rules and the
    /// cached switch set are *not* written: both are pure functions of the
    /// universe and are recompiled on decode, exactly as
    /// [`FabricView::apply`] does on a policy update — so a decoded view is
    /// bit-identical to the encoded one while the bytes stay proportional to
    /// the primary state.
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.universe_version());
        self.universe().encode(w);
        self.tcam().encode(w);
        self.change_log().encode(w);
        self.fault_log().encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let universe_version = r.get_u64()?;
        let universe = PolicyUniverse::decode(r)?;
        let tcam: BTreeMap<SwitchId, Vec<TcamRule>> = BTreeMap::decode(r)?;
        // A live view only ever holds TCAM state for switches that exist in
        // the universe ([`FabricView::apply`] rejects syncs for unknown
        // switches), so a payload with a stray table is forged or corrupt.
        // The subset may be strict: undeployed fabrics have no tables yet.
        let known: BTreeSet<SwitchId> = universe.switch_ids().into_iter().collect();
        if !tcam.keys().all(|s| known.contains(s)) {
            return Err(WireError::Invalid { what: "FabricView" });
        }
        let change_log = ChangeLog::decode(r)?;
        let fault_log = FaultLog::decode(r)?;
        Ok(FabricView::from_parts(
            universe_version,
            universe,
            tcam,
            change_log,
            fault_log,
        ))
    }
}

/// A [`FullSync`] is "a fresh [`FabricView`] shipped over the wire": its
/// encoding *is* the view's encoding (no extra framing), and every validation
/// the view decoder performs — stray TCAM tables, non-canonical collections —
/// applies unchanged. The wrapper type still matters at the API layer: a
/// consumer that receives one installs it wholesale via
/// [`FullSync::into_view`] instead of applying it as a delta.
impl Wire for FullSync {
    fn encode(&self, w: &mut WireWriter) {
        self.view().encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(FullSync::from_view(FabricView::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FabricProbe;
    use crate::fabric::Fabric;
    use scout_policy::sample;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value);
        let decoded: T = from_bytes(&bytes).expect("roundtrip decodes");
        assert_eq!(&decoded, value);
        // The decode→encode→decode fixpoint: canonical decoding means the
        // decoded value re-encodes to the exact bytes it arrived as, so no
        // two byte strings alias one value.
        assert_eq!(to_bytes(&decoded), bytes, "encoding is not a fixpoint");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u16::MAX);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&String::from("héllo wörld"));
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(42u32));
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&BTreeSet::from([1u64, 5, 9]));
        roundtrip(&BTreeMap::from([
            (1u32, String::from("a")),
            (2, String::from("b")),
        ]));
        roundtrip(&(7u32, String::from("pair")));
    }

    #[test]
    fn policy_types_roundtrip() {
        let universe = sample::three_tier();
        roundtrip(&universe);
        let fabric = {
            let mut f = Fabric::new(universe);
            f.deploy();
            f
        };
        roundtrip(&fabric.logical_rules().to_vec());
        roundtrip(&fabric.collect_tcam());
        for object in fabric.universe().all_objects() {
            roundtrip(&object);
        }
        roundtrip(&EpgPair::new(sample::APP, sample::WEB));
        roundtrip(&SwitchEpgPair::new(
            sample::S2,
            EpgPair::new(sample::APP, sample::DB),
        ));
    }

    #[test]
    fn logs_roundtrip_with_cleared_entries() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.disconnect_switch(sample::S2);
        fabric.repair_switch(sample::S2);
        assert!(!fabric.change_log().is_empty());
        assert!(!fabric.fault_log().is_empty());
        roundtrip(fabric.change_log());
        roundtrip(fabric.fault_log());
    }

    #[test]
    fn event_batches_roundtrip_for_every_mutation_class() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let mut probe = FabricProbe::new(&fabric);

        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric.disconnect_switch(sample::S3);
        let universe = fabric.universe().clone();
        fabric.update_policy(universe);
        fabric.repair_switch(sample::S3);

        let batch = EventBatch::new(1, probe.observe(&fabric));
        assert!(batch.len() >= 3, "all event kinds exercised: {batch:?}");
        roundtrip(&batch);
    }

    #[test]
    fn fabric_view_roundtrips_bit_identically() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric.disconnect_switch(sample::S1);
        let view = FabricView::of(&fabric);
        let bytes = to_bytes(&view);
        let decoded: FabricView = from_bytes(&bytes).expect("view decodes");
        assert_eq!(decoded, view);
        assert!(decoded.matches(&fabric));
        // Recompiled derived state agrees with the original.
        assert_eq!(decoded.logical_rules(), view.logical_rules());
        assert_eq!(decoded.switch_set(), view.switch_set());
    }

    #[test]
    fn full_sync_roundtrips_and_matches_view_encoding() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        fabric.disconnect_switch(sample::S1);
        let sync = FullSync::of(&fabric);
        roundtrip(&sync);
        // A FullSync is exactly its view on the wire: no extra framing.
        assert_eq!(to_bytes(&sync), to_bytes(sync.view()));
    }

    #[test]
    fn full_sync_rejects_truncation_and_stray_tcam() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let bytes = to_bytes(&FullSync::of(&fabric));
        assert!(matches!(
            from_bytes::<FullSync>(&bytes[..bytes.len() - 1]),
            Err(WireError::UnexpectedEof { .. })
        ));
        // Every FabricView validation applies: a view with a TCAM table for a
        // switch outside the topology is rejected through the wrapper too.
        let view = FabricView::of(&fabric);
        let mut w = WireWriter::new();
        w.put_u64(view.universe_version());
        view.universe().encode(&mut w);
        let mut tcam = view.tcam().clone();
        tcam.insert(SwitchId::new(9999), Vec::new());
        tcam.encode(&mut w);
        view.change_log().encode(&mut w);
        view.fault_log().encode(&mut w);
        assert_eq!(
            from_bytes::<FullSync>(&w.into_bytes()),
            Err(WireError::Invalid { what: "FabricView" })
        );
    }

    #[test]
    fn equal_values_encode_to_identical_bytes() {
        let mut a = Fabric::new(sample::three_tier());
        a.deploy();
        let view_a = FabricView::of(&a);
        let view_b = FabricView::of(&a);
        assert_eq!(to_bytes(&view_a), to_bytes(&view_b));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = to_bytes(&String::from("truncate me"));
        for cut in 0..bytes.len() {
            let err = from_bytes::<String>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::UnexpectedEof { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_tags_and_trailing_bytes_are_rejected() {
        assert_eq!(
            from_bytes::<Protocol>(&[9]),
            Err(WireError::InvalidTag {
                what: "Protocol",
                tag: 9
            })
        );
        assert_eq!(
            from_bytes::<bool>(&[2]),
            Err(WireError::InvalidTag {
                what: "bool",
                tag: 2
            })
        );
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert_eq!(
            from_bytes::<u32>(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
        // Errors render with context.
        let text = WireError::InvalidTag {
            what: "Protocol",
            tag: 9,
        }
        .to_string();
        assert!(text.contains("Protocol"));
    }

    #[test]
    fn invalid_universe_payload_fails_validation() {
        // An EPG referencing a missing VRF decodes structurally but must be
        // rejected by the builder re-validation.
        let mut w = WireWriter::new();
        Vec::<Tenant>::new().encode(&mut w);
        Vec::<Vrf>::new().encode(&mut w);
        vec![Epg::new(EpgId::new(1), "orphan", VrfId::new(9))].encode(&mut w);
        Vec::<Endpoint>::new().encode(&mut w);
        Vec::<Switch>::new().encode(&mut w);
        Vec::<Contract>::new().encode(&mut w);
        Vec::<Filter>::new().encode(&mut w);
        Vec::<ContractBinding>::new().encode(&mut w);
        let err = from_bytes::<PolicyUniverse>(&w.into_bytes()).unwrap_err();
        assert_eq!(
            err,
            WireError::Invalid {
                what: "PolicyUniverse"
            }
        );
    }

    #[test]
    fn inverted_port_range_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u16(10);
        w.put_u16(5);
        assert_eq!(
            from_bytes::<PortRange>(&w.into_bytes()),
            Err(WireError::Invalid { what: "PortRange" })
        );
    }

    #[test]
    fn unsorted_or_duplicate_set_elements_are_rejected() {
        // count = 2, elements 5 then 1: valid set contents, wrong order.
        let mut w = WireWriter::new();
        w.put_u64(2);
        w.put_u64(5);
        w.put_u64(1);
        assert_eq!(
            from_bytes::<BTreeSet<u64>>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "BTreeSet" })
        );
        // count = 2, element 5 twice: the old decoder collapsed this to {5}.
        let mut w = WireWriter::new();
        w.put_u64(2);
        w.put_u64(5);
        w.put_u64(5);
        assert_eq!(
            from_bytes::<BTreeSet<u64>>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "BTreeSet" })
        );
    }

    #[test]
    fn unsorted_or_duplicate_map_keys_are_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(2);
        w.put_u32(2); // key 2
        w.put_u32(20);
        w.put_u32(1); // key 1: out of order
        w.put_u32(10);
        assert_eq!(
            from_bytes::<BTreeMap<u32, u32>>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "BTreeMap" })
        );
        let mut w = WireWriter::new();
        w.put_u64(2);
        w.put_u32(1); // key 1
        w.put_u32(10);
        w.put_u32(1); // key 1 again: last-write-wins under the old decoder
        w.put_u32(11);
        assert_eq!(
            from_bytes::<BTreeMap<u32, u32>>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "BTreeMap" })
        );
    }

    #[test]
    fn denormalized_epg_pair_is_rejected() {
        // EpgPair::new(APP, WEB) normalizes so a <= b; swapped bytes decode
        // to the same value and must therefore be refused.
        let pair = EpgPair::new(sample::APP, sample::WEB);
        let mut w = WireWriter::new();
        pair.b.encode(&mut w);
        pair.a.encode(&mut w);
        assert_eq!(
            from_bytes::<EpgPair>(&w.into_bytes()),
            Err(WireError::NonCanonical { what: "EpgPair" })
        );
    }

    #[test]
    fn non_canonical_universe_lists_are_rejected() {
        let universe = sample::three_tier();
        let encode_with = |mutate: &dyn Fn(&mut Vec<Epg>, &mut Vec<ContractBinding>)| {
            let mut epgs: Vec<Epg> = universe.epgs().cloned().collect();
            let mut bindings = universe.bindings().to_vec();
            mutate(&mut epgs, &mut bindings);
            let mut w = WireWriter::new();
            universe
                .tenants()
                .cloned()
                .collect::<Vec<_>>()
                .encode(&mut w);
            universe.vrfs().cloned().collect::<Vec<_>>().encode(&mut w);
            epgs.encode(&mut w);
            universe
                .endpoints()
                .cloned()
                .collect::<Vec<_>>()
                .encode(&mut w);
            universe
                .switches()
                .cloned()
                .collect::<Vec<_>>()
                .encode(&mut w);
            universe
                .contracts()
                .cloned()
                .collect::<Vec<_>>()
                .encode(&mut w);
            universe
                .filters()
                .cloned()
                .collect::<Vec<_>>()
                .encode(&mut w);
            bindings.encode(&mut w);
            w.into_bytes()
        };

        // Unchanged lists decode fine (the harness below is sound).
        assert!(from_bytes::<PolicyUniverse>(&encode_with(&|_, _| {})).is_ok());

        // Out-of-order EPG list: the builder would accept and re-sort it.
        assert!(universe.epgs().count() >= 2);
        assert_eq!(
            from_bytes::<PolicyUniverse>(&encode_with(&|epgs, _| epgs.swap(0, 1))),
            Err(WireError::NonCanonical {
                what: "PolicyUniverse.epgs"
            })
        );

        // Duplicate binding: the builder would silently deduplicate it, so
        // the duplicated bytes would re-encode shorter than they arrived.
        assert!(!universe.bindings().is_empty());
        assert_eq!(
            from_bytes::<PolicyUniverse>(&encode_with(&|_, bindings| {
                bindings.insert(0, bindings[0]);
            })),
            Err(WireError::NonCanonical {
                what: "PolicyUniverse.bindings"
            })
        );
    }

    #[test]
    fn fabric_view_with_stray_tcam_table_is_rejected() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        let view = FabricView::of(&fabric);
        let mut w = WireWriter::new();
        w.put_u64(view.universe_version());
        view.universe().encode(&mut w);
        let mut tcam = view.tcam().clone();
        tcam.insert(SwitchId::new(9999), Vec::new());
        tcam.encode(&mut w);
        view.change_log().encode(&mut w);
        view.fault_log().encode(&mut w);
        assert_eq!(
            from_bytes::<FabricView>(&w.into_bytes()),
            Err(WireError::Invalid { what: "FabricView" })
        );
    }

    /// A minimal recursive wire type. No production type recurses today —
    /// decoding is type-directed, so nesting depth is bounded by the type —
    /// but the depth guard must hold for any future recursive payload.
    #[derive(Debug, PartialEq)]
    enum Chain {
        End,
        Link(Box<Chain>),
    }

    impl Wire for Chain {
        fn encode(&self, w: &mut WireWriter) {
            match self {
                Chain::End => w.put_u8(0),
                Chain::Link(next) => {
                    w.put_u8(1);
                    next.encode(w);
                }
            }
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            match r.get_u8()? {
                0 => Ok(Chain::End),
                1 => Ok(Chain::Link(Box::new(r.nested(Chain::decode)?))),
                tag => Err(WireError::InvalidTag { what: "Chain", tag }),
            }
        }
    }

    #[test]
    fn nesting_deeper_than_the_limit_is_rejected() {
        let chain_bytes = |links: usize| {
            let mut bytes = vec![1u8; links];
            bytes.push(0);
            bytes
        };
        // Exactly at the limit decodes.
        let deepest = from_bytes::<Chain>(&chain_bytes(WireReader::MAX_DEPTH));
        assert!(deepest.is_ok());
        // One level past it is a typed error, not a stack overflow.
        assert_eq!(
            from_bytes::<Chain>(&chain_bytes(WireReader::MAX_DEPTH + 1)),
            Err(WireError::TooDeep {
                limit: WireReader::MAX_DEPTH
            })
        );
    }

    #[test]
    fn huge_length_prefix_is_a_typed_error_without_preallocation() {
        // A u64::MAX element count with a near-empty body must fail with
        // UnexpectedEof after allocating at most `remaining` capacity.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(WireError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(WireError::UnexpectedEof { .. })
        ));
        assert!(matches!(
            from_bytes::<BTreeMap<u64, u64>>(&bytes),
            Err(WireError::UnexpectedEof { .. })
        ));
    }
}
