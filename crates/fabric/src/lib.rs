//! # scout-fabric
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! A deterministic simulator of the SDN fabric the SCOUT paper (ICDCS 2018)
//! evaluates on: a centralized controller, per-switch agents, and TCAM tables,
//! connected by control channels that can fail.
//!
//! The simulator reproduces the three-element deployment pipeline of §II of the
//! paper — global policy at the controller, local logical view at each switch
//! agent, and rendered TCAM rules — together with every failure mode the paper
//! lists in §II-B: control-channel disconnection, agent crashes mid-update,
//! TCAM overflow, TCAM corruption and silent rule eviction. It also produces
//! the two log streams SCOUT consumes: the controller *change log* and the
//! device/controller *fault log*.
//!
//! # Example
//!
//! ```
//! use scout_fabric::Fabric;
//! use scout_policy::sample;
//!
//! let mut fabric = Fabric::new(sample::three_tier());
//! let report = fabric.deploy();
//! assert_eq!(report.rules_applied, 12);
//! // Desired state (L-type rules) and actual state (T-type rules) agree.
//! assert_eq!(fabric.logical_rules_for(sample::S2).len(), 6);
//! assert_eq!(fabric.tcam_rules(sample::S2).len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod channel;
pub mod clock;
pub mod compiler;
pub mod event;
pub mod fabric;
pub mod instruction;
pub mod logs;
pub mod tcam;
pub mod wire;

pub use agent::{AgentHealth, ApplyOutcome, SwitchAgent};
pub use channel::{ControlChannel, LinkState};
pub use clock::{SimClock, Timestamp};
pub use compiler::{compile, compile_for_switch, rule_count_for_switch};
pub use event::{ApplyError, EventBatch, FabricEvent, FabricProbe, FabricView, FullSync};
pub use fabric::{diff_universes, DeploymentReport, Fabric, RepairReport};
pub use instruction::{Instruction, InstructionOp};
pub use logs::{
    ChangeAction, ChangeLog, ChangeLogEntry, FaultKind, FaultLog, FaultLogEntry, Severity,
};
pub use tcam::{CorruptionKind, TcamError, TcamTable};
pub use wire::{Wire, WireError, WireReader, WireWriter};
