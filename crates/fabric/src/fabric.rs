//! The fabric: controller, channels, agents and logs wired together.
//!
//! [`Fabric`] is the deterministic stand-in for the production environment the
//! paper evaluates on (APIC controller + Nexus switches). It owns the policy
//! universe, compiles and deploys it, keeps the controller change log and the
//! device/controller fault log, and exposes the fault-injection hooks used by
//! `scout-faults`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use scout_policy::{LogicalRule, ObjectId, PolicyUniverse, SwitchId, TcamRule};

use crate::agent::{ApplyOutcome, SwitchAgent};
use crate::channel::{ControlChannel, LinkState};
use crate::clock::{SimClock, Timestamp};
use crate::compiler;
use crate::instruction::Instruction;
use crate::logs::{ChangeAction, ChangeLog, FaultKind, FaultLog, Severity};
use crate::tcam::CorruptionKind;

/// Counters describing the outcome of one deployment round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeploymentReport {
    /// Instructions the controller attempted to send.
    pub instructions_sent: usize,
    /// Instructions that reached an agent.
    pub instructions_delivered: usize,
    /// Instructions fully applied (logical view + TCAM).
    pub rules_applied: usize,
    /// Instructions whose TCAM install was rejected (overflow).
    pub rules_rejected: usize,
    /// Instructions ignored because the agent had crashed.
    pub rules_ignored: usize,
}

impl DeploymentReport {
    /// Instructions lost in the control channel.
    pub fn lost_in_channel(&self) -> usize {
        self.instructions_sent - self.instructions_delivered
    }

    fn absorb(&mut self, other: DeploymentReport) {
        self.instructions_sent += other.instructions_sent;
        self.instructions_delivered += other.instructions_delivered;
        self.rules_applied += other.rules_applied;
        self.rules_rejected += other.rules_rejected;
        self.rules_ignored += other.rules_ignored;
    }
}

/// Counters describing the outcome of one repair action (see
/// [`Fabric::repair_switch`] and [`Fabric::reinstall_rules`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// TCAM entries removed because no compiled rule expects them (corrupted
    /// or stale garbage).
    pub garbage_removed: usize,
    /// Missing rules successfully re-installed into the TCAM.
    pub reinstalled: usize,
    /// Re-install instructions that failed (overflow, crash, channel loss).
    pub failed: usize,
    /// Active fault-log entries resolved by the repair.
    pub faults_cleared: usize,
}

impl RepairReport {
    /// Returns `true` if the repair changed nothing (nothing was broken, or
    /// nothing could be fixed).
    pub fn is_noop(&self) -> bool {
        *self == Self::default()
    }
}

/// Process-wide source of unique fabric identities (see [`Fabric::id`]).
static NEXT_FABRIC_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide source of unique policy-universe versions (see
/// [`Fabric::universe_version`]).
static NEXT_UNIVERSE_VERSION: AtomicU64 = AtomicU64::new(1);

/// The simulated fabric: policy universe + controller + switches.
#[derive(Debug)]
pub struct Fabric {
    id: u64,
    /// The fabric this one was cloned from, if any, together with the epoch at
    /// the moment of cloning (see [`Fabric::parent_id`]).
    parent: Option<(u64, u64)>,
    /// Process-unique version of the installed policy universe (see
    /// [`Fabric::universe_version`]).
    universe_version: u64,
    universe: PolicyUniverse,
    clock: SimClock,
    agents: BTreeMap<SwitchId, SwitchAgent>,
    channels: BTreeMap<SwitchId, ControlChannel>,
    change_log: ChangeLog,
    fault_log: FaultLog,
    logical_rules: Vec<LogicalRule>,
    /// Fault-log indices of currently-active switch-unreachable faults.
    unreachable_faults: BTreeMap<SwitchId, usize>,
    /// Monotonic counter bumped on every check-relevant mutation (TCAM change
    /// or logical-rule change).
    epoch: u64,
    /// Per-switch epoch of the last check-relevant mutation.
    tcam_versions: BTreeMap<SwitchId, u64>,
}

impl Clone for Fabric {
    /// Clones the full fabric state under a *fresh identity*.
    ///
    /// The clone diverges from the original from this point on, so giving it
    /// a new [`Fabric::id`] keeps incremental consumers (which cache state per
    /// fabric identity) from mixing the two histories up.
    fn clone(&self) -> Self {
        Self {
            id: NEXT_FABRIC_ID.fetch_add(1, Ordering::Relaxed),
            parent: Some((self.id, self.epoch)),
            universe_version: self.universe_version,
            universe: self.universe.clone(),
            clock: self.clock.clone(),
            agents: self.agents.clone(),
            channels: self.channels.clone(),
            change_log: self.change_log.clone(),
            fault_log: self.fault_log.clone(),
            logical_rules: self.logical_rules.clone(),
            unreachable_faults: self.unreachable_faults.clone(),
            epoch: self.epoch,
            tcam_versions: self.tcam_versions.clone(),
        }
    }
}

impl Fabric {
    /// Creates a fabric for `universe` with healthy agents and connected
    /// channels. Nothing is deployed yet.
    pub fn new(universe: PolicyUniverse) -> Self {
        let mut agents = BTreeMap::new();
        let mut channels = BTreeMap::new();
        for switch in universe.switches() {
            agents.insert(switch.id, SwitchAgent::new(switch.id, switch.tcam_capacity));
            channels.insert(switch.id, ControlChannel::new());
        }
        Self {
            id: NEXT_FABRIC_ID.fetch_add(1, Ordering::Relaxed),
            parent: None,
            universe_version: NEXT_UNIVERSE_VERSION.fetch_add(1, Ordering::Relaxed),
            universe,
            clock: SimClock::new(),
            agents,
            channels,
            change_log: ChangeLog::new(),
            fault_log: FaultLog::new(),
            logical_rules: Vec::new(),
            unreachable_faults: BTreeMap::new(),
            epoch: 0,
            tcam_versions: BTreeMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// A process-unique identity for this fabric instance.
    ///
    /// Clones receive a fresh id, so two fabrics with the same id are the same
    /// evolving network. Incremental consumers key their cached state on this.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the fabric this one was cloned from, if any.
    ///
    /// A clone starts as a bit-identical snapshot of its parent (same epoch,
    /// same per-switch versions), so a consumer holding state computed against
    /// the parent — e.g. an `AnalysisSession` in `scout-core` analyzing
    /// mutated clones — can keep using it for the clone:
    /// [`Fabric::dirty_switches_since`] with an epoch observed on the parent
    /// exactly covers the clone's divergence, provided the clone was taken at
    /// or after that epoch (see [`Fabric::parent_epoch`]).
    pub fn parent_id(&self) -> Option<u64> {
        self.parent.map(|(id, _)| id)
    }

    /// The parent's epoch at the moment this fabric was cloned from it.
    ///
    /// State computed against the parent at some epoch `e` is valid for this
    /// clone iff `parent_epoch() >= e`: everything the parent did up to the
    /// clone point is baked into this fabric's per-switch versions, and
    /// everything after the clone point never happened here.
    pub fn parent_epoch(&self) -> Option<u64> {
        self.parent.map(|(_, epoch)| epoch)
    }

    /// A process-unique version of the installed policy universe.
    ///
    /// Two fabrics with the same universe version are guaranteed to hold the
    /// same policy (clones share their parent's version until either side
    /// calls [`Fabric::update_policy`], which assigns a fresh one). Consumers
    /// deriving state from the universe alone — risk models, compiled object
    /// closures — key their caches on this.
    pub fn universe_version(&self) -> u64 {
        self.universe_version
    }

    /// The current change epoch: a monotonic counter bumped whenever a
    /// switch's TCAM contents or logical rule set changes.
    ///
    /// Together with [`Fabric::dirty_switches_since`] this lets a checker
    /// re-examine only what changed since a previous run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Switches whose TCAM contents or logical rule set changed after epoch
    /// `since` (exclusive).
    ///
    /// `dirty_switches_since(0)` returns every switch ever mutated; passing
    /// the epoch observed at the time of a previous check returns exactly the
    /// switches that check is stale for.
    pub fn dirty_switches_since(&self, since: u64) -> BTreeSet<SwitchId> {
        self.tcam_versions
            .iter()
            .filter(|(_, &v)| v > since)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Records a check-relevant mutation of `switch`.
    fn mark_dirty(&mut self, switch: SwitchId) {
        self.epoch += 1;
        self.tcam_versions.insert(switch, self.epoch);
    }

    /// The current policy universe (desired state).
    pub fn universe(&self) -> &PolicyUniverse {
        &self.universe
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advances simulated time by `ticks`.
    pub fn advance_time(&mut self, ticks: u64) -> Timestamp {
        self.clock.advance(ticks)
    }

    /// The logical (L-type) rules of the last compile, i.e. the desired
    /// per-switch rule sets.
    pub fn logical_rules(&self) -> &[LogicalRule] {
        &self.logical_rules
    }

    /// The logical rules destined for one switch.
    pub fn logical_rules_for(&self, switch: SwitchId) -> Vec<LogicalRule> {
        self.logical_rules
            .iter()
            .filter(|r| r.switch == switch)
            .copied()
            .collect()
    }

    /// The TCAM (T-type) rules currently rendered on `switch`.
    pub fn tcam_rules(&self, switch: SwitchId) -> Vec<TcamRule> {
        self.agents
            .get(&switch)
            .map(|a| a.tcam_rules())
            .unwrap_or_default()
    }

    /// Collects the TCAM rules of every switch, keyed by switch id.
    pub fn collect_tcam(&self) -> BTreeMap<SwitchId, Vec<TcamRule>> {
        self.agents
            .iter()
            .map(|(&id, agent)| (id, agent.tcam_rules()))
            .collect()
    }

    /// The controller's policy change log.
    pub fn change_log(&self) -> &ChangeLog {
        &self.change_log
    }

    /// The device/controller fault log.
    pub fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }

    /// Mutable access to the fault log, used by external fault injectors.
    pub fn fault_log_mut(&mut self) -> &mut FaultLog {
        &mut self.fault_log
    }

    /// Records an admin-initiated modification of `object` in the controller
    /// change log at time `t`. External drivers (e.g. fault injectors) use this
    /// to emulate out-of-band operations on policy objects.
    pub fn record_admin_change(&mut self, t: Timestamp, object: ObjectId, detail: &str) {
        self.change_log
            .record(t, object, ChangeAction::Modify, None, detail);
    }

    /// The agent running on `switch`, if any.
    pub fn agent(&self, switch: SwitchId) -> Option<&SwitchAgent> {
        self.agents.get(&switch)
    }

    /// The control channel towards `switch`, if any.
    pub fn channel(&self, switch: SwitchId) -> Option<&ControlChannel> {
        self.channels.get(&switch)
    }

    // ------------------------------------------------------------------
    // Deployment
    // ------------------------------------------------------------------

    /// Performs the initial full deployment of the policy: records creation
    /// entries in the change log for every policy object and pushes install
    /// instructions for every compiled rule.
    pub fn deploy(&mut self) -> DeploymentReport {
        let objects: Vec<ObjectId> = self
            .universe
            .all_objects()
            .into_iter()
            .filter(|o| !o.is_switch())
            .collect();
        for object in objects {
            let t = self.clock.tick();
            self.change_log
                .record(t, object, ChangeAction::Create, None, "initial deployment");
        }
        self.logical_rules = compiler::compile(&self.universe);
        // Every switch's expected rule set just changed from "nothing" to the
        // compiled policy, so every switch needs (re-)checking.
        let switches: Vec<SwitchId> = self
            .agents
            .keys()
            .copied()
            .chain(self.logical_rules.iter().map(|r| r.switch))
            .collect();
        for switch in switches {
            self.mark_dirty(switch);
        }
        let instructions: Vec<Instruction> = self
            .logical_rules
            .iter()
            .map(|&rule| Instruction::install(rule))
            .collect();
        self.push(&instructions)
    }

    /// Replaces the policy with `new_universe`, records the object-level
    /// differences in the change log and pushes the incremental rule updates.
    pub fn update_policy(&mut self, new_universe: PolicyUniverse) -> DeploymentReport {
        let changes = diff_universes(&self.universe, &new_universe);
        for (object, action, detail) in changes {
            let t = self.clock.tick();
            self.change_log.record(t, object, action, None, detail);
        }

        // Add agents/channels for new switches, drop removed ones.
        let new_switches: BTreeSet<SwitchId> = new_universe.switch_ids().into_iter().collect();
        for switch in new_universe.switches() {
            self.agents
                .entry(switch.id)
                .or_insert_with(|| SwitchAgent::new(switch.id, switch.tcam_capacity));
            self.channels.entry(switch.id).or_default();
        }
        self.agents.retain(|id, _| new_switches.contains(id));
        self.channels.retain(|id, _| new_switches.contains(id));
        self.unreachable_faults
            .retain(|id, _| new_switches.contains(id));
        // Removed switches vanish from check results via the current switch
        // set; keeping their versions around would only leak entries.
        self.tcam_versions.retain(|id, _| new_switches.contains(id));

        let old_rules: BTreeSet<LogicalRule> = self.logical_rules.iter().copied().collect();
        let new_rules_vec = compiler::compile(&new_universe);
        let new_rules: BTreeSet<LogicalRule> = new_rules_vec.iter().copied().collect();

        let mut instructions = Vec::new();
        for &removed in old_rules.difference(&new_rules) {
            instructions.push(Instruction::remove(removed));
        }
        for &added in new_rules.difference(&old_rules) {
            instructions.push(Instruction::install(added));
        }

        // A switch's expected rule set changed iff some rule in the symmetric
        // difference targets it; those switches need re-checking even when the
        // corresponding instruction never reaches the hardware. Switches that
        // left the network are excluded — they were pruned from the version
        // map above and must not be re-inserted as ghosts.
        let changed: BTreeSet<SwitchId> = old_rules
            .symmetric_difference(&new_rules)
            .map(|r| r.switch)
            .filter(|s| new_switches.contains(s))
            .collect();
        for switch in changed {
            self.mark_dirty(switch);
        }

        self.universe = new_universe;
        self.universe_version = NEXT_UNIVERSE_VERSION.fetch_add(1, Ordering::Relaxed);
        self.logical_rules = new_rules_vec;
        self.push(&instructions)
    }

    /// Re-pushes every compiled rule (a "full sync"), without touching the
    /// change log. Useful to repair drift after faults are fixed.
    pub fn resync(&mut self) -> DeploymentReport {
        let instructions: Vec<Instruction> = self
            .logical_rules
            .iter()
            .map(|&rule| Instruction::install(rule))
            .collect();
        self.push(&instructions)
    }

    fn push(&mut self, instructions: &[Instruction]) -> DeploymentReport {
        let mut report = DeploymentReport::default();
        for &instruction in instructions {
            let switch = instruction.rule.switch;
            let mut single = DeploymentReport {
                instructions_sent: 1,
                ..DeploymentReport::default()
            };
            let now = self.clock.tick();
            let delivered = self
                .channels
                .get_mut(&switch)
                .and_then(|ch| ch.transmit(instruction));
            if let Some(instruction) = delivered {
                single.instructions_delivered = 1;
                if let Some(agent) = self.agents.get_mut(&switch) {
                    match agent.apply(instruction, now, &mut self.fault_log) {
                        ApplyOutcome::Applied => single.rules_applied = 1,
                        ApplyOutcome::TcamRejected => single.rules_rejected = 1,
                        ApplyOutcome::IgnoredCrashed => single.rules_ignored = 1,
                    }
                }
                if single.rules_applied == 1 {
                    self.mark_dirty(switch);
                }
            }
            report.absorb(single);
        }
        report
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks
    // ------------------------------------------------------------------

    /// Disconnects the control channel to `switch` and raises a
    /// [`FaultKind::SwitchUnreachable`] fault (as the controller's keep-alive
    /// detection would).
    pub fn disconnect_switch(&mut self, switch: SwitchId) {
        if let Some(ch) = self.channels.get_mut(&switch) {
            ch.set_state(LinkState::Disconnected);
            let t = self.clock.tick();
            let idx = self.fault_log.raise(
                t,
                Some(switch),
                FaultKind::SwitchUnreachable,
                Severity::Critical,
                format!("{switch} stopped responding to the controller"),
            );
            self.unreachable_faults.insert(switch, idx);
        }
    }

    /// Reconnects the control channel to `switch` and clears the corresponding
    /// unreachable fault, if one is active.
    pub fn reconnect_switch(&mut self, switch: SwitchId) {
        if let Some(ch) = self.channels.get_mut(&switch) {
            ch.set_state(LinkState::Connected);
            let t = self.clock.tick();
            if let Some(idx) = self.unreachable_faults.remove(&switch) {
                self.fault_log.clear(idx, t);
            }
        }
    }

    /// Degrades the channel to `switch` so that every `drop_modulo`-th
    /// instruction is lost, and raises a [`FaultKind::ChannelDegraded`] fault.
    pub fn degrade_channel(&mut self, switch: SwitchId, drop_modulo: u64) {
        if let Some(ch) = self.channels.get_mut(&switch) {
            ch.set_state(LinkState::Degraded { drop_modulo });
            let t = self.clock.tick();
            self.fault_log.raise(
                t,
                Some(switch),
                FaultKind::ChannelDegraded,
                Severity::Warning,
                format!("control channel to {switch} dropping instructions"),
            );
        }
    }

    /// Crashes the agent on `switch` immediately, raising an
    /// [`FaultKind::AgentCrash`] fault.
    pub fn crash_agent(&mut self, switch: SwitchId) {
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.crash();
            let t = self.clock.tick();
            self.fault_log.raise(
                t,
                Some(switch),
                FaultKind::AgentCrash,
                Severity::Critical,
                format!("agent on {switch} crashed"),
            );
        }
    }

    /// Makes the agent on `switch` crash after applying `n` more instructions
    /// (the fault entry is raised when the crash actually happens).
    pub fn crash_agent_after(&mut self, switch: SwitchId, n: u64) {
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.crash_after(n);
        }
    }

    /// Restarts a crashed agent.
    pub fn restart_agent(&mut self, switch: SwitchId) {
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.restart();
        }
    }

    /// Corrupts the TCAM entry at `index` on `switch` (silently — TCAM
    /// corruption produces no fault log, as in §V-B of the paper).
    pub fn corrupt_tcam(
        &mut self,
        switch: SwitchId,
        index: usize,
        kind: CorruptionKind,
    ) -> Option<(TcamRule, TcamRule)> {
        let corrupted = self
            .agents
            .get_mut(&switch)
            .and_then(|a| a.tcam_mut().corrupt(index, kind));
        if corrupted.is_some() {
            self.mark_dirty(switch);
        }
        corrupted
    }

    /// Evicts the oldest `n` TCAM entries on `switch`. When `log` is true a
    /// [`FaultKind::RuleEviction`] fault is raised; otherwise the eviction is
    /// silent (the controller stays unaware, per §II-B).
    pub fn evict_tcam(&mut self, switch: SwitchId, n: usize, log: bool) -> Vec<TcamRule> {
        let evicted = self
            .agents
            .get_mut(&switch)
            .map(|a| a.tcam_mut().evict_oldest(n))
            .unwrap_or_default();
        if !evicted.is_empty() {
            self.mark_dirty(switch);
        }
        if log && !evicted.is_empty() {
            let t = self.clock.tick();
            self.fault_log.raise(
                t,
                Some(switch),
                FaultKind::RuleEviction,
                Severity::Warning,
                format!("{} rules evicted from {switch}", evicted.len()),
            );
        }
        evicted
    }

    // ------------------------------------------------------------------
    // Repair hooks
    // ------------------------------------------------------------------

    /// Fully repairs `switch`: reconnects its control channel, restarts a
    /// crashed agent, resolves the switch's still-active fault-log entries,
    /// removes TCAM entries no compiled rule expects (corrupted or stale
    /// garbage) and re-installs the switch's missing logical rules.
    ///
    /// A [`FaultKind::Repair`] audit event is recorded (pre-cleared, so it can
    /// never be mistaken for an active fault by correlation). The change log
    /// is untouched — a repair restores the deployed state, it is not a policy
    /// change. Re-installs can still fail (e.g. a genuinely full TCAM); the
    /// returned [`RepairReport`] says what happened.
    pub fn repair_switch(&mut self, switch: SwitchId) -> RepairReport {
        if !self.agents.contains_key(&switch) {
            return RepairReport::default();
        }
        let mut report = RepairReport::default();

        // Control plane first: a repaired switch must be reachable again and
        // its agent running, or the rule re-installs below would be lost.
        self.reconnect_switch(switch);
        if let Some(agent) = self.agents.get_mut(&switch) {
            agent.restart();
            agent.reset_overflow_latch();
        }
        let t = self.clock.tick();
        report.faults_cleared = self.fault_log.clear_active_for_switch(switch, t);

        // Data plane: drop garbage, then close the gap to the compiled policy.
        let expected: BTreeSet<TcamRule> = self
            .logical_rules
            .iter()
            .filter(|r| r.switch == switch)
            .map(|r| r.rule)
            .collect();
        report.garbage_removed = self
            .remove_tcam_rules_where(switch, |r| !expected.contains(r))
            .len();
        let present: BTreeSet<TcamRule> = self.tcam_rules(switch).into_iter().collect();
        let instructions: Vec<Instruction> = self
            .logical_rules
            .iter()
            .filter(|r| r.switch == switch && !present.contains(&r.rule))
            .map(|&rule| Instruction::install(rule))
            .collect();
        let pushed = self.push(&instructions);
        report.reinstalled = pushed.rules_applied;
        report.failed = pushed.instructions_sent - pushed.rules_applied;

        let t = self.clock.tick();
        self.fault_log.record_repair(
            t,
            Some(switch),
            format!(
                "repaired {switch}: {} garbage entries removed, {} rules re-installed",
                report.garbage_removed, report.reinstalled
            ),
        );
        report
    }

    /// Re-installs a specific set of logical rules — the repair counterpart of
    /// a silent object-level deployment failure: the controller re-pushes
    /// exactly the rules that were lost.
    ///
    /// Rules no longer in the compiled policy (e.g. removed by a later policy
    /// edit) are skipped; nothing is removed. A [`FaultKind::Repair`] audit
    /// event is recorded when any instruction is pushed.
    pub fn reinstall_rules(&mut self, rules: &[LogicalRule]) -> RepairReport {
        let current: BTreeSet<LogicalRule> = self.logical_rules.iter().copied().collect();
        let instructions: Vec<Instruction> = rules
            .iter()
            .filter(|r| current.contains(r))
            .map(|&rule| Instruction::install(rule))
            .collect();
        if instructions.is_empty() {
            return RepairReport::default();
        }
        let pushed = self.push(&instructions);
        let report = RepairReport {
            garbage_removed: 0,
            reinstalled: pushed.rules_applied,
            failed: pushed.instructions_sent - pushed.rules_applied,
            faults_cleared: 0,
        };
        let t = self.clock.tick();
        self.fault_log.record_repair(
            t,
            None,
            format!(
                "re-installed {} of {} lost rules",
                report.reinstalled,
                rules.len()
            ),
        );
        report
    }

    /// Silently removes every TCAM rule on `switch` matching `predicate`
    /// (no fault log), used to emulate arbitrary object deployment failures.
    pub fn remove_tcam_rules_where<F: FnMut(&TcamRule) -> bool>(
        &mut self,
        switch: SwitchId,
        predicate: F,
    ) -> Vec<TcamRule> {
        let removed = self
            .agents
            .get_mut(&switch)
            .map(|a| a.tcam_mut().remove_where(predicate))
            .unwrap_or_default();
        if !removed.is_empty() {
            self.mark_dirty(switch);
        }
        removed
    }
}

/// Computes the object-level difference between two policy universes, in the
/// form the controller change log records it.
pub fn diff_universes(
    old: &PolicyUniverse,
    new: &PolicyUniverse,
) -> Vec<(ObjectId, ChangeAction, String)> {
    let mut changes = Vec::new();

    let old_objects: BTreeSet<ObjectId> = old
        .all_objects()
        .into_iter()
        .filter(|o| !o.is_switch())
        .collect();
    let new_objects: BTreeSet<ObjectId> = new
        .all_objects()
        .into_iter()
        .filter(|o| !o.is_switch())
        .collect();

    for &created in new_objects.difference(&old_objects) {
        changes.push((created, ChangeAction::Create, "object created".to_string()));
    }
    for &deleted in old_objects.difference(&new_objects) {
        changes.push((deleted, ChangeAction::Delete, "object deleted".to_string()));
    }

    // Modified filters: entry lists differ.
    for filter in new.filters() {
        if let Some(old_filter) = old.filter(filter.id) {
            if old_filter.entries != filter.entries {
                changes.push((
                    ObjectId::Filter(filter.id),
                    ChangeAction::Modify,
                    "filter entries changed".to_string(),
                ));
            }
        }
    }
    // Modified contracts: filter lists differ.
    for contract in new.contracts() {
        if let Some(old_contract) = old.contract(contract.id) {
            if old_contract.filters != contract.filters {
                changes.push((
                    ObjectId::Contract(contract.id),
                    ChangeAction::Modify,
                    "contract filter list changed".to_string(),
                ));
            }
        }
    }
    // Modified EPGs: VRF membership changed.
    for epg in new.epgs() {
        if let Some(old_epg) = old.epg(epg.id) {
            if old_epg.vrf != epg.vrf {
                changes.push((
                    ObjectId::Epg(epg.id),
                    ChangeAction::Modify,
                    "epg moved to a different vrf".to_string(),
                ));
            }
        }
    }
    // Binding changes are recorded against the contract.
    let old_bindings: BTreeSet<_> = old.bindings().iter().copied().collect();
    let new_bindings: BTreeSet<_> = new.bindings().iter().copied().collect();
    let mut touched_contracts = BTreeSet::new();
    for binding in old_bindings.symmetric_difference(&new_bindings) {
        if old.contract(binding.contract).is_some() && new.contract(binding.contract).is_some() {
            touched_contracts.insert(binding.contract);
        }
    }
    for contract in touched_contracts {
        changes.push((
            ObjectId::Contract(contract),
            ChangeAction::Modify,
            "contract bindings changed".to_string(),
        ));
    }

    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::{sample, Contract, Filter, FilterEntry, PortRange, Protocol};
    use scout_policy::{ContractId, FilterId};

    fn deployed_three_tier() -> Fabric {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.deploy();
        fabric
    }

    #[test]
    fn deploy_renders_expected_tcam_rules() {
        let fabric = deployed_three_tier();
        assert_eq!(fabric.tcam_rules(sample::S1).len(), 2);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 6);
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 4);
        assert_eq!(fabric.logical_rules().len(), 12);
        assert_eq!(fabric.logical_rules_for(sample::S2).len(), 6);
    }

    #[test]
    fn deploy_records_create_change_entries() {
        let fabric = deployed_three_tier();
        // 1 vrf + 3 epgs + 2 contracts + 2 filters = 8 creation entries.
        assert_eq!(fabric.change_log().len(), 8);
        assert!(fabric
            .change_log()
            .entries()
            .iter()
            .all(|e| e.action == ChangeAction::Create));
    }

    #[test]
    fn healthy_deployment_reports_full_delivery() {
        let mut fabric = Fabric::new(sample::three_tier());
        let report = fabric.deploy();
        assert_eq!(report.instructions_sent, 12);
        assert_eq!(report.instructions_delivered, 12);
        assert_eq!(report.rules_applied, 12);
        assert_eq!(report.rules_rejected, 0);
        assert_eq!(report.lost_in_channel(), 0);
        assert!(fabric.fault_log().is_empty());
    }

    #[test]
    fn disconnected_switch_receives_nothing_and_raises_fault() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        let report = fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 0);
        assert_eq!(fabric.tcam_rules(sample::S1).len(), 2);
        assert_eq!(report.lost_in_channel(), 6);
        let faults = fabric
            .fault_log()
            .entries_of_kind(FaultKind::SwitchUnreachable);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].switch, Some(sample::S2));
        // Reconnect clears the fault and a resync repairs the switch.
        fabric.reconnect_switch(sample::S2);
        assert!(fabric.fault_log().entries()[0].cleared_at.is_some());
        fabric.resync();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 6);
    }

    #[test]
    fn tcam_overflow_limits_installed_rules() {
        let mut fabric = Fabric::new(sample::three_tier_with_capacity(3));
        let report = fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 3);
        assert_eq!(report.rules_rejected, 3 + 1); // S2 rejects 3, S3 rejects 1
        assert!(!fabric
            .fault_log()
            .entries_of_kind(FaultKind::TcamOverflow)
            .is_empty());
    }

    #[test]
    fn crashed_agent_ignores_deployment() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.crash_agent(sample::S3);
        let report = fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 0);
        assert_eq!(report.rules_ignored, 4);
        assert_eq!(
            fabric
                .fault_log()
                .entries_of_kind(FaultKind::AgentCrash)
                .len(),
            1
        );
        fabric.restart_agent(sample::S3);
        fabric.resync();
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 4);
    }

    #[test]
    fn crash_after_applies_only_a_prefix() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.crash_agent_after(sample::S2, 2);
        fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 2);
        assert!(fabric.agent(sample::S2).unwrap().is_crashed());
    }

    #[test]
    fn corruption_and_eviction_change_tcam_silently() {
        let mut fabric = deployed_three_tier();
        let faults_before = fabric.fault_log().len();
        let (orig, corrupted) = fabric
            .corrupt_tcam(sample::S2, 0, CorruptionKind::VrfBit)
            .unwrap();
        assert_ne!(orig, corrupted);
        assert_eq!(fabric.fault_log().len(), faults_before);
        let evicted = fabric.evict_tcam(sample::S2, 2, false);
        assert_eq!(evicted.len(), 2);
        assert_eq!(fabric.fault_log().len(), faults_before);
        // Logged eviction raises a fault.
        let evicted = fabric.evict_tcam(sample::S2, 1, true);
        assert_eq!(evicted.len(), 1);
        assert_eq!(
            fabric
                .fault_log()
                .entries_of_kind(FaultKind::RuleEviction)
                .len(),
            1
        );
    }

    #[test]
    fn remove_tcam_rules_where_is_silent() {
        let mut fabric = deployed_three_tier();
        let removed = fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        assert_eq!(removed.len(), 2);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 4);
        assert!(fabric.fault_log().is_empty());
    }

    fn three_tier_with_extra_filter() -> PolicyUniverse {
        // Same policy, but the App-DB contract gains a port-8443 filter.
        let mut b = PolicyUniverse::builder();
        let base = sample::three_tier();
        for t in base.tenants() {
            b.tenant(t.clone());
        }
        for v in base.vrfs() {
            b.vrf(v.clone());
        }
        for e in base.epgs() {
            b.epg(e.clone());
        }
        for s in base.switches() {
            b.switch(s.clone());
        }
        for ep in base.endpoints() {
            b.endpoint(ep.clone());
        }
        for f in base.filters() {
            b.filter(f.clone());
        }
        let new_filter = Filter::new(
            FilterId::new(50),
            "port-8443",
            vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(8443))],
        );
        b.filter(new_filter);
        for c in base.contracts() {
            if c.id == sample::C_APP_DB {
                let mut filters = c.filters.clone();
                filters.push(FilterId::new(50));
                b.contract(Contract::new(c.id, c.name.clone(), filters));
            } else {
                b.contract(c.clone());
            }
        }
        for binding in base.bindings() {
            b.bind(*binding);
        }
        b.build().unwrap()
    }

    #[test]
    fn update_policy_pushes_incremental_rules_and_logs_changes() {
        let mut fabric = deployed_three_tier();
        let before = fabric.change_log().len();
        let report = fabric.update_policy(three_tier_with_extra_filter());
        // New filter adds 2 rules on S2 and 2 on S3.
        assert_eq!(report.instructions_sent, 4);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 8);
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 6);
        let new_entries = &fabric.change_log().entries()[before..];
        // Creation of the new filter + modification of the App-DB contract.
        assert!(new_entries
            .iter()
            .any(|e| e.object == ObjectId::Filter(FilterId::new(50))
                && e.action == ChangeAction::Create));
        assert!(new_entries
            .iter()
            .any(|e| e.object == ObjectId::Contract(sample::C_APP_DB)
                && e.action == ChangeAction::Modify));
        // Unrelated objects are not marked as changed.
        assert!(!new_entries
            .iter()
            .any(|e| e.object == ObjectId::Contract(sample::C_WEB_APP)));
    }

    #[test]
    fn diff_universes_detects_deletion() {
        let old = three_tier_with_extra_filter();
        let new = sample::three_tier();
        let changes = diff_universes(&old, &new);
        assert!(changes.iter().any(
            |(o, a, _)| *o == ObjectId::Filter(FilterId::new(50)) && *a == ChangeAction::Delete
        ));
        assert!(changes
            .iter()
            .any(|(o, a, _)| *o == ObjectId::Contract(ContractId::new(2))
                && *a == ChangeAction::Modify));
    }

    #[test]
    fn diff_of_identical_universes_is_empty() {
        let u = sample::three_tier();
        assert!(diff_universes(&u, &u).is_empty());
    }

    #[test]
    fn deploy_marks_every_switch_dirty() {
        let mut fabric = Fabric::new(sample::three_tier());
        assert_eq!(fabric.epoch(), 0);
        assert!(fabric.dirty_switches_since(0).is_empty());
        fabric.deploy();
        assert!(fabric.epoch() > 0);
        assert_eq!(
            fabric.dirty_switches_since(0),
            BTreeSet::from([sample::S1, sample::S2, sample::S3])
        );
    }

    #[test]
    fn targeted_mutations_dirty_only_their_switch() {
        let mut fabric = deployed_three_tier();
        let checkpoint = fabric.epoch();
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        assert_eq!(
            fabric.dirty_switches_since(checkpoint),
            BTreeSet::from([sample::S2])
        );
        let checkpoint = fabric.epoch();
        fabric
            .corrupt_tcam(sample::S1, 0, CorruptionKind::VrfBit)
            .unwrap();
        fabric.evict_tcam(sample::S3, 1, false);
        assert_eq!(
            fabric.dirty_switches_since(checkpoint),
            BTreeSet::from([sample::S1, sample::S3])
        );
    }

    #[test]
    fn no_op_mutations_do_not_dirty() {
        let mut fabric = deployed_three_tier();
        let checkpoint = fabric.epoch();
        // Predicate matches nothing; out-of-range corruption; zero eviction.
        fabric.remove_tcam_rules_where(sample::S2, |_| false);
        assert!(fabric
            .corrupt_tcam(sample::S2, 999, CorruptionKind::VrfBit)
            .is_none());
        fabric.evict_tcam(sample::S2, 0, false);
        assert_eq!(fabric.epoch(), checkpoint);
        assert!(fabric.dirty_switches_since(checkpoint).is_empty());
    }

    #[test]
    fn update_policy_dirties_switches_with_changed_rules() {
        let mut fabric = deployed_three_tier();
        let checkpoint = fabric.epoch();
        fabric.update_policy(three_tier_with_extra_filter());
        // The new filter adds rules on S2 and S3 only.
        assert_eq!(
            fabric.dirty_switches_since(checkpoint),
            BTreeSet::from([sample::S2, sample::S3])
        );
    }

    #[test]
    fn lost_instructions_still_dirty_the_switch() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.deploy();
        // S2 received nothing, but its expected rule set changed: a checker
        // trusting the dirty set must re-examine it to see the divergence.
        assert!(fabric.dirty_switches_since(0).contains(&sample::S2));
    }

    #[test]
    fn clones_get_fresh_identities() {
        let fabric = deployed_three_tier();
        let clone = fabric.clone();
        assert_ne!(fabric.id(), clone.id());
        assert_eq!(fabric.epoch(), clone.epoch());
    }

    #[test]
    fn clones_remember_their_parent() {
        let fabric = deployed_three_tier();
        assert_eq!(fabric.parent_id(), None);
        assert_eq!(fabric.parent_epoch(), None);
        let clone = fabric.clone();
        assert_eq!(clone.parent_id(), Some(fabric.id()));
        assert_eq!(clone.parent_epoch(), Some(fabric.epoch()));
        // A clone of a clone points at the intermediate fabric, not the root.
        let grandchild = clone.clone();
        assert_eq!(grandchild.parent_id(), Some(clone.id()));
        // The clone point survives the clone's own mutations.
        let mut busy = fabric.clone();
        let at_clone = busy.parent_epoch().unwrap();
        busy.remove_tcam_rules_where(sample::S2, |_| true);
        assert_eq!(busy.parent_epoch(), Some(at_clone));
        assert!(busy.epoch() > at_clone);
    }

    #[test]
    fn universe_version_tracks_policy_changes_only() {
        let mut fabric = Fabric::new(sample::three_tier());
        let v0 = fabric.universe_version();
        // Deployment and TCAM mutations keep the same policy.
        fabric.deploy();
        fabric.remove_tcam_rules_where(sample::S2, |_| true);
        assert_eq!(fabric.universe_version(), v0);
        // Clones share the parent's version.
        let clone = fabric.clone();
        assert_eq!(clone.universe_version(), v0);
        // A policy update assigns a fresh version; the clone keeps the old one.
        fabric.update_policy(three_tier_with_extra_filter());
        assert_ne!(fabric.universe_version(), v0);
        assert_eq!(clone.universe_version(), v0);
        // Distinct fresh fabrics never share a version, even for equal policies.
        let other = Fabric::new(sample::three_tier());
        assert_ne!(other.universe_version(), v0);
    }

    #[test]
    fn repair_switch_restores_a_corrupted_and_evicted_tcam() {
        let mut fabric = deployed_three_tier();
        let pristine_tcam = fabric.tcam_rules(sample::S2);
        fabric
            .corrupt_tcam(sample::S2, 5, CorruptionKind::ActionFlip)
            .unwrap();
        fabric.evict_tcam(sample::S2, 2, false);
        assert_ne!(fabric.tcam_rules(sample::S2), pristine_tcam);

        let checkpoint = fabric.epoch();
        let report = fabric.repair_switch(sample::S2);
        // One corrupted garbage entry removed; corrupted + 2 evicted re-added.
        assert_eq!(report.garbage_removed, 1);
        assert_eq!(report.reinstalled, 3);
        assert_eq!(report.failed, 0);
        let repaired: BTreeSet<TcamRule> = fabric.tcam_rules(sample::S2).into_iter().collect();
        let expected: BTreeSet<TcamRule> = pristine_tcam.iter().copied().collect();
        assert_eq!(repaired, expected);
        // The repair dirtied the switch, so an incremental checker re-examines it.
        assert!(fabric
            .dirty_switches_since(checkpoint)
            .contains(&sample::S2));
        // An audit event exists and is pre-cleared.
        let repairs = fabric.fault_log().entries_of_kind(FaultKind::Repair);
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].cleared_at.is_some());
    }

    #[test]
    fn repair_switch_heals_control_plane_faults() {
        let mut fabric = Fabric::new(sample::three_tier());
        fabric.disconnect_switch(sample::S2);
        fabric.crash_agent(sample::S3);
        fabric.deploy();
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 0);
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 0);

        let r2 = fabric.repair_switch(sample::S2);
        let r3 = fabric.repair_switch(sample::S3);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 6);
        assert_eq!(fabric.tcam_rules(sample::S3).len(), 4);
        assert_eq!(r2.reinstalled, 6);
        assert_eq!(r3.reinstalled, 4);
        // The disconnect fault was cleared by the reconnect, the crash fault
        // by the repair's fault sweep; nothing stays active.
        assert!(r3.faults_cleared >= 1);
        assert!(!fabric.agent(sample::S3).unwrap().is_crashed());
        assert!(fabric.fault_log().active_at(fabric.now()).is_empty());
    }

    #[test]
    fn repair_of_a_healthy_or_unknown_switch_is_a_noop() {
        let mut fabric = deployed_three_tier();
        let tcam_before = fabric.collect_tcam();
        let report = fabric.repair_switch(sample::S1);
        assert_eq!(report.garbage_removed, 0);
        assert_eq!(report.reinstalled, 0);
        assert_eq!(fabric.collect_tcam(), tcam_before);
        // Unknown switch: nothing happens, not even an audit event.
        let log_len = fabric.fault_log().len();
        let report = fabric.repair_switch(SwitchId::new(999));
        assert!(report.is_noop());
        assert_eq!(fabric.fault_log().len(), log_len);
    }

    #[test]
    fn reinstall_rules_restores_exactly_the_lost_rules() {
        let mut fabric = deployed_three_tier();
        let lost: Vec<LogicalRule> = fabric
            .logical_rules()
            .iter()
            .filter(|r| r.switch == sample::S2 && r.rule.matcher.ports.start == 700)
            .copied()
            .collect();
        assert_eq!(lost.len(), 2);
        fabric.remove_tcam_rules_where(sample::S2, |r| r.matcher.ports.start == 700);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 4);

        let report = fabric.reinstall_rules(&lost);
        assert_eq!(report.reinstalled, 2);
        assert_eq!(report.failed, 0);
        assert_eq!(fabric.tcam_rules(sample::S2).len(), 6);
        assert_eq!(
            fabric.fault_log().entries_of_kind(FaultKind::Repair).len(),
            1
        );
        // Rules that left the compiled policy are skipped entirely.
        let stale = vec![lost[0]];
        fabric.update_policy(sample::three_tier()); // no-op diff, same rules
        let mut not_compiled = stale.clone();
        not_compiled[0].rule.matcher.ports.start = 9999;
        let report = fabric.reinstall_rules(&not_compiled);
        assert!(report.is_noop());
    }

    #[test]
    fn reinstall_through_a_dead_channel_reports_failure() {
        let mut fabric = deployed_three_tier();
        let lost: Vec<LogicalRule> = fabric.logical_rules_for(sample::S3);
        fabric.remove_tcam_rules_where(sample::S3, |_| true);
        fabric.disconnect_switch(sample::S3);
        let report = fabric.reinstall_rules(&lost);
        assert_eq!(report.reinstalled, 0);
        assert_eq!(report.failed, lost.len());
        assert!(fabric.tcam_rules(sample::S3).is_empty());
    }

    #[test]
    fn time_advances_with_activity() {
        let mut fabric = Fabric::new(sample::three_tier());
        let t0 = fabric.now();
        fabric.deploy();
        assert!(fabric.now() > t0);
        let t1 = fabric.now();
        fabric.advance_time(100);
        assert_eq!(fabric.now(), t1.plus(100));
    }
}
