//! Production-cluster-like policy generator.
//!
//! The paper's simulation dataset comes from a production cluster with about
//! 30 Nexus switches, one APIC and hundreds of servers, containing 6 VRFs,
//! 615 EPGs, 386 contracts and 160 filters (§VI-A). The generator here is
//! calibrated to the published object counts and to the qualitative shape of
//! the object-sharing CDF of Figure 3:
//!
//! * most VRFs are shared by more than 100 EPG pairs, with a heavy tail
//!   reaching beyond 10,000 pairs;
//! * about half of the EPGs participate in more than 100 pairs;
//! * most switches carry 1,000s of EPG pairs;
//! * 70–80% of filters and contracts serve fewer than 10 pairs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scout_policy::{
    Contract, ContractBinding, ContractId, Endpoint, EndpointId, Epg, EpgId, Filter, FilterEntry,
    FilterId, PolicyUniverse, PortRange, Protocol, Switch, SwitchId, Tenant, TenantId, Vrf, VrfId,
};

/// Parameters of the cluster-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of VRFs.
    pub vrfs: usize,
    /// Number of EPGs.
    pub epgs: usize,
    /// Number of contracts.
    pub contracts: usize,
    /// Number of filters.
    pub filters: usize,
    /// Number of leaf switches.
    pub switches: usize,
    /// Endpoints per EPG (uniform in `1..=max_endpoints_per_epg`).
    pub max_endpoints_per_epg: usize,
    /// Fraction of contracts with a heavy consumer fan-out (the Figure 3 tail).
    pub hub_contract_fraction: f64,
    /// Maximum consumer fan-out of a heavy contract.
    pub max_hub_fanout: usize,
    /// TCAM capacity of every switch.
    pub tcam_capacity: usize,
}

impl ClusterSpec {
    /// The full-scale spec matching the production cluster of §VI-A.
    pub fn paper() -> Self {
        Self {
            vrfs: 6,
            epgs: 615,
            contracts: 386,
            filters: 160,
            switches: 30,
            max_endpoints_per_epg: 3,
            hub_contract_fraction: 0.2,
            max_hub_fanout: 400,
            tcam_capacity: 64 * 1024,
        }
    }

    /// A scaled-down spec (≈1/10 of the paper's) used by tests and quick runs.
    pub fn small() -> Self {
        Self {
            vrfs: 3,
            epgs: 60,
            contracts: 40,
            filters: 16,
            switches: 8,
            max_endpoints_per_epg: 2,
            hub_contract_fraction: 0.2,
            max_hub_fanout: 40,
            tcam_capacity: 64 * 1024,
        }
    }

    /// Generates a policy universe from this spec with the given seed.
    ///
    /// The output is deterministic for a `(spec, seed)` pair.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero (the spec would be degenerate).
    pub fn generate(&self, seed: u64) -> PolicyUniverse {
        assert!(
            self.vrfs > 0
                && self.epgs > 0
                && self.contracts > 0
                && self.filters > 0
                && self.switches > 0,
            "cluster spec counts must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = PolicyUniverse::builder();

        // One tenant per VRF keeps the model simple; the paper notes a VRF can
        // serve several tenants but that does not change the risk structure.
        for v in 0..self.vrfs {
            let tenant = TenantId::new(v as u32);
            builder.tenant(Tenant::new(tenant, format!("tenant-{v}")));
            builder.vrf(Vrf::new(VrfId::new(v as u32), format!("vrf-{v}"), tenant));
        }

        // Switches.
        for s in 0..self.switches {
            builder.switch(Switch::with_capacity(
                SwitchId::new(s as u32),
                format!("leaf-{s}"),
                self.tcam_capacity,
            ));
        }

        // EPGs: VRF membership is skewed so that a couple of VRFs own most of
        // the EPGs (heavy VRF sharing in Figure 3).
        let vrf_weights: Vec<f64> = (0..self.vrfs).map(|v| 1.0 / ((v + 1) as f64)).collect();
        let vrf_total: f64 = vrf_weights.iter().sum();
        let mut epg_vrf = Vec::with_capacity(self.epgs);
        for e in 0..self.epgs {
            let mut pick = rng.gen_range(0.0..vrf_total);
            let mut chosen = 0;
            for (v, w) in vrf_weights.iter().enumerate() {
                if pick < *w {
                    chosen = v;
                    break;
                }
                pick -= w;
            }
            let vrf = VrfId::new(chosen as u32);
            epg_vrf.push(vrf);
            builder.epg(Epg::new(EpgId::new(e as u32), format!("epg-{e}"), vrf));
        }

        // Endpoints: each EPG gets a few endpoints on a couple of switches so
        // that every switch ends up hosting many pairs.
        let mut endpoint_id = 0u32;
        for e in 0..self.epgs {
            let count = rng.gen_range(1..=self.max_endpoints_per_epg);
            for _ in 0..count {
                let switch = SwitchId::new(rng.gen_range(0..self.switches) as u32);
                builder.endpoint(Endpoint::new(
                    EndpointId::new(endpoint_id),
                    format!("ep-{endpoint_id}"),
                    EpgId::new(e as u32),
                    switch,
                ));
                endpoint_id += 1;
            }
        }

        // Filters: one to three allow entries on common service ports.
        let common_ports: [u16; 12] = [22, 25, 53, 80, 123, 443, 700, 1433, 3306, 5432, 8080, 8443];
        for f in 0..self.filters {
            let entries = (0..rng.gen_range(1..=3usize))
                .map(|_| {
                    let port = common_ports[rng.gen_range(0..common_ports.len())];
                    let protocol = if rng.gen_bool(0.85) {
                        Protocol::Tcp
                    } else {
                        Protocol::Udp
                    };
                    FilterEntry::allow(protocol, PortRange::single(port))
                })
                .collect();
            builder.filter(Filter::new(
                FilterId::new(f as u32),
                format!("filter-{f}"),
                entries,
            ));
        }

        // Contracts: a skewed number of filters per contract, filter popularity
        // follows a Zipf-like distribution so a few filters are reused widely.
        let filter_rank: Vec<FilterId> = {
            let mut ids: Vec<FilterId> =
                (0..self.filters).map(|f| FilterId::new(f as u32)).collect();
            ids.shuffle(&mut rng);
            ids
        };
        let pick_filter = |rng: &mut StdRng| -> FilterId {
            // Zipf-ish: rank r chosen with probability proportional to 1/(r+1).
            let weights: f64 = (0..filter_rank.len()).map(|r| 1.0 / (r as f64 + 1.0)).sum();
            let mut pick = rng.gen_range(0.0..weights);
            for (r, &id) in filter_rank.iter().enumerate() {
                let w = 1.0 / (r as f64 + 1.0);
                if pick < w {
                    return id;
                }
                pick -= w;
            }
            *filter_rank.last().expect("at least one filter")
        };
        for c in 0..self.contracts {
            let count = rng.gen_range(1..=3usize);
            let mut filters = Vec::new();
            for _ in 0..count {
                let f = pick_filter(&mut rng);
                if !filters.contains(&f) {
                    filters.push(f);
                }
            }
            builder.contract(Contract::new(
                ContractId::new(c as u32),
                format!("contract-{c}"),
                filters,
            ));
        }

        // Bindings: most contracts bind a handful of pairs; a minority are
        // "hub" contracts (shared services) consumed by many EPGs, which
        // creates the heavy tails of Figure 3. Consumers are drawn with
        // preferential attachment towards low-index EPGs of the same VRF.
        let mut epgs_by_vrf: Vec<Vec<EpgId>> = vec![Vec::new(); self.vrfs];
        for (e, vrf) in epg_vrf.iter().enumerate() {
            epgs_by_vrf[vrf.raw() as usize].push(EpgId::new(e as u32));
        }
        for c in 0..self.contracts {
            let contract = ContractId::new(c as u32);
            // Choose the provider from a random non-empty VRF.
            let vrf_index = loop {
                let v = rng.gen_range(0..self.vrfs);
                if !epgs_by_vrf[v].is_empty() {
                    break v;
                }
            };
            let members = &epgs_by_vrf[vrf_index];
            let provider = members[rng.gen_range(0..members.len())];
            let is_hub = rng.gen_bool(self.hub_contract_fraction) && members.len() > 10;
            let fanout = if is_hub {
                let cap = self
                    .max_hub_fanout
                    .min(members.len().saturating_sub(1))
                    .max(1);
                rng.gen_range(10..=cap.max(10))
            } else {
                rng.gen_range(1..=9usize)
            };
            let mut consumers = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while consumers.len() < fanout && attempts < fanout * 10 {
                attempts += 1;
                // Preferential attachment: square the uniform sample so small
                // indices (hub EPGs) are chosen more often.
                let u: f64 = rng.gen_range(0.0..1.0);
                let idx = ((u * u) * members.len() as f64) as usize;
                let candidate = members[idx.min(members.len() - 1)];
                if candidate != provider {
                    consumers.insert(candidate);
                }
            }
            for consumer in consumers {
                builder.bind(ContractBinding::new(consumer, provider, contract));
            }
        }

        builder
            .build()
            .expect("generated cluster policy must be internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::ObjectClass;

    #[test]
    fn small_cluster_builds_with_expected_counts() {
        let u = ClusterSpec::small().generate(1);
        let stats = u.stats();
        assert_eq!(stats.vrfs, 3);
        assert_eq!(stats.epgs, 60);
        assert_eq!(stats.contracts, 40);
        assert_eq!(stats.filters, 16);
        assert_eq!(stats.switches, 8);
        assert!(
            stats.epg_pairs > 40,
            "expected a reasonable number of pairs"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = ClusterSpec::small();
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn sharing_distribution_is_heavy_tailed() {
        let u = ClusterSpec::small().generate(3);
        let per_object = u.pairs_per_object();
        // Switch and VRF objects must carry far more pairs than the median
        // filter/contract.
        let max_vrf = per_object
            .iter()
            .filter(|(o, _)| o.class() == ObjectClass::Vrf)
            .map(|(_, pairs)| pairs.len())
            .max()
            .unwrap();
        let mut contract_counts: Vec<usize> = per_object
            .iter()
            .filter(|(o, _)| o.class() == ObjectClass::Contract)
            .map(|(_, pairs)| pairs.len())
            .collect();
        contract_counts.sort_unstable();
        let median_contract = contract_counts[contract_counts.len() / 2];
        assert!(
            max_vrf >= 10 * median_contract.max(1),
            "VRFs should be shared by far more pairs than a median contract \
             (max_vrf={max_vrf}, median_contract={median_contract})"
        );
        // A majority of contracts serve fewer than 10 pairs (Figure 3).
        let small_contracts = contract_counts.iter().filter(|&&c| c < 10).count();
        assert!(small_contracts * 10 >= contract_counts.len() * 6);
    }

    #[test]
    fn every_switch_hosts_pairs() {
        let u = ClusterSpec::small().generate(5);
        for switch in u.switch_ids() {
            assert!(
                !u.pairs_on_switch(switch).is_empty(),
                "{switch} hosts no pairs"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_counts_are_rejected() {
        let mut spec = ClusterSpec::small();
        spec.filters = 0;
        let _ = spec.generate(1);
    }

    #[test]
    fn paper_spec_has_published_counts() {
        let spec = ClusterSpec::paper();
        assert_eq!(spec.vrfs, 6);
        assert_eq!(spec.epgs, 615);
        assert_eq!(spec.contracts, 386);
        assert_eq!(spec.filters, 160);
        assert_eq!(spec.switches, 30);
    }
}
