//! Policy mutation helpers.
//!
//! The use cases of §V-B of the paper exercise *dynamic* policy changes — for
//! example, "continuously adding one new filter after another to the
//! Contract:App-DB object" until the switch TCAM overflows. [`PolicyUniverse`]
//! is immutable by design, so these helpers rebuild a new universe with one
//! targeted change applied; the fabric's `update_policy` then derives the
//! incremental instructions and change-log entries from the difference.
//!
//! The seeded [`random_policy_edit`] / [`add_random_filter`] /
//! [`remove_random_filter`] variants drive the campaign engine's churn and
//! concurrent-update scenarios, where policy edits race with fault injection.

use rand::seq::SliceRandom;
use rand::Rng;

use scout_policy::{
    Contract, ContractId, Filter, FilterEntry, FilterId, PolicyUniverse, PortRange, Protocol,
};

/// Clones everything except contracts and bindings into a fresh builder; the
/// caller then adds the (possibly modified) contracts and the bindings.
fn clone_base(universe: &PolicyUniverse) -> scout_policy::PolicyBuilder {
    let mut builder = PolicyUniverse::builder();
    for t in universe.tenants() {
        builder.tenant(t.clone());
    }
    for v in universe.vrfs() {
        builder.vrf(v.clone());
    }
    for e in universe.epgs() {
        builder.epg(e.clone());
    }
    for s in universe.switches() {
        builder.switch(s.clone());
    }
    for ep in universe.endpoints() {
        builder.endpoint(ep.clone());
    }
    for f in universe.filters() {
        builder.filter(f.clone());
    }
    builder
}

/// Returns a new universe in which a brand-new single-port TCP filter has been
/// created and appended to `contract`'s filter list.
///
/// Returns `None` if the contract does not exist. The new filter gets the id
/// `new_filter` (must be unused) and allows TCP traffic on `port`.
pub fn add_filter_to_contract(
    universe: &PolicyUniverse,
    contract: ContractId,
    new_filter: FilterId,
    port: u16,
) -> Option<PolicyUniverse> {
    universe.contract(contract)?;
    if universe.filter(new_filter).is_some() {
        return None;
    }
    let mut builder = clone_base(universe);
    builder.filter(Filter::new(
        new_filter,
        format!("added-port-{port}"),
        vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(port))],
    ));
    for c in universe.contracts() {
        if c.id == contract {
            let mut filters = c.filters.clone();
            filters.push(new_filter);
            builder.contract(Contract::new(c.id, c.name.clone(), filters));
        } else {
            builder.contract(c.clone());
        }
    }
    for b in universe.bindings() {
        builder.bind(*b);
    }
    builder.build().ok()
}

/// Returns a new universe with `filter` removed from `contract`'s filter list
/// (the filter object itself is kept so other contracts can still use it).
///
/// Returns `None` if the contract does not exist, does not reference the
/// filter, or would become empty.
pub fn remove_filter_from_contract(
    universe: &PolicyUniverse,
    contract: ContractId,
    filter: FilterId,
) -> Option<PolicyUniverse> {
    let existing = universe.contract(contract)?;
    if !existing.filters.contains(&filter) || existing.filters.len() == 1 {
        return None;
    }
    let mut builder = clone_base(universe);
    for c in universe.contracts() {
        if c.id == contract {
            let filters: Vec<FilterId> =
                c.filters.iter().copied().filter(|&f| f != filter).collect();
            builder.contract(Contract::new(c.id, c.name.clone(), filters));
        } else {
            builder.contract(c.clone());
        }
    }
    for b in universe.bindings() {
        builder.bind(*b);
    }
    builder.build().ok()
}

/// The smallest unused filter id in `universe`, for incremental additions.
pub fn next_filter_id(universe: &PolicyUniverse) -> FilterId {
    let max = universe.filters().map(|f| f.id.raw()).max().unwrap_or(0);
    FilterId::new(max + 1)
}

/// The outcome of one randomized policy edit: the new universe plus the
/// contract and filter the edit touched (the objects a change log will
/// implicate).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEdit {
    /// The universe with the edit applied.
    pub universe: PolicyUniverse,
    /// The contract whose filter list changed.
    pub contract: ContractId,
    /// The filter that was added to (or removed from) the contract.
    pub filter: FilterId,
    /// `true` if the filter was added, `false` if it was removed.
    pub added: bool,
}

/// Appends a brand-new single-port TCP filter to a uniformly chosen contract.
///
/// Returns `None` only when the universe has no contracts. The port is drawn
/// from the high, unprivileged range so repeated edits stay distinct from the
/// generator-assigned service ports.
pub fn add_random_filter<R: Rng>(universe: &PolicyUniverse, rng: &mut R) -> Option<PolicyEdit> {
    let contracts: Vec<ContractId> = universe.contracts().map(|c| c.id).collect();
    let contract = *contracts.choose(rng)?;
    let filter = next_filter_id(universe);
    let port = rng.gen_range(20_000u16..60_000);
    let universe = add_filter_to_contract(universe, contract, filter, port)?;
    Some(PolicyEdit {
        universe,
        contract,
        filter,
        added: true,
    })
}

/// Removes a uniformly chosen filter from a uniformly chosen contract that
/// can afford to lose one (at least two filters).
///
/// Returns `None` when no contract qualifies.
pub fn remove_random_filter<R: Rng>(universe: &PolicyUniverse, rng: &mut R) -> Option<PolicyEdit> {
    let candidates: Vec<ContractId> = universe
        .contracts()
        .filter(|c| c.filters.len() >= 2)
        .map(|c| c.id)
        .collect();
    let contract = *candidates.choose(rng)?;
    let filters = &universe.contract(contract)?.filters;
    let filter = *filters.choose(rng)?;
    let universe = remove_filter_from_contract(universe, contract, filter)?;
    Some(PolicyEdit {
        universe,
        contract,
        filter,
        added: false,
    })
}

/// Applies one random edit — an addition (2/3 of the time) or a removal — to
/// the universe. Falls back to an addition when no filter can be removed, so
/// the edit only fails on a contract-less universe.
pub fn random_policy_edit<R: Rng>(universe: &PolicyUniverse, rng: &mut R) -> Option<PolicyEdit> {
    if rng.gen_bool(1.0 / 3.0) {
        if let Some(edit) = remove_random_filter(universe, rng) {
            return Some(edit);
        }
    }
    add_random_filter(universe, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::sample;

    #[test]
    fn add_filter_grows_the_contract() {
        let u = sample::three_tier();
        let new_id = next_filter_id(&u);
        let updated = add_filter_to_contract(&u, sample::C_APP_DB, new_id, 8443).unwrap();
        assert_eq!(updated.filters().count(), 3);
        assert!(updated
            .contract(sample::C_APP_DB)
            .unwrap()
            .filters
            .contains(&new_id));
        // The other contract is untouched.
        assert_eq!(
            updated.contract(sample::C_WEB_APP).unwrap().filters.len(),
            1
        );
    }

    #[test]
    fn add_filter_rejects_unknown_contract_and_reused_id() {
        let u = sample::three_tier();
        assert!(add_filter_to_contract(&u, ContractId::new(99), FilterId::new(50), 80).is_none());
        assert!(add_filter_to_contract(&u, sample::C_APP_DB, sample::F_HTTP, 80).is_none());
    }

    #[test]
    fn remove_filter_shrinks_the_contract() {
        let u = sample::three_tier();
        let updated = remove_filter_from_contract(&u, sample::C_APP_DB, sample::F_700).unwrap();
        assert_eq!(
            updated.contract(sample::C_APP_DB).unwrap().filters,
            vec![sample::F_HTTP]
        );
        // The filter object still exists.
        assert!(updated.filter(sample::F_700).is_some());
    }

    #[test]
    fn remove_filter_refuses_to_empty_a_contract() {
        let u = sample::three_tier();
        assert!(remove_filter_from_contract(&u, sample::C_WEB_APP, sample::F_HTTP).is_none());
        assert!(remove_filter_from_contract(&u, sample::C_APP_DB, FilterId::new(77)).is_none());
    }

    #[test]
    fn next_filter_id_is_unused() {
        let u = sample::three_tier();
        let id = next_filter_id(&u);
        assert!(u.filter(id).is_none());
    }

    #[test]
    fn random_edits_are_seeded_and_well_formed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let u = sample::three_tier();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let edit = random_policy_edit(&u, &mut rng).unwrap();
            // Deterministic per seed.
            let mut rng2 = StdRng::seed_from_u64(seed);
            assert_eq!(random_policy_edit(&u, &mut rng2), Some(edit.clone()));
            let contract = edit.universe.contract(edit.contract).unwrap();
            if edit.added {
                assert!(contract.filters.contains(&edit.filter), "seed {seed}");
                assert!(u.filter(edit.filter).is_none(), "seed {seed}");
            } else {
                assert!(!contract.filters.contains(&edit.filter), "seed {seed}");
                assert!(!contract.filters.is_empty(), "seed {seed}");
            }
        }
    }

    #[test]
    fn remove_random_filter_needs_a_removable_contract() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let u = sample::three_tier();
        // Only C_APP_DB has two filters, so any removal must target it.
        let edit = remove_random_filter(&u, &mut rng).unwrap();
        assert_eq!(edit.contract, sample::C_APP_DB);
        assert!(!edit.added);
        // After the removal no contract has two filters left.
        assert!(remove_random_filter(&edit.universe, &mut rng).is_none());
        // Additions still work (and thus so does random_policy_edit).
        assert!(random_policy_edit(&edit.universe, &mut rng).is_some());
    }

    #[test]
    fn repeated_additions_keep_building() {
        let mut u = sample::three_tier();
        for i in 0..5 {
            let id = next_filter_id(&u);
            u = add_filter_to_contract(&u, sample::C_APP_DB, id, 9000 + i).unwrap();
        }
        assert_eq!(u.contract(sample::C_APP_DB).unwrap().filters.len(), 2 + 5);
        assert_eq!(u.filters().count(), 2 + 5);
    }
}
