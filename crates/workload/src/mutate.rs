//! Policy mutation helpers.
//!
//! The use cases of §V-B of the paper exercise *dynamic* policy changes — for
//! example, "continuously adding one new filter after another to the
//! Contract:App-DB object" until the switch TCAM overflows. [`PolicyUniverse`]
//! is immutable by design, so these helpers rebuild a new universe with one
//! targeted change applied; the fabric's `update_policy` then derives the
//! incremental instructions and change-log entries from the difference.

use scout_policy::{
    Contract, ContractId, Filter, FilterEntry, FilterId, PolicyUniverse, PortRange, Protocol,
};

/// Clones everything except contracts and bindings into a fresh builder; the
/// caller then adds the (possibly modified) contracts and the bindings.
fn clone_base(universe: &PolicyUniverse) -> scout_policy::PolicyBuilder {
    let mut builder = PolicyUniverse::builder();
    for t in universe.tenants() {
        builder.tenant(t.clone());
    }
    for v in universe.vrfs() {
        builder.vrf(v.clone());
    }
    for e in universe.epgs() {
        builder.epg(e.clone());
    }
    for s in universe.switches() {
        builder.switch(s.clone());
    }
    for ep in universe.endpoints() {
        builder.endpoint(ep.clone());
    }
    for f in universe.filters() {
        builder.filter(f.clone());
    }
    builder
}

/// Returns a new universe in which a brand-new single-port TCP filter has been
/// created and appended to `contract`'s filter list.
///
/// Returns `None` if the contract does not exist. The new filter gets the id
/// `new_filter` (must be unused) and allows TCP traffic on `port`.
pub fn add_filter_to_contract(
    universe: &PolicyUniverse,
    contract: ContractId,
    new_filter: FilterId,
    port: u16,
) -> Option<PolicyUniverse> {
    universe.contract(contract)?;
    if universe.filter(new_filter).is_some() {
        return None;
    }
    let mut builder = clone_base(universe);
    builder.filter(Filter::new(
        new_filter,
        format!("added-port-{port}"),
        vec![FilterEntry::allow(Protocol::Tcp, PortRange::single(port))],
    ));
    for c in universe.contracts() {
        if c.id == contract {
            let mut filters = c.filters.clone();
            filters.push(new_filter);
            builder.contract(Contract::new(c.id, c.name.clone(), filters));
        } else {
            builder.contract(c.clone());
        }
    }
    for b in universe.bindings() {
        builder.bind(*b);
    }
    builder.build().ok()
}

/// Returns a new universe with `filter` removed from `contract`'s filter list
/// (the filter object itself is kept so other contracts can still use it).
///
/// Returns `None` if the contract does not exist, does not reference the
/// filter, or would become empty.
pub fn remove_filter_from_contract(
    universe: &PolicyUniverse,
    contract: ContractId,
    filter: FilterId,
) -> Option<PolicyUniverse> {
    let existing = universe.contract(contract)?;
    if !existing.filters.contains(&filter) || existing.filters.len() == 1 {
        return None;
    }
    let mut builder = clone_base(universe);
    for c in universe.contracts() {
        if c.id == contract {
            let filters: Vec<FilterId> =
                c.filters.iter().copied().filter(|&f| f != filter).collect();
            builder.contract(Contract::new(c.id, c.name.clone(), filters));
        } else {
            builder.contract(c.clone());
        }
    }
    for b in universe.bindings() {
        builder.bind(*b);
    }
    builder.build().ok()
}

/// The smallest unused filter id in `universe`, for incremental additions.
pub fn next_filter_id(universe: &PolicyUniverse) -> FilterId {
    let max = universe.filters().map(|f| f.id.raw()).max().unwrap_or(0);
    FilterId::new(max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_policy::sample;

    #[test]
    fn add_filter_grows_the_contract() {
        let u = sample::three_tier();
        let new_id = next_filter_id(&u);
        let updated = add_filter_to_contract(&u, sample::C_APP_DB, new_id, 8443).unwrap();
        assert_eq!(updated.filters().count(), 3);
        assert!(updated
            .contract(sample::C_APP_DB)
            .unwrap()
            .filters
            .contains(&new_id));
        // The other contract is untouched.
        assert_eq!(
            updated.contract(sample::C_WEB_APP).unwrap().filters.len(),
            1
        );
    }

    #[test]
    fn add_filter_rejects_unknown_contract_and_reused_id() {
        let u = sample::three_tier();
        assert!(add_filter_to_contract(&u, ContractId::new(99), FilterId::new(50), 80).is_none());
        assert!(add_filter_to_contract(&u, sample::C_APP_DB, sample::F_HTTP, 80).is_none());
    }

    #[test]
    fn remove_filter_shrinks_the_contract() {
        let u = sample::three_tier();
        let updated = remove_filter_from_contract(&u, sample::C_APP_DB, sample::F_700).unwrap();
        assert_eq!(
            updated.contract(sample::C_APP_DB).unwrap().filters,
            vec![sample::F_HTTP]
        );
        // The filter object still exists.
        assert!(updated.filter(sample::F_700).is_some());
    }

    #[test]
    fn remove_filter_refuses_to_empty_a_contract() {
        let u = sample::three_tier();
        assert!(remove_filter_from_contract(&u, sample::C_WEB_APP, sample::F_HTTP).is_none());
        assert!(remove_filter_from_contract(&u, sample::C_APP_DB, FilterId::new(77)).is_none());
    }

    #[test]
    fn next_filter_id_is_unused() {
        let u = sample::three_tier();
        let id = next_filter_id(&u);
        assert!(u.filter(id).is_none());
    }

    #[test]
    fn repeated_additions_keep_building() {
        let mut u = sample::three_tier();
        for i in 0..5 {
            let id = next_filter_id(&u);
            u = add_filter_to_contract(&u, sample::C_APP_DB, id, 9000 + i).unwrap();
        }
        assert_eq!(u.contract(sample::C_APP_DB).unwrap().filters.len(), 2 + 5);
        assert_eq!(u.filters().count(), 2 + 5);
    }
}
