//! Testbed policy generator.
//!
//! The paper's testbed experiments (Figures 7(a) and 10) run on a small policy
//! built "based on the statistics of the number of EPGs and their dependency
//! on other policy objects obtained from the cluster dataset": 36 EPGs,
//! 24 contracts, 9 filters and about 100 EPG pairs (§VI-A). This generator
//! produces a policy with exactly those object counts and approximately that
//! pair count, with a lower degree of risk sharing than the cluster policy
//! (the reason the paper gives for the accuracy difference between the two
//! setups).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scout_policy::{
    Contract, ContractBinding, ContractId, Endpoint, EndpointId, Epg, EpgId, Filter, FilterEntry,
    FilterId, PolicyUniverse, PortRange, Protocol, Switch, SwitchId, Tenant, TenantId, Vrf, VrfId,
};

/// Parameters of the testbed generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestbedSpec {
    /// Number of EPGs (paper: 36).
    pub epgs: usize,
    /// Number of contracts (paper: 24).
    pub contracts: usize,
    /// Number of filters (paper: 9).
    pub filters: usize,
    /// Target number of EPG pairs (paper: 100).
    pub target_pairs: usize,
    /// Number of leaf switches in the testbed.
    pub switches: usize,
    /// TCAM capacity of every switch.
    pub tcam_capacity: usize,
}

impl Default for TestbedSpec {
    fn default() -> Self {
        Self::paper()
    }
}

impl TestbedSpec {
    /// The spec used in the paper's testbed.
    pub fn paper() -> Self {
        Self {
            epgs: 36,
            contracts: 24,
            filters: 9,
            target_pairs: 100,
            switches: 6,
            tcam_capacity: 64 * 1024,
        }
    }

    /// Generates the testbed policy with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn generate(&self, seed: u64) -> PolicyUniverse {
        assert!(
            self.epgs > 1 && self.contracts > 0 && self.filters > 0 && self.switches > 0,
            "testbed spec counts must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = PolicyUniverse::builder();

        let tenant = TenantId::new(0);
        let vrf = VrfId::new(0);
        builder.tenant(Tenant::new(tenant, "testbed"));
        builder.vrf(Vrf::new(vrf, "testbed-vrf", tenant));

        for s in 0..self.switches {
            builder.switch(Switch::with_capacity(
                SwitchId::new(s as u32),
                format!("tb-leaf-{s}"),
                self.tcam_capacity,
            ));
        }

        for e in 0..self.epgs {
            builder.epg(Epg::new(EpgId::new(e as u32), format!("tb-epg-{e}"), vrf));
            // One or two endpoints per EPG spread over the testbed switches.
            let count = rng.gen_range(1..=2usize);
            for i in 0..count {
                let switch = SwitchId::new(rng.gen_range(0..self.switches) as u32);
                builder.endpoint(Endpoint::new(
                    EndpointId::new((e * 2 + i) as u32),
                    format!("tb-ep-{e}-{i}"),
                    EpgId::new(e as u32),
                    switch,
                ));
            }
        }

        let ports: [u16; 9] = [22, 53, 80, 443, 700, 3306, 5432, 8080, 8443];
        for f in 0..self.filters {
            builder.filter(Filter::new(
                FilterId::new(f as u32),
                format!("tb-filter-{f}"),
                vec![FilterEntry::allow(
                    Protocol::Tcp,
                    PortRange::single(ports[f % ports.len()]),
                )],
            ));
        }

        for c in 0..self.contracts {
            let f1 = FilterId::new(rng.gen_range(0..self.filters) as u32);
            let mut filters = vec![f1];
            if rng.gen_bool(0.3) {
                let f2 = FilterId::new(rng.gen_range(0..self.filters) as u32);
                if f2 != f1 {
                    filters.push(f2);
                }
            }
            builder.contract(Contract::new(
                ContractId::new(c as u32),
                format!("tb-contract-{c}"),
                filters,
            ));
        }

        // Bindings: distribute the target pair count across the contracts,
        // roughly 4 pairs per contract, with distinct consumer/provider EPGs.
        let mut produced = std::collections::BTreeSet::new();
        let per_contract = (self.target_pairs / self.contracts).max(1);
        for c in 0..self.contracts {
            let contract = ContractId::new(c as u32);
            let provider = EpgId::new(rng.gen_range(0..self.epgs) as u32);
            let mut added = 0;
            let mut attempts = 0;
            while added < per_contract && attempts < per_contract * 20 {
                attempts += 1;
                let consumer = EpgId::new(rng.gen_range(0..self.epgs) as u32);
                if consumer == provider {
                    continue;
                }
                let key = (consumer.min(provider), consumer.max(provider));
                if produced.insert(key) {
                    builder.bind(ContractBinding::new(consumer, provider, contract));
                    added += 1;
                }
            }
        }

        builder
            .build()
            .expect("generated testbed policy must be internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_published_counts() {
        let u = TestbedSpec::paper().generate(1);
        let stats = u.stats();
        assert_eq!(stats.epgs, 36);
        assert_eq!(stats.contracts, 24);
        assert_eq!(stats.filters, 9);
        // The paper reports 100 EPG pairs; the generator lands close to it.
        assert!(
            (80..=110).contains(&stats.epg_pairs),
            "got {} pairs",
            stats.epg_pairs
        );
    }

    #[test]
    fn testbed_is_deterministic_per_seed() {
        let spec = TestbedSpec::paper();
        assert_eq!(spec.generate(42), spec.generate(42));
    }

    #[test]
    fn testbed_sharing_is_low() {
        let u = TestbedSpec::paper().generate(2);
        // Risk sharing is lower than in the cluster: the busiest contract
        // serves only a handful of pairs.
        let per_object = u.pairs_per_object();
        let max_contract = per_object
            .iter()
            .filter(|(o, _)| matches!(o, scout_policy::ObjectId::Contract(_)))
            .map(|(_, p)| p.len())
            .max()
            .unwrap();
        assert!(max_contract <= 10);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn degenerate_spec_is_rejected() {
        let mut spec = TestbedSpec::paper();
        spec.contracts = 0;
        let _ = spec.generate(0);
    }
}
