//! Scaling generator for the scalability experiment.
//!
//! The paper measures SCOUT's running time on a controller risk model built
//! from the production policy deployed on 10 switches and scaled "up to 500
//! switches by adding new EPG and switch pairs" (§VI-B). This generator mimics
//! that procedure: a base policy fragment is replicated per leaf switch, so
//! the number of `(switch, EPG pair)` triplets — and therefore the size of the
//! controller risk model — grows linearly with the switch count, while a set
//! of shared objects (VRFs and popular filters) keeps the model connected the
//! way the production policy is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scout_policy::{
    Contract, ContractBinding, ContractId, Endpoint, EndpointId, Epg, EpgId, Filter, FilterEntry,
    FilterId, PolicyUniverse, PortRange, Protocol, Switch, SwitchId, Tenant, TenantId, Vrf, VrfId,
};

/// Parameters of the scaling generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// Number of leaf switches (the scaling knob; paper: 10 → 500).
    pub switches: usize,
    /// EPGs added per switch.
    pub epgs_per_switch: usize,
    /// EPG pairs (bindings) added per switch.
    pub pairs_per_switch: usize,
    /// Number of globally shared filters.
    pub shared_filters: usize,
    /// Number of VRFs shared across the fabric.
    pub vrfs: usize,
}

impl ScaleSpec {
    /// A spec with the given switch count and the per-switch densities used by
    /// the scalability experiment (≈60 triplets per switch).
    pub fn with_switches(switches: usize) -> Self {
        Self {
            switches,
            epgs_per_switch: 12,
            pairs_per_switch: 30,
            shared_filters: 40,
            vrfs: 6,
        }
    }

    /// The large-fabric preset family (the `ingest_scale` benchmark's
    /// 1000/2000-switch sweeps): production-scale switch counts at leaner
    /// per-switch densities — 8 EPGs and 16 local pairs per switch, with a
    /// wider shared-filter pool — so the policy keeps the sharing shape of
    /// [`ScaleSpec::with_switches`] while a multi-thousand-switch universe
    /// generates in tens of milliseconds.
    pub fn large_fabric(switches: usize) -> Self {
        Self {
            switches,
            epgs_per_switch: 8,
            pairs_per_switch: 16,
            shared_filters: 64,
            vrfs: 8,
        }
    }

    /// The 1000-switch member of the [`ScaleSpec::large_fabric`] family.
    pub fn large_1k() -> Self {
        Self::large_fabric(1000)
    }

    /// The 2000-switch member of the [`ScaleSpec::large_fabric`] family.
    pub fn large_2k() -> Self {
        Self::large_fabric(2000)
    }

    /// Generates the scaled policy with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `switches` or any density parameter is zero.
    pub fn generate(&self, seed: u64) -> PolicyUniverse {
        assert!(
            self.switches > 0
                && self.epgs_per_switch > 1
                && self.pairs_per_switch > 0
                && self.shared_filters > 0
                && self.vrfs > 0,
            "scale spec parameters must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = PolicyUniverse::builder();
        builder.reserve_fabric(self.switches, self.epgs_per_switch, self.pairs_per_switch);

        let tenant = TenantId::new(0);
        builder.tenant(Tenant::new(tenant, "scale-tenant"));
        for v in 0..self.vrfs {
            builder.vrf(Vrf::new(
                VrfId::new(v as u32),
                format!("scale-vrf-{v}"),
                tenant,
            ));
        }
        for f in 0..self.shared_filters {
            builder.filter(Filter::new(
                FilterId::new(f as u32),
                format!("scale-filter-{f}"),
                vec![FilterEntry::allow(
                    Protocol::Tcp,
                    PortRange::single(1024 + (f as u16 % 100)),
                )],
            ));
        }

        let mut endpoint_id = 0u32;
        let mut contract_id = 0u32;
        for s in 0..self.switches {
            let switch = SwitchId::new(s as u32);
            builder.switch(Switch::new(switch, format!("scale-leaf-{s}")));

            // The EPGs hosted on this switch, all in the same (rotating) VRF so
            // that pairs stay intra-VRF.
            let vrf = VrfId::new((s % self.vrfs) as u32);
            let base_epg = (s * self.epgs_per_switch) as u32;
            for e in 0..self.epgs_per_switch {
                let epg = EpgId::new(base_epg + e as u32);
                builder.epg(Epg::new(epg, format!("scale-epg-{s}-{e}"), vrf));
                builder.endpoint(Endpoint::new(
                    EndpointId::new(endpoint_id),
                    format!("scale-ep-{endpoint_id}"),
                    epg,
                    switch,
                ));
                endpoint_id += 1;
            }

            // Local pairs between EPGs of this switch, each through its own
            // contract referencing one of the shared filters.
            for _ in 0..self.pairs_per_switch {
                let a = rng.gen_range(0..self.epgs_per_switch) as u32;
                let mut b = rng.gen_range(0..self.epgs_per_switch) as u32;
                if a == b {
                    b = (b + 1) % self.epgs_per_switch as u32;
                }
                let filter = FilterId::new(rng.gen_range(0..self.shared_filters) as u32);
                let contract = ContractId::new(contract_id);
                contract_id += 1;
                builder.contract(Contract::new(
                    contract,
                    format!("scale-contract-{contract_id}"),
                    vec![filter],
                ));
                builder.bind(ContractBinding::new(
                    EpgId::new(base_epg + a),
                    EpgId::new(base_epg + b),
                    contract,
                ));
            }
        }

        builder
            .build()
            .expect("generated scale policy must be internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_size_grows_linearly_with_switches() {
        let small = ScaleSpec::with_switches(5).generate(1);
        let large = ScaleSpec::with_switches(20).generate(1);
        let small_pairs = small.stats().epg_pairs;
        let large_pairs = large.stats().epg_pairs;
        assert!(large_pairs >= 3 * small_pairs);
        assert_eq!(large.stats().switches, 20);
    }

    #[test]
    fn pairs_are_local_to_their_switch() {
        let u = ScaleSpec::with_switches(4).generate(2);
        for pair in u.epg_pairs() {
            let switches = u.switches_for_pair(pair);
            assert_eq!(switches.len(), 1, "scaled pairs live on a single switch");
        }
    }

    #[test]
    fn shared_filters_are_reused_across_switches() {
        let u = ScaleSpec::with_switches(10).generate(3);
        let per_object = u.pairs_per_object();
        let max_filter_pairs = per_object
            .iter()
            .filter(|(o, _)| o.is_filter())
            .map(|(_, p)| p.len())
            .max()
            .unwrap();
        assert!(
            max_filter_pairs > 3,
            "filters must be shared across switches"
        );
    }

    #[test]
    fn large_fabric_presets_scale() {
        assert_eq!(ScaleSpec::large_1k().switches, 1000);
        assert_eq!(ScaleSpec::large_2k().switches, 2000);
        // Spot-check a scaled-down family member for the expected shape.
        let spec = ScaleSpec::large_fabric(12);
        let u = spec.generate(5);
        assert_eq!(u.stats().switches, 12);
        assert_eq!(u.stats().vrfs, spec.vrfs);
        assert!(u.stats().epg_pairs > 0);
        for pair in u.epg_pairs() {
            assert_eq!(u.switches_for_pair(pair).len(), 1);
        }
        assert_eq!(u, spec.generate(5), "family generation stays deterministic");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ScaleSpec::with_switches(6);
        assert_eq!(spec.generate(9), spec.generate(9));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_switches_rejected() {
        let _ = ScaleSpec::with_switches(0).generate(1);
    }
}
