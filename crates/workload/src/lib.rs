//! # scout-workload
//!
//! Part of the SCOUT reproduction workspace: `ARCHITECTURE.md` at the
//! repo root is the crate-by-crate tour showing where this crate sits in
//! the pipeline.
//!
//! Synthetic network-policy workloads for the SCOUT reproduction (ICDCS 2018).
//!
//! The paper evaluates against policies that are not publicly available: a
//! production cluster (6 VRFs, 615 EPGs, 386 contracts, 160 filters on ≈30
//! switches) and a physical testbed policy derived from it (36 EPGs,
//! 24 contracts, 9 filters, ≈100 EPG pairs). This crate provides deterministic,
//! seeded generators calibrated to those published statistics:
//!
//! * [`ClusterSpec`] — the production-cluster-like policy (Figure 3 sharing
//!   shape, used by the simulation experiments of Figures 7(b), 8 and 9);
//! * [`TestbedSpec`] — the small testbed policy (Figures 7(a) and 10);
//! * [`ScaleSpec`] — the per-switch replicated policy used by the scalability
//!   experiment (10 → 500 leaf switches);
//! * the [`mutate`] module — targeted policy edits (add/remove a filter on a
//!   contract) used by the dynamic-change use cases of §V-B.
//!
//! # Example
//!
//! ```
//! use scout_workload::ClusterSpec;
//!
//! let universe = ClusterSpec::small().generate(7);
//! assert_eq!(universe.stats().vrfs, 3);
//! assert!(universe.stats().epg_pairs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod mutate;
pub mod scale;
pub mod testbed;

pub use cluster::ClusterSpec;
pub use mutate::{
    add_filter_to_contract, add_random_filter, next_filter_id, random_policy_edit,
    remove_filter_from_contract, remove_random_filter, PolicyEdit,
};
pub use scale::ScaleSpec;
pub use testbed::TestbedSpec;

#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Any small cluster spec with positive counts builds a valid universe
    /// whose pairs all have a non-empty dependency closure.
    #[test]
    fn generated_clusters_are_well_formed() {
        for case in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(case);
            let seed = rng.gen_range(0u64..1000);
            let vrfs = rng.gen_range(1usize..4);
            let epgs = rng.gen_range(4usize..40);
            let contracts = rng.gen_range(2usize..20);
            let filters = rng.gen_range(1usize..8);
            let switches = rng.gen_range(1usize..6);
            let spec = ClusterSpec {
                vrfs,
                epgs,
                contracts,
                filters,
                switches,
                max_endpoints_per_epg: 2,
                hub_contract_fraction: 0.2,
                max_hub_fanout: 20,
                tcam_capacity: 1024,
            };
            let u = spec.generate(seed);
            assert_eq!(u.stats().vrfs, vrfs, "case {case}");
            assert_eq!(u.stats().epgs, epgs, "case {case}");
            for pair in u.epg_pairs() {
                let objs = u.objects_for_pair(pair);
                // VRF + 2 EPGs + ≥1 contract + ≥1 filter.
                assert!(
                    objs.len() >= 5,
                    "case {case}: closure too small: {}",
                    objs.len()
                );
            }
        }
    }

    /// Testbed generation never produces more pairs than EPG combinations and
    /// stays deterministic.
    #[test]
    fn testbed_bounds() {
        for seed in (0u64..500).step_by(61) {
            let spec = TestbedSpec::paper();
            let u = spec.generate(seed);
            let pairs = u.stats().epg_pairs;
            assert!(pairs <= spec.epgs * (spec.epgs - 1) / 2, "seed {seed}");
            assert_eq!(u, spec.generate(seed), "seed {seed}");
        }
    }
}
