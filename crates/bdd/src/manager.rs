//! The ROBDD manager: hash-consed node storage and the core apply algorithms.

use std::collections::HashMap;
use std::fmt;

use crate::table::{CacheStats, DEFAULT_CACHE_LIMIT};
use crate::table::{ImpliesCache, NodeTableKind, NotCache, OpCache, Probe, UniqueTable};

/// A handle to a BDD node owned by a [`BddManager`].
///
/// Handles are only meaningful together with the manager that created them;
/// mixing handles across managers yields unspecified (but memory-safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant `false` BDD.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant `true` BDD.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is the constant `false`.
    pub fn is_false(self) -> bool {
        self == Self::FALSE
    }

    /// Returns `true` if this handle is the constant `true`.
    pub fn is_true(self) -> bool {
        self == Self::TRUE
    }

    /// Returns `true` if this handle is a terminal (constant) node.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => f.write_str("⊥"),
            Bdd::TRUE => f.write_str("⊤"),
            Bdd(n) => write!(f, "bdd#{n}"),
        }
    }
}

/// A decision variable index. Variables are ordered by index: smaller indices
/// are tested closer to the root.
pub type Var = u32;

const TERMINAL_VAR: Var = Var::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: Var,
    low: Bdd,
    high: Bdd,
}

/// Binary boolean operations supported by [`BddManager::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
    /// Set difference: `a ∧ ¬b`.
    Diff,
}

impl BddOp {
    fn terminal(self, a: bool, b: bool) -> bool {
        match self {
            BddOp::And => a && b,
            BddOp::Or => a || b,
            BddOp::Xor => a ^ b,
            BddOp::Diff => a && !b,
        }
    }

    /// Short-circuit result when one operand is a terminal, if any.
    fn shortcut(self, a: Bdd, b: Bdd) -> Option<Bdd> {
        match self {
            BddOp::And => {
                if a.is_false() || b.is_false() {
                    Some(Bdd::FALSE)
                } else if a.is_true() {
                    Some(b)
                } else if b.is_true() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Or => {
                if a.is_true() || b.is_true() {
                    Some(Bdd::TRUE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Xor => {
                if a == b {
                    Some(Bdd::FALSE)
                } else if a.is_false() {
                    Some(b)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
            BddOp::Diff => {
                if a.is_false() || b.is_true() || a == b {
                    Some(Bdd::FALSE)
                } else if b.is_false() {
                    Some(a)
                } else {
                    None
                }
            }
        }
    }
}

/// A reduced ordered binary decision diagram manager with hash-consing and an
/// operation cache.
///
/// The manager owns all nodes in a flat arena (`Vec<Node>`); [`Bdd`] handles
/// are indices into it. Hash-consing and the operation caches run on the
/// cache-conscious backends of [`crate::table`] by default: an open-addressing
/// unique table over node indices and lossy direct-mapped op/not/implies
/// caches whose growth is bounded by [`BddManager::set_cache_limit`]. The
/// historical `std::collections::HashMap` backend remains available through
/// [`BddManager::with_backend`] as a benchmarking baseline; both backends
/// produce bit-identical handles for the same operation sequence.
///
/// All operations keep the diagram *reduced* (no node with identical low/high
/// children, no duplicate nodes) and *ordered* (variable indices strictly
/// increase along every path from the root).
///
/// # Example
///
/// ```
/// use scout_bdd::BddManager;
///
/// let mut m = BddManager::new(4);
/// let x0 = m.var(0);
/// let x1 = m.var(1);
/// let both = m.and(x0, x1);
/// assert_eq!(m.sat_count(both), 4.0); // x2, x3 free
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    kind: NodeTableKind,
    // Arena backend (crate::table).
    unique: UniqueTable,
    op_cache: OpCache,
    not_cache: NotCache,
    implies_cache: ImpliesCache,
    // Baseline backend (std HashMaps, empty while the arena backend is
    // active). Kept for benchmark comparisons and differential testing.
    unique_map: HashMap<Node, Bdd>,
    op_map: HashMap<(BddOp, Bdd, Bdd), Bdd>,
    not_map: HashMap<Bdd, Bdd>,
    implies_map: HashMap<(Bdd, Bdd), bool>,
    cache_limit: usize,
    stats: CacheStats,
    num_vars: u32,
}

impl BddManager {
    /// Creates a manager for `num_vars` decision variables (indices
    /// `0..num_vars`) using the default arena backend.
    pub fn new(num_vars: u32) -> Self {
        Self::with_backend(num_vars, NodeTableKind::default())
    }

    /// Creates a manager with an explicit storage backend — the arena tables
    /// (default) or the historical `HashMap` baseline used for benchmark
    /// comparisons. Both produce bit-identical handles for the same sequence
    /// of operations; only speed and memory behavior differ.
    pub fn with_backend(num_vars: u32, kind: NodeTableKind) -> Self {
        let nodes = vec![
            // FALSE terminal
            Node {
                var: TERMINAL_VAR,
                low: Bdd::FALSE,
                high: Bdd::FALSE,
            },
            // TRUE terminal
            Node {
                var: TERMINAL_VAR,
                low: Bdd::TRUE,
                high: Bdd::TRUE,
            },
        ];
        let cache_limit = DEFAULT_CACHE_LIMIT;
        Self {
            nodes,
            kind,
            unique: UniqueTable::new(),
            op_cache: OpCache::new(cache_limit),
            not_cache: NotCache::new(cache_limit),
            implies_cache: ImpliesCache::new(cache_limit),
            unique_map: HashMap::new(),
            op_map: HashMap::new(),
            not_map: HashMap::new(),
            implies_map: HashMap::new(),
            cache_limit,
            stats: CacheStats::default(),
            num_vars,
        }
    }

    /// The storage backend this manager was created with.
    pub fn backend(&self) -> NodeTableKind {
        self.kind
    }

    /// Cumulative hit/miss/eviction counters of the operation caches.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Folds previously collected counters into this manager's own, so
    /// callers that periodically rebuild managers (e.g. a budgeted checker
    /// worker) can carry cumulative statistics across rebuilds.
    pub fn absorb_cache_stats(&mut self, stats: CacheStats) {
        self.stats.hits += stats.hits;
        self.stats.misses += stats.misses;
        self.stats.evictions += stats.evictions;
    }

    /// The per-cache entry limit (rounded up to a power of two on set).
    pub fn cache_limit(&self) -> usize {
        self.cache_limit
    }

    /// Bounds the operation caches to at most `limit` entries each (rounded
    /// up to a power of two; at least one entry).
    ///
    /// The direct-mapped arena caches stop growing at the limit and shrink
    /// immediately if they already exceed it; the baseline maps are cleared
    /// whenever an insert would push them past it. Engines wire this to their
    /// node budget so long-lived checkers cannot accumulate unbounded
    /// memoization state.
    pub fn set_cache_limit(&mut self, limit: usize) {
        let limit = limit.max(1);
        self.cache_limit = limit.next_power_of_two();
        self.op_cache.set_limit(limit);
        self.not_cache.set_limit(limit);
        self.implies_cache.set_limit(limit);
        if self.op_map.len() > self.cache_limit
            || self.not_map.len() > self.cache_limit
            || self.implies_map.len() > self.cache_limit
        {
            let dropped = self.op_map.len() + self.not_map.len() + self.implies_map.len();
            self.stats.evictions += dropped as u64;
            self.op_map.clear();
            self.not_map.clear();
            self.implies_map.clear();
        }
    }

    /// Number of decision variables this manager was created with.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of allocated nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `root` (excluding terminals), a measure
    /// of the size of one particular BDD.
    pub fn size(&self, root: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            if b.is_terminal() || !seen.insert(b) {
                continue;
            }
            let node = self.nodes[b.index()];
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.len()
    }

    fn mk(&mut self, var: Var, low: Bdd, high: Bdd) -> Bdd {
        if low == high {
            return low;
        }
        match self.kind {
            NodeTableKind::Arena => {
                let nodes = &self.nodes;
                let read = |i: u32| {
                    let n = nodes[i as usize];
                    (n.var, n.low.0, n.high.0)
                };
                match self.unique.probe(var, low.0, high.0, read) {
                    Probe::Found(index) => Bdd(index),
                    Probe::Vacant(slot) => {
                        let index =
                            u32::try_from(self.nodes.len()).expect("bdd node table overflow");
                        self.nodes.push(Node { var, low, high });
                        let nodes = &self.nodes;
                        self.unique.insert(slot, index, |i| {
                            let n = nodes[i as usize];
                            (n.var, n.low.0, n.high.0)
                        });
                        debug_assert_eq!(self.unique.len(), self.nodes.len() - 2);
                        debug_assert!(self.unique.capacity() > self.unique.len());
                        Bdd(index)
                    }
                }
            }
            NodeTableKind::Baseline => {
                let node = Node { var, low, high };
                if let Some(&existing) = self.unique_map.get(&node) {
                    return existing;
                }
                let handle = Bdd(u32::try_from(self.nodes.len()).expect("bdd node table overflow"));
                self.nodes.push(node);
                self.unique_map.insert(node, handle);
                handle
            }
        }
    }

    fn op_tag(op: BddOp) -> u8 {
        match op {
            BddOp::And => 1,
            BddOp::Or => 2,
            BddOp::Xor => 3,
            BddOp::Diff => 4,
        }
    }

    #[inline]
    fn op_cache_get(&mut self, op: BddOp, a: Bdd, b: Bdd) -> Option<Bdd> {
        let cached = match self.kind {
            NodeTableKind::Arena => self.op_cache.get(Self::op_tag(op), a.0, b.0).map(Bdd),
            NodeTableKind::Baseline => self.op_map.get(&(op, a, b)).copied(),
        };
        if cached.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        cached
    }

    #[inline]
    fn op_cache_put(&mut self, op: BddOp, a: Bdd, b: Bdd, result: Bdd) {
        match self.kind {
            NodeTableKind::Arena => {
                self.op_cache.put(
                    Self::op_tag(op),
                    a.0,
                    b.0,
                    result.0,
                    &mut self.stats.evictions,
                );
            }
            NodeTableKind::Baseline => {
                if self.op_map.len() >= self.cache_limit {
                    self.stats.evictions += self.op_map.len() as u64;
                    self.op_map.clear();
                }
                self.op_map.insert((op, a, b), result);
            }
        }
    }

    /// The BDD for a single positive literal `x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: Var) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Bdd::FALSE, Bdd::TRUE)
    }

    /// The BDD for a single negative literal `¬x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: Var) -> Bdd {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.mk(var, Bdd::TRUE, Bdd::FALSE)
    }

    /// Applies a binary boolean operation, memoized.
    pub fn apply(&mut self, op: BddOp, a: Bdd, b: Bdd) -> Bdd {
        if a.is_terminal() && b.is_terminal() {
            return if op.terminal(a.is_true(), b.is_true()) {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            };
        }
        if let Some(result) = op.shortcut(a, b) {
            return result;
        }
        if let Some(cached) = self.op_cache_get(op, a, b) {
            return cached;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let top = va.min(vb);
        let (a_low, a_high) = self.cofactors(a, top);
        let (b_low, b_high) = self.cofactors(b, top);
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let result = self.mk(top, low, high);
        self.op_cache_put(op, a, b, result);
        result
    }

    fn var_of(&self, b: Bdd) -> Var {
        self.nodes[b.index()].var
    }

    fn cofactors(&self, b: Bdd, var: Var) -> (Bdd, Bdd) {
        let node = self.nodes[b.index()];
        if node.var == var {
            (node.low, node.high)
        } else {
            (b, b)
        }
    }

    /// Conjunction of two BDDs.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::And, a, b)
    }

    /// Disjunction of two BDDs.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Or, a, b)
    }

    /// Exclusive-or of two BDDs.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Xor, a, b)
    }

    /// Set difference `a ∧ ¬b`.
    pub fn diff(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(BddOp::Diff, a, b)
    }

    /// Negation of a BDD.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        if a.is_true() {
            return Bdd::FALSE;
        }
        if a.is_false() {
            return Bdd::TRUE;
        }
        let cached = match self.kind {
            NodeTableKind::Arena => self.not_cache.get(a.0).map(Bdd),
            NodeTableKind::Baseline => self.not_map.get(&a).copied(),
        };
        if let Some(result) = cached {
            self.stats.hits += 1;
            return result;
        }
        self.stats.misses += 1;
        let node = self.nodes[a.index()];
        let low = self.not(node.low);
        let high = self.not(node.high);
        let result = self.mk(node.var, low, high);
        match self.kind {
            NodeTableKind::Arena => {
                self.not_cache.put(a.0, result.0, &mut self.stats.evictions);
            }
            NodeTableKind::Baseline => {
                if self.not_map.len() >= self.cache_limit {
                    self.stats.evictions += self.not_map.len() as u64;
                    self.not_map.clear();
                }
                self.not_map.insert(a, result);
            }
        }
        result
    }

    /// If-then-else: `cond ? then : otherwise`.
    pub fn ite(&mut self, cond: Bdd, then: Bdd, otherwise: Bdd) -> Bdd {
        let a = self.and(cond, then);
        let not_cond = self.not(cond);
        let b = self.and(not_cond, otherwise);
        self.or(a, b)
    }

    /// Conjunction of an iterator of BDDs (`true` for an empty iterator).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for item in items {
            acc = self.and(acc, item);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of BDDs (`false` for an empty iterator).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for item in items {
            acc = self.or(acc, item);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Returns `true` if the two BDDs denote the same boolean function.
    ///
    /// Thanks to hash-consing this is a constant-time handle comparison.
    pub fn equivalent(&self, a: Bdd, b: Bdd) -> bool {
        a == b
    }

    /// Evaluates the BDD under a full variable assignment.
    ///
    /// `assignment[i]` is the value of variable `i`; missing trailing variables
    /// default to `false`.
    pub fn eval(&self, mut b: Bdd, assignment: &[bool]) -> bool {
        while !b.is_terminal() {
            let node = self.nodes[b.index()];
            let value = assignment.get(node.var as usize).copied().unwrap_or(false);
            b = if value { node.high } else { node.low };
        }
        b.is_true()
    }

    /// Number of satisfying assignments over all `num_vars` variables.
    ///
    /// Returns `f64` because the count can exceed `u64` for wide encodings.
    pub fn sat_count(&self, b: Bdd) -> f64 {
        let mut memo: HashMap<Bdd, f64> = HashMap::new();
        let total_vars = f64::from(self.num_vars);
        let fraction = self.sat_fraction(b, &mut memo);
        fraction * total_vars.exp2()
    }

    /// Fraction of the full assignment space that satisfies `b` (in `[0, 1]`).
    fn sat_fraction(&self, b: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if b.is_false() {
            return 0.0;
        }
        if b.is_true() {
            return 1.0;
        }
        if let Some(&f) = memo.get(&b) {
            return f;
        }
        let node = self.nodes[b.index()];
        let low = self.sat_fraction(node.low, memo);
        let high = self.sat_fraction(node.high, memo);
        let f = 0.5 * (low + high);
        memo.insert(b, f);
        f
    }

    /// Returns one satisfying assignment, or `None` if `b` is unsatisfiable.
    ///
    /// Variables not constrained along the chosen path are reported as `false`.
    pub fn any_sat(&self, b: Bdd) -> Option<Vec<bool>> {
        if b.is_false() {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut current = b;
        while !current.is_terminal() {
            let node = self.nodes[current.index()];
            if node.high.is_false() {
                assignment[node.var as usize] = false;
                current = node.low;
            } else {
                assignment[node.var as usize] = true;
                current = node.high;
            }
        }
        debug_assert!(current.is_true());
        Some(assignment)
    }

    /// Returns `true` if `b` has at least one satisfying assignment.
    pub fn is_satisfiable(&self, b: Bdd) -> bool {
        !b.is_false()
    }

    /// Returns `true` if `a` implies `b` (i.e. `a ∧ ¬b` is unsatisfiable).
    ///
    /// Unlike computing `diff(a, b)` and testing for `FALSE`, this fast path
    /// never materializes intermediate nodes: it walks the two diagrams'
    /// cofactors directly, short-circuits on the first counterexample, and
    /// memoizes verdicts in a dedicated cache. On the equivalence checker's
    /// hot path (thousands of `rule ⊆ allowed-space` subset tests) this keeps
    /// the node table from growing with throw-away difference diagrams.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> bool {
        // Terminal and identity short-circuits, mirroring BddOp::Diff.
        if a.is_false() || b.is_true() || a == b {
            return true;
        }
        if b.is_false() {
            // a is not FALSE here.
            return false;
        }
        if a.is_true() {
            // In a reduced diagram only TRUE denotes the tautology.
            return false;
        }
        let cached = match self.kind {
            NodeTableKind::Arena => self.implies_cache.get(a.0, b.0),
            NodeTableKind::Baseline => self.implies_map.get(&(a, b)).copied(),
        };
        if let Some(result) = cached {
            self.stats.hits += 1;
            return result;
        }
        self.stats.misses += 1;
        let top = self.var_of(a).min(self.var_of(b));
        let (a_low, a_high) = self.cofactors(a, top);
        let (b_low, b_high) = self.cofactors(b, top);
        let result = self.implies(a_low, b_low) && self.implies(a_high, b_high);
        match self.kind {
            NodeTableKind::Arena => {
                self.implies_cache
                    .put(a.0, b.0, result, &mut self.stats.evictions);
            }
            NodeTableKind::Baseline => {
                if self.implies_map.len() >= self.cache_limit {
                    self.stats.evictions += self.implies_map.len() as u64;
                    self.implies_map.clear();
                }
                self.implies_map.insert((a, b), result);
            }
        }
        result
    }

    /// Number of entries across the operation caches (apply, not, implies).
    ///
    /// Useful to monitor the memory footprint of a long-lived manager.
    pub fn cache_len(&self) -> usize {
        match self.kind {
            NodeTableKind::Arena => {
                self.op_cache.len() + self.not_cache.len() + self.implies_cache.len()
            }
            NodeTableKind::Baseline => {
                self.op_map.len() + self.not_map.len() + self.implies_map.len()
            }
        }
    }

    /// Drops every memoized operation result while keeping the node table.
    ///
    /// Existing [`Bdd`] handles stay valid; subsequent operations re-derive
    /// (and re-memoize) their results.
    pub fn clear_op_caches(&mut self) {
        self.op_cache.clear();
        self.not_cache.clear();
        self.implies_cache.clear();
        self.op_map.clear();
        self.not_map.clear();
        self.implies_map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_behave() {
        let m = BddManager::new(2);
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert!(m.eval(Bdd::TRUE, &[]));
        assert!(!m.eval(Bdd::FALSE, &[]));
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn var_and_nvar_are_complements() {
        let mut m = BddManager::new(1);
        let x = m.var(0);
        let nx = m.nvar(0);
        let not_x = m.not(x);
        assert_eq!(nx, not_x);
        assert!(m.eval(x, &[true]));
        assert!(!m.eval(x, &[false]));
        assert!(m.eval(nx, &[false]));
    }

    #[test]
    fn and_or_truth_table() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let and = m.and(x, y);
        let or = m.or(x, y);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(and, &[a, b]), a && b);
            assert_eq!(m.eval(or, &[a, b]), a || b);
        }
    }

    #[test]
    fn xor_and_diff_truth_table() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let xor = m.xor(x, y);
        let diff = m.diff(x, y);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(m.eval(xor, &[a, b]), a ^ b);
            assert_eq!(m.eval(diff, &[a, b]), a && !b);
        }
    }

    #[test]
    fn hash_consing_makes_equivalence_a_pointer_check() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        let b = m.and(y, x);
        assert!(m.equivalent(a, b));
        // De Morgan: ¬(x ∧ y) == ¬x ∨ ¬y
        let lhs = m.not(a);
        let nx = m.not(x);
        let ny = m.not(y);
        let rhs = m.or(nx, ny);
        assert!(m.equivalent(lhs, rhs));
    }

    #[test]
    fn sat_count_over_free_variables() {
        let mut m = BddManager::new(4);
        let x = m.var(0);
        assert_eq!(m.sat_count(x), 8.0); // 2^3 free assignments
        let y = m.var(1);
        let both = m.and(x, y);
        assert_eq!(m.sat_count(both), 4.0);
        assert_eq!(m.sat_count(Bdd::TRUE), 16.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
    }

    #[test]
    fn any_sat_returns_a_model() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let nz = m.nvar(2);
        let f = m.and(x, nz);
        let model = m.any_sat(f).expect("satisfiable");
        assert!(m.eval(f, &model));
        assert!(m.any_sat(Bdd::FALSE).is_none());
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new(3);
        let c = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let ite = m.ite(c, t, e);
        for bits in 0..8u8 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = if assignment[0] {
                assignment[1]
            } else {
                assignment[2]
            };
            assert_eq!(m.eval(ite, &assignment), expected);
        }
    }

    #[test]
    fn implies_detects_subset() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let both = m.and(x, y);
        assert!(m.implies(both, x));
        assert!(!m.implies(x, both));
        assert!(m.implies(Bdd::FALSE, x));
        assert!(m.implies(x, Bdd::TRUE));
    }

    #[test]
    fn and_all_or_all_fold() {
        let mut m = BddManager::new(3);
        let vars: Vec<Bdd> = (0..3).map(|i| m.var(i)).collect();
        let all = m.and_all(vars.clone());
        assert_eq!(m.sat_count(all), 1.0);
        let any = m.or_all(vars);
        assert_eq!(m.sat_count(any), 7.0);
        assert!(m.and_all(std::iter::empty()).is_true());
        assert!(m.or_all(std::iter::empty()).is_false());
    }

    #[test]
    fn reduction_eliminates_redundant_nodes() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let nx = m.not(x);
        let tautology = m.or(x, nx);
        assert!(tautology.is_true());
        let contradiction = m.and(x, nx);
        assert!(contradiction.is_false());
    }

    #[test]
    fn size_counts_reachable_nodes() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        let f = m.and(f, z);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.size(Bdd::TRUE), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        let _ = m.var(5);
    }

    #[test]
    fn implies_does_not_materialize_nodes() {
        let mut m = BddManager::new(8);
        let vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let narrow = m.and_all(vars.iter().copied().take(4));
        let wide = m.or_all(vars.iter().copied());
        let before = m.node_count();
        assert!(m.implies(narrow, wide));
        assert!(!m.implies(wide, narrow));
        assert_eq!(m.node_count(), before, "implies must not allocate nodes");
    }

    /// Drives both backends through an identical randomized operation
    /// sequence and checks every returned handle is bit-identical. Lossy
    /// direct-mapped caches may recompute what the baseline remembers, but
    /// recomputation only re-derives nodes that are already interned, so the
    /// arena backend must agree handle-for-handle with the `HashMap` one.
    #[test]
    fn arena_and_baseline_produce_identical_handles() {
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let mut arena = BddManager::new(16);
        let mut baseline = BddManager::with_backend(16, NodeTableKind::Baseline);
        assert_eq!(arena.backend(), NodeTableKind::Arena);
        assert_eq!(baseline.backend(), NodeTableKind::Baseline);
        let mut handles: Vec<Bdd> = (0..16).map(|i| arena.var(i)).collect();
        let baseline_handles: Vec<Bdd> = (0..16).map(|i| baseline.var(i)).collect();
        assert_eq!(handles, baseline_handles);
        for step in 0..4000 {
            let i = next() as usize % handles.len();
            let j = next() as usize % handles.len();
            let (a, b) = (handles[i], handles[j]);
            let (x, y) = match next() % 6 {
                0 => (arena.and(a, b), baseline.and(a, b)),
                1 => (arena.or(a, b), baseline.or(a, b)),
                2 => (arena.xor(a, b), baseline.xor(a, b)),
                3 => (arena.diff(a, b), baseline.diff(a, b)),
                4 => (arena.not(a), baseline.not(a)),
                _ => {
                    assert_eq!(arena.implies(a, b), baseline.implies(a, b), "step {step}");
                    continue;
                }
            };
            assert_eq!(x, y, "divergent handle at step {step}");
            handles.push(x);
        }
        assert_eq!(arena.node_count(), baseline.node_count());
        let stats = arena.cache_stats();
        assert!(
            stats.hits > 0 && stats.misses > 0,
            "caches must be exercised"
        );
    }

    /// Randomized cross-validation against direct evaluation at a variable
    /// count high enough (64) to force unique-table growth and deep diagrams.
    /// Each constructed handle carries a mirror expression (index-based DAG)
    /// that is evaluated directly on random assignments.
    #[test]
    fn high_variable_count_cross_validation() {
        #[derive(Clone, Copy)]
        enum Mirror {
            Var(u32),
            Bin(BddOp, usize, usize),
        }
        fn eval_mirror(exprs: &[Mirror], idx: usize, env: &[bool]) -> bool {
            match exprs[idx] {
                Mirror::Var(v) => env[v as usize],
                Mirror::Bin(op, l, r) => {
                    op.terminal(eval_mirror(exprs, l, env), eval_mirror(exprs, r, env))
                }
            }
        }
        let mut lcg = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        const VARS: u32 = 64;
        let mut m = BddManager::new(VARS);
        let mut exprs: Vec<Mirror> = Vec::new();
        let mut handles: Vec<Bdd> = Vec::new();
        for v in 0..VARS {
            exprs.push(Mirror::Var(v));
            handles.push(m.var(v));
        }
        for _ in 0..600 {
            let i = next() as usize % handles.len();
            let j = next() as usize % handles.len();
            let op = match next() % 4 {
                0 => BddOp::And,
                1 => BddOp::Or,
                2 => BddOp::Xor,
                _ => BddOp::Diff,
            };
            handles.push(m.apply(op, handles[i], handles[j]));
            exprs.push(Mirror::Bin(op, i, j));
        }
        assert!(
            m.node_count() > INITIAL_TABLE_PROBE,
            "the workload must outgrow the initial table"
        );
        // Validate every handle on a batch of random assignments.
        for _ in 0..40 {
            let env: Vec<bool> = (0..VARS).map(|_| next() % 2 == 1).collect();
            for (idx, &handle) in handles.iter().enumerate() {
                assert_eq!(
                    m.eval(handle, &env),
                    eval_mirror(&exprs, idx, &env),
                    "handle {idx} diverges from direct evaluation"
                );
            }
        }
    }

    /// Initial unique-table capacity, used to assert growth was exercised.
    const INITIAL_TABLE_PROBE: usize = 1 << 10;

    /// Starved caches (limit 1) force constant collisions and evictions; the
    /// results must still match a generously cached baseline handle-for-handle
    /// — lossy caching may never change semantics, only speed.
    #[test]
    fn starved_caches_stay_correct_under_collision_stress() {
        let mut starved = BddManager::new(12);
        starved.set_cache_limit(1);
        assert_eq!(starved.cache_limit(), 1);
        let mut reference = BddManager::with_backend(12, NodeTableKind::Baseline);
        let mut lcg = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let mut handles: Vec<Bdd> = (0..12).map(|v| starved.var(v)).collect();
        for v in 0..12 {
            reference.var(v);
        }
        for step in 0..1500 {
            let a = handles[next() as usize % handles.len()];
            let b = handles[next() as usize % handles.len()];
            let (x, y) = match next() % 3 {
                0 => (starved.and(a, b), reference.and(a, b)),
                1 => (starved.xor(a, b), reference.xor(a, b)),
                _ => (starved.not(a), reference.not(a)),
            };
            assert_eq!(x, y, "starved cache diverged at step {step}");
            handles.push(x);
        }
        assert_eq!(starved.node_count(), reference.node_count());
        assert!(
            starved.cache_stats().evictions > 0,
            "a one-entry cache must evict under this workload"
        );
    }

    /// Shrinking and re-raising the cache limit must not disturb results, and
    /// the baseline backend must honor the bound by clearing.
    #[test]
    fn cache_limit_bounds_baseline_maps() {
        let mut m = BddManager::with_backend(10, NodeTableKind::Baseline);
        m.set_cache_limit(32);
        let vars: Vec<Bdd> = (0..10).map(|v| m.var(v)).collect();
        let mut acc = Bdd::TRUE;
        for window in vars.windows(2) {
            let pair = m.or(window[0], window[1]);
            acc = m.and(acc, pair);
        }
        for &v in &vars {
            let _ = m.not(v);
            let _ = m.implies(acc, v);
        }
        assert!(
            m.cache_len() <= 3 * 32,
            "baseline caches exceeded their bound: {}",
            m.cache_len()
        );
        assert!(m.is_satisfiable(acc));
    }

    #[test]
    fn implies_results_survive_cache_clear() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let both = m.and(x, y);
        assert!(m.implies(both, x));
        assert!(m.cache_len() > 0);
        m.clear_op_caches();
        assert_eq!(m.cache_len(), 0);
        assert!(m.implies(both, x));
        assert!(!m.implies(x, both));
    }
}
